//! `mtm-lint`: audit the workspace sources for determinism and
//! model-discipline violations. See the library docs for the rule set.
//!
//! Usage: `cargo mtm-lint [--json] [ROOT]` (alias) or
//! `cargo run -p mtm-lint -- [--json] [ROOT]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: mtm-lint [--json] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("mtm-lint: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Under `cargo run -p mtm-lint` the manifest dir is crates/lint; the
    // workspace root is two levels up.
    let root = root.unwrap_or_else(|| match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir).join("../.."),
        None => PathBuf::from("."),
    });

    let report = match mtm_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mtm-lint: scan failed under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        println!(
            "mtm-lint: {} file(s) scanned, {} violation(s)",
            report.files_scanned,
            report.violations.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
