//! Determinism and model-discipline source auditor for this workspace.
//!
//! The simulator's correctness argument (DESIGN.md's substitution rule)
//! requires every execution to be a pure function of `(seed, config)`.
//! This crate walks the workspace's non-test Rust sources with a
//! lightweight line scanner — no `syn`, no dependencies — and flags
//! patterns that silently break that contract:
//!
//! | rule | pattern | scope |
//! |------|---------|-------|
//! | `nondeterministic-rng` | `thread_rng`, `rand::random`, `from_entropy` | all crates |
//! | `wall-clock` | `Instant::now`, `SystemTime` | `core`, `engine`, `apps` |
//! | `unordered-iteration` | `HashMap`, `HashSet` | `core`, `engine`, `apps` |
//! | `library-unwrap` | `.unwrap()` | all but `vendor` — including `#[cfg(test)]` blocks |
//! | `truncating-cast` | `as u8/u16/u32/i8/i16/i32/NodeId` | `core`, `engine`, `apps`, `analysis`, `graph`, `check` |
//! | `smallrng-outside-engine` | `SmallRng::seed_from_u64/from_seed/from_rng` | all but `engine`, `vendor` |
//! | `parallelism-outside-engine` | `thread::spawn/scope/Builder`, `rayon`, `par_iter`, `crossbeam`, `Mutex`, `AtomicU` | all but `engine`, `vendor` |
//!
//! `truncating-cast` exists because a silent `as` truncation on a node id
//! or counter corrupts simulations without failing; the sanctioned forms
//! are `try_from(...)` with an invariant message, or an explicit
//! annotation where truncation is the *point* (hashing, bit extraction).
//! `smallrng-outside-engine` pins all RNG stream construction to
//! `mtm_graph::rng::stream_rng` (or annotated spawn-time seeding), so
//! per-node stream discipline cannot be bypassed casually.
//! `parallelism-outside-engine` keeps concurrency where its determinism is
//! proven: the engine's sharded executor (pinned bit-for-bit by the
//! trace-equivalence suite) and the annotated trial fan-out. Ad-hoc
//! threads, unordered parallel reductions, and shared-state primitives
//! anywhere else can reorder RNG draws or float accumulation and silently
//! desynchronize recorded tables.
//!
//! Sources under `tests/`, `benches/`, `examples/`, and `#[cfg(test)]`
//! blocks are exempt — nondeterminism there cannot corrupt a simulation.
//! Individual lines are allowlisted with a `// mtm-lint: allow(<rule>)`
//! annotation, either trailing the offending line or on the line directly
//! above it; the annotation must name the rule it silences.
//!
//! Run with `cargo mtm-lint` (alias in `.cargo/config.toml`) or
//! `cargo run -p mtm-lint`. Pass `--json` for a machine-readable summary.
//! Exit status is nonzero iff unannotated violations exist.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose sources implement the simulation itself: wall-clock reads
/// and unordered iteration there corrupt traces.
const SIM_CRATES: &[&str] = &["core", "engine", "apps"];

/// Crates held to the truncating-cast discipline (the sanctioned
/// replacement is `try_from(...)` with an invariant message).
const LIBRARY_CRATES: &[&str] = &["core", "engine", "apps", "analysis", "graph", "check"];

/// Path components that mark test-only sources, exempt from every rule.
const EXEMPT_DIRS: &[&str] = &["tests", "benches", "examples"];

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// The audited rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    NondeterministicRng,
    WallClock,
    UnorderedIteration,
    LibraryUnwrap,
    TruncatingCast,
    SmallRngOutsideEngine,
    ParallelismOutsideEngine,
}

impl Rule {
    pub const ALL: [Rule; 7] = [
        Rule::NondeterministicRng,
        Rule::WallClock,
        Rule::UnorderedIteration,
        Rule::LibraryUnwrap,
        Rule::TruncatingCast,
        Rule::SmallRngOutsideEngine,
        Rule::ParallelismOutsideEngine,
    ];

    /// The rule's name, as used in `allow(...)` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NondeterministicRng => "nondeterministic-rng",
            Rule::WallClock => "wall-clock",
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::LibraryUnwrap => "library-unwrap",
            Rule::TruncatingCast => "truncating-cast",
            Rule::SmallRngOutsideEngine => "smallrng-outside-engine",
            Rule::ParallelismOutsideEngine => "parallelism-outside-engine",
        }
    }

    /// Whether the rule also audits `#[cfg(test)]` blocks. Nondeterminism
    /// in unit tests cannot corrupt a simulation, so most rules skip them —
    /// but the unwrap ban is a readability/diagnosability standard that
    /// holds everywhere (integration tests under `tests/` stay exempt via
    /// [`EXEMPT_DIRS`]).
    fn audits_test_code(self) -> bool {
        matches!(self, Rule::LibraryUnwrap)
    }

    /// Substrings whose presence on a (sanitized) source line violates the
    /// rule.
    fn patterns(self) -> &'static [&'static str] {
        match self {
            Rule::NondeterministicRng => &["thread_rng", "rand::random", "from_entropy"],
            Rule::WallClock => &["Instant::now", "SystemTime"],
            Rule::UnorderedIteration => &["HashMap", "HashSet"],
            Rule::LibraryUnwrap => &[".unwrap()"],
            Rule::TruncatingCast => {
                &[" as u8", " as u16", " as u32", " as i8", " as i16", " as i32", " as NodeId"]
            }
            Rule::SmallRngOutsideEngine => {
                &["SmallRng::seed_from_u64", "SmallRng::from_seed", "SmallRng::from_rng"]
            }
            Rule::ParallelismOutsideEngine => &[
                "thread::spawn",
                "thread::scope",
                "thread::Builder",
                "rayon",
                "par_iter",
                "crossbeam",
                "Mutex<",
                "RwLock<",
                "AtomicU",
                "AtomicBool",
            ],
        }
    }

    /// Whether the rule audits the given crate (by directory name; the
    /// workspace root package scans as "root", vendored deps as "vendor").
    fn applies_to(self, crate_name: &str) -> bool {
        match self {
            Rule::NondeterministicRng => true,
            Rule::WallClock | Rule::UnorderedIteration => SIM_CRATES.contains(&crate_name),
            // The PR 2 unwrap→expect sweep is finished: zero raw unwraps
            // remain anywhere in the workspace, so the rule now guards every
            // crate (the sanctioned form is `expect("<invariant>")`).
            Rule::LibraryUnwrap => crate_name != "vendor",
            Rule::TruncatingCast => LIBRARY_CRATES.contains(&crate_name),
            // The engine owns per-node stream derivation; the vendored rand
            // crate defines SmallRng itself. Everyone else must go through
            // `mtm_graph::rng::stream_rng` or carry an annotation.
            Rule::SmallRngOutsideEngine => crate_name != "engine" && crate_name != "vendor",
            // The engine's sharded executor is the one place concurrency is
            // proven deterministic (trace-equivalence at every thread
            // count). Everywhere else needs an annotation arguing why the
            // primitive cannot affect recorded output.
            Rule::ParallelismOutsideEngine => crate_name != "engine" && crate_name != "vendor",
        }
    }
}

/// One unannotated rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.name(), self.text)
    }
}

/// Scan outcome for a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Machine-readable JSON summary (hand-rolled; the workspace builds
    /// offline without serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"text\":\"{}\"}}",
                v.rule.name(),
                json_escape(&v.file),
                v.line,
                json_escape(&v.text)
            ));
        }
        s.push_str(&format!(
            "],\"files_scanned\":{},\"total\":{}}}",
            self.files_scanned,
            self.violations.len()
        ));
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Walk `root` (a workspace checkout) and scan every non-exempt `.rs` file.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort(); // deterministic report order, like everything else here
    let mut report = Report::default();
    for rel in files {
        let content = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if is_exempt_path(&rel_str) {
            continue;
        }
        report.files_scanned += 1;
        scan_file(&rel_str, &content, &mut report.violations);
    }
    Ok(report)
}

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rust_files(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).expect("walk stays under root").to_path_buf());
        }
    }
    Ok(())
}

/// True for sources exempt from all rules (integration tests, benches,
/// examples).
fn is_exempt_path(rel: &str) -> bool {
    rel.split('/').any(|c| EXEMPT_DIRS.contains(&c))
}

/// The crate a workspace-relative path belongs to, by directory name.
fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        Some("vendor") => "vendor",
        _ => "root",
    }
}

/// Scan one file's content, pushing unannotated violations.
pub fn scan_file(rel: &str, content: &str, out: &mut Vec<Violation>) {
    let crate_name = crate_of(rel);
    let rules: Vec<Rule> = Rule::ALL.into_iter().filter(|r| r.applies_to(crate_name)).collect();
    if rules.is_empty() {
        return;
    }
    let sanitized = sanitize(content);
    let raw_lines: Vec<&str> = content.lines().collect();
    let san_lines: Vec<&str> = sanitized.lines().collect();

    // `allow` annotations: trailing → same line; standalone comment → next
    // line.
    let mut allowed: Vec<Vec<&str>> = vec![Vec::new(); raw_lines.len() + 1];
    for (i, raw) in raw_lines.iter().enumerate() {
        for rule_name in parse_allows(raw) {
            let target = if raw.trim_start().starts_with("//") { i + 1 } else { i };
            if target < allowed.len() {
                allowed[target].push(rule_name);
            }
        }
    }

    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut skip_above: Option<i64> = None;

    for (i, san) in san_lines.iter().enumerate() {
        let depth_before = depth;
        depth += san.matches('{').count() as i64;
        depth -= san.matches('}').count() as i64;

        if skip_above.is_none() {
            if san.contains("cfg(test)") {
                pending_cfg_test = true;
            } else if pending_cfg_test && depth > depth_before {
                // The attribute's item opened a block: skip until it closes.
                skip_above = Some(depth_before);
                pending_cfg_test = false;
            } else if pending_cfg_test && san.trim_end().ends_with(';') {
                // `#[cfg(test)] use …;` — a braceless item; nothing to skip.
                pending_cfg_test = false;
            }
        }

        let in_test_block = skip_above.is_some();
        if let Some(limit) = skip_above {
            if depth <= limit {
                skip_above = None;
            }
        }
        for &rule in &rules {
            if in_test_block && !rule.audits_test_code() {
                continue;
            }
            if rule.patterns().iter().any(|p| san.contains(p)) && !allowed[i].contains(&rule.name())
            {
                out.push(Violation {
                    rule,
                    file: rel.to_string(),
                    line: i + 1,
                    text: raw_lines[i].trim().to_string(),
                });
            }
        }
    }
}

/// Extract rule names from `mtm-lint: allow(a, b)` annotations on a raw
/// source line.
fn parse_allows(raw: &str) -> Vec<&str> {
    let mut names = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("mtm-lint: allow(") {
        rest = &rest[pos + "mtm-lint: allow(".len()..];
        if let Some(end) = rest.find(')') {
            names.extend(rest[..end].split(',').map(str::trim).filter(|s| !s.is_empty()));
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    names
}

/// Blank out comments and string/char literals so pattern matching and
/// brace counting only see code. Newlines are preserved, so line numbers
/// map 1:1 to the input.
pub fn sanitize(content: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let mut state = State::Code;
    let bytes: Vec<char> = content.chars().collect();
    let mut out = String::with_capacity(content.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                    i += 1;
                }
                'r' if matches!(next, Some('"' | '#'))
                    && raw_string_hashes(&bytes[i + 1..]).is_some() =>
                {
                    let hashes = raw_string_hashes(&bytes[i + 1..]).expect("checked above");
                    state = State::RawStr(hashes);
                    for _ in 0..(2 + hashes) {
                        out.push(' ');
                    }
                    i += 2 + hashes as usize;
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars; a lifetime never has a closing quote.
                    if let Some(len) = char_literal_len(&bytes[i..]) {
                        for j in 0..len {
                            out.push(if bytes[i + j] == '\n' { '\n' } else { ' ' });
                        }
                        i += len;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Code;
                    out.push(' ');
                    i += 1;
                }
                c => {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&bytes[i + 1..], hashes) {
                    state = State::Code;
                    for _ in 0..=(hashes as usize) {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    out
}

/// After an `r`, the number of `#`s of a raw string opener (`"`, `#"`,
/// `##"`, …), or None if this is not a raw string start.
fn raw_string_hashes(after_r: &[char]) -> Option<u32> {
    let mut hashes = 0u32;
    for &c in after_r {
        match c {
            '#' => hashes += 1,
            '"' => return Some(hashes),
            _ => return None,
        }
    }
    None
}

fn closes_raw_string(after_quote: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|j| after_quote.get(j) == Some(&'#'))
}

/// Length of a char literal starting at `'`, or None for a lifetime.
fn char_literal_len(from_quote: &[char]) -> Option<usize> {
    match from_quote.get(1)? {
        '\\' => {
            // Escaped: '\n', '\'', '\u{…}', '\x7f'. Find the closing quote
            // within a short window.
            for j in 3..=10 {
                if from_quote.get(j) == Some(&'\'') {
                    return Some(j + 1);
                }
            }
            None
        }
        _ => (from_quote.get(2) == Some(&'\'')).then_some(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        scan_file(rel, src, &mut out);
        out
    }

    #[test]
    fn flags_thread_rng_everywhere() {
        let v = scan("crates/cli/src/main.rs", "let mut rng = rand::thread_rng();\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NondeterministicRng);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn wall_clock_scoped_to_sim_crates() {
        let src = "let t = Instant::now();\n";
        assert_eq!(scan("crates/engine/src/x.rs", src).len(), 1);
        assert_eq!(scan("crates/bench/src/x.rs", src).len(), 0);
    }

    #[test]
    fn unordered_iteration_scoped_to_sim_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan("crates/core/src/x.rs", src)[0].rule, Rule::UnorderedIteration);
        assert_eq!(scan("crates/analysis/src/x.rs", src).len(), 0);
    }

    #[test]
    fn unwrap_banned_in_every_crate() {
        let src = "let x = maybe.unwrap();\n";
        assert_eq!(scan("crates/graph/src/x.rs", src)[0].rule, Rule::LibraryUnwrap);
        assert_eq!(scan("crates/cli/src/main.rs", src).len(), 1);
        assert_eq!(scan("crates/experiments/src/x.rs", src).len(), 1);
        assert_eq!(scan("vendor/rand/src/x.rs", src).len(), 0);
        // expect() with an invariant message is the sanctioned form.
        assert_eq!(scan("crates/graph/src/x.rs", "maybe.expect(\"x\");\n").len(), 0);
    }

    #[test]
    fn truncating_casts_scoped_to_library_crates() {
        let src = "let id = idx as u32;\n";
        assert_eq!(scan("crates/graph/src/x.rs", src)[0].rule, Rule::TruncatingCast);
        assert_eq!(scan("crates/check/src/x.rs", src).len(), 1);
        assert_eq!(scan("crates/cli/src/main.rs", src).len(), 0);
        // Widening casts are fine.
        assert_eq!(scan("crates/graph/src/x.rs", "let w = small as u64;\n").len(), 0);
        // NodeId casts count even though NodeId is an alias.
        assert_eq!(scan("crates/engine/src/x.rs", "let v = u as NodeId;\n").len(), 1);
        // try_from is the sanctioned form.
        let ok = "let id = u32::try_from(idx).expect(\"fits\");\n";
        assert_eq!(scan("crates/graph/src/x.rs", ok).len(), 0);
    }

    #[test]
    fn smallrng_construction_scoped_outside_engine() {
        let src = "let rng = SmallRng::seed_from_u64(7);\n";
        assert_eq!(scan("crates/core/src/x.rs", src)[0].rule, Rule::SmallRngOutsideEngine);
        assert_eq!(scan("crates/cli/src/main.rs", src).len(), 1);
        assert_eq!(scan("crates/engine/src/x.rs", src).len(), 0);
        assert_eq!(scan("vendor/rand/src/x.rs", src).len(), 0);
        // The sanctioned stream constructor does not match.
        assert_eq!(scan("crates/core/src/x.rs", "let rng = stream_rng(seed, u);\n").len(), 0);
    }

    #[test]
    fn parallelism_scoped_outside_engine() {
        let src = "std::thread::scope(|s| { s.spawn(|| {}); });\n";
        assert_eq!(scan("crates/core/src/x.rs", src)[0].rule, Rule::ParallelismOutsideEngine);
        assert_eq!(scan("crates/experiments/src/x.rs", src).len(), 1);
        assert_eq!(scan("crates/engine/src/parallel.rs", src).len(), 0);
        let atomics = "use std::sync::atomic::AtomicUsize;\n";
        assert_eq!(scan("crates/cli/src/x.rs", atomics).len(), 1);
        // Annotated trial fan-out is the sanctioned escape hatch.
        let allowed =
            "// measurement only. mtm-lint: allow(parallelism-outside-engine)\nthread::spawn(f);\n";
        assert_eq!(scan("crates/experiments/src/x.rs", allowed).len(), 0);
    }

    #[test]
    fn trailing_allow_silences_same_line() {
        let src = "let x = m.unwrap(); // mtm-lint: allow(library-unwrap)\n";
        assert_eq!(scan("crates/core/src/x.rs", src).len(), 0);
    }

    #[test]
    fn standalone_allow_silences_next_line() {
        let src =
            "// deliberate: checked above. mtm-lint: allow(library-unwrap)\nlet x = m.unwrap();\n";
        assert_eq!(scan("crates/core/src/x.rs", src).len(), 0);
    }

    #[test]
    fn allow_must_name_the_right_rule() {
        let src = "let x = m.unwrap(); // mtm-lint: allow(wall-clock)\n";
        assert_eq!(scan("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn cfg_test_blocks_exempt_from_determinism_rules_but_not_unwrap() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    fn t() { x.unwrap(); }\n}\nfn after() { y.unwrap(); }\n";
        let v = scan("crates/core/src/x.rs", src);
        // The HashSet inside the test module is exempt (unordered iteration
        // there cannot corrupt a simulation); both unwraps are flagged.
        assert_eq!(v.len(), 2, "both unwraps, not the HashSet: {v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::LibraryUnwrap));
        assert_eq!(v[0].line, 5);
        assert_eq!(v[1].line, 7);
    }

    #[test]
    fn comments_and_strings_do_not_trigger() {
        let src =
            "// HashMap iteration would be bad\nlet s = \"thread_rng\";\n/* Instant::now */\n";
        assert_eq!(scan("crates/engine/src/x.rs", src).len(), 0);
    }

    #[test]
    fn exempt_paths() {
        assert!(is_exempt_path("crates/engine/tests/proptests.rs"));
        assert!(is_exempt_path("crates/bench/benches/engine_micro.rs"));
        assert!(!is_exempt_path("crates/engine/src/engine.rs"));
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/engine/src/engine.rs"), "engine");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("vendor/rand/src/lib.rs"), "vendor");
    }

    #[test]
    fn sanitize_preserves_line_structure() {
        let src = "let a = \"{ not a brace }\";\nlet b = '{';\n// }\n";
        let san = sanitize(src);
        assert_eq!(san.lines().count(), src.lines().count());
        assert!(!san.contains('{') && !san.contains('}'));
    }

    #[test]
    fn sanitize_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"HashMap { }\"#; }\n";
        let san = sanitize(src);
        assert!(!san.contains("HashMap"));
        assert!(san.contains("fn f<'a>"));
        // The fn's braces survive; the raw string's are blanked.
        assert_eq!(san.matches('{').count(), 1);
        assert_eq!(san.matches('}').count(), 1);
    }

    #[test]
    fn json_summary_shape() {
        let report = Report {
            violations: vec![Violation {
                rule: Rule::WallClock,
                file: "crates/engine/src/x.rs".into(),
                line: 3,
                text: "Instant::now()".into(),
            }],
            files_scanned: 10,
        };
        let json = report.to_json();
        assert!(json.contains("\"rule\":\"wall-clock\""));
        assert!(json.contains("\"files_scanned\":10"));
        assert!(json.contains("\"total\":1"));
    }
}
