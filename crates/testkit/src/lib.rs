//! Deterministic property-test harness.
//!
//! The offline build environment has no `proptest`, so the workspace's
//! property suites run on this small replacement: every test executes a
//! fixed number of *cases*, each driven by a [`SmallRng`] derived from
//! `(test-local seed, case index)`. Failures print the case index and seed
//! so a failing case can be replayed in isolation — and because the whole
//! harness is a pure function of its inputs, the same case fails (or
//! passes) on every machine and every run.
//!
//! There is deliberately no shrinking: cases are kept small by
//! construction instead (the generators below take explicit bounds).

pub use rand::rngs::SmallRng;
pub use rand::seq::SliceRandom;
pub use rand::{Rng, SeedableRng};

/// One step of SplitMix64 (duplicated from `mtm-graph::rng` to keep this
/// crate dependency-free below `rand`).
#[inline]
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `cases` independent deterministic cases of property `f`.
///
/// `f(case, rng)` receives the case index and a per-case RNG stream. A
/// panic inside `f` is annotated with the failing case index and per-case
/// seed, then propagated so the test still fails normally.
pub fn run_cases<F>(test_seed: u64, cases: u64, mut f: F)
where
    F: FnMut(u64, &mut SmallRng),
{
    for case in 0..cases {
        let case_seed = splitmix64(test_seed ^ splitmix64(case));
        // per-case stream from the deterministic case seed. mtm-lint: allow(smallrng-outside-engine)
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(case, &mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!("property failed at case {case}/{cases} (case seed {case_seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// A random `Vec<f64>` with uniform entries in `[lo, hi)` and a length
/// drawn from `len` (inclusive bounds).
pub fn vec_f64(rng: &mut SmallRng, len: (usize, usize), lo: f64, hi: f64) -> Vec<f64> {
    let n = rng.gen_range(len.0..=len.1);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A random `Vec<u64>` with entries in `[lo, hi)` and a length drawn from
/// `len` (inclusive bounds).
pub fn vec_u64(rng: &mut SmallRng, len: (usize, usize), lo: u64, hi: u64) -> Vec<u64> {
    let n = rng.gen_range(len.0..=len.1);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A random ASCII-alphanumeric string with length in `[0, max_len]`.
pub fn ascii_string(rng: &mut SmallRng, max_len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-";
    let n = rng.gen_range(0..=max_len);
    (0..n).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        run_cases(42, 10, |case, rng| a.push((case, rng.gen::<u64>())));
        run_cases(42, 10, |case, rng| b.push((case, rng.gen::<u64>())));
        assert_eq!(a, b);
    }

    #[test]
    fn case_streams_differ() {
        let mut draws = Vec::new();
        run_cases(7, 20, |_case, rng| draws.push(rng.gen::<u64>()));
        let mut uniq = draws.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), draws.len(), "case streams must be independent");
    }

    #[test]
    fn different_test_seeds_differ() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        run_cases(1, 5, |_c, rng| a.push(rng.gen::<u64>()));
        run_cases(2, 5, |_c, rng| b.push(rng.gen::<u64>()));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run_cases(3, 4, |case, _rng| {
            if case == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn generators_respect_bounds() {
        run_cases(9, 50, |_c, rng| {
            let v = vec_f64(rng, (1, 30), -5.0, 5.0);
            assert!((1..=30).contains(&v.len()));
            assert!(v.iter().all(|x| (-5.0..5.0).contains(x)));
            let u = vec_u64(rng, (0, 10), 3, 9);
            assert!(u.len() <= 10);
            assert!(u.iter().all(|x| (3..9).contains(x)));
            let s = ascii_string(rng, 12);
            assert!(s.len() <= 12);
        });
    }
}
