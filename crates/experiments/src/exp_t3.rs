//! **T3 — Theorem VII.2, polylog regime**: for `τ ≥ log Δ` and `α = O(1)`
//! (a reasonably stable, well-connected network) bit convergence stabilizes
//! in rounds polylogarithmic in `n`.
//!
//! Sweep: static (`τ = ∞`) cliques and random 8-regular expanders with `n`
//! doubling. The instrument is the log–log slope of rounds vs `n`: a
//! polynomial-time algorithm shows slope ≥ its exponent, a polylog one
//! shows slope → 0 as `n` grows (we accept < 0.5 as "polylog-like" and also
//! report the `log^k` exponent from the `ln y` vs `ln ln x` fit).

use mtm_analysis::fit::{log_log_fit, log_polylog_fit};
use mtm_analysis::table::{fmt_f64, Table};
use mtm_graph::GraphFamily;

use crate::harness::{bit_convergence_rounds, summarize, TopoSpec};
use crate::opts::{ExpOpts, Scale};

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (clique_sizes, expander_sizes, trials, max_rounds): (&[usize], &[usize], usize, u64) =
        match opts.scale {
            Scale::Quick => (&[16, 32], &[16, 32, 64], opts.trials_or(3), 10_000_000),
            Scale::Full => {
                (&[64, 128, 256], &[128, 256, 512, 1024, 2048], opts.trials_or(10), 100_000_000)
            }
        };
    let mut table = Table::new(vec!["topology", "n", "Δ", "trials", "mean", "median", "timeouts"]);
    for (family, sizes) in
        [(GraphFamily::Clique, clique_sizes), (GraphFamily::Expander8, expander_sizes)]
    {
        let mut points = Vec::new();
        for &n in sizes {
            let spec = TopoSpec::Static { family, n };
            let sample = spec.sample_graph(opts.seed);
            let results =
                bit_convergence_rounds(&spec, trials, opts.seed, opts.threads, max_rounds);
            let ts = summarize(&results);
            if let Some(s) = &ts.summary {
                points.push((sample.node_count() as f64, s.mean));
            }
            table.push_row(vec![
                family.name().to_string(),
                sample.node_count().to_string(),
                sample.max_degree().to_string(),
                trials.to_string(),
                ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
                ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.median)),
                ts.timeouts.to_string(),
            ]);
        }
        if points.len() >= 2 {
            let ll = log_log_fit(&points);
            let poly = if points.iter().all(|p| p.0 > std::f64::consts::E) {
                format!("log-exp={}", fmt_f64(log_polylog_fit(&points).slope))
            } else {
                "-".into()
            };
            table.push_row(vec![
                format!("{} fit", family.name()),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("slope={}", fmt_f64(ll.slope)),
                poly,
                "expect slope≪1".into(),
            ]);
        }
    }
    table
}

/// Log–log slope for one family's size sweep (integration-test hook).
pub fn slope_for(opts: &ExpOpts, family: GraphFamily, sizes: &[usize]) -> f64 {
    let trials = opts.trials_or(4);
    let mut points = Vec::new();
    for &n in sizes {
        let spec = TopoSpec::Static { family, n };
        let sample = spec.sample_graph(opts.seed);
        let ts =
            summarize(&bit_convergence_rounds(&spec, trials, opts.seed, opts.threads, 100_000_000));
        points.push((sample.node_count() as f64, ts.summary.expect("must stabilize").mean));
    }
    log_log_fit(&points).slope
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        // 2 clique sizes + fit + 3 expander sizes + fit.
        assert_eq!(t.len(), 7);
    }
}
