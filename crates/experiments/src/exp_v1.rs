//! **V1 — model-checker certification matrix** (verification layer 4,
//! DESIGN.md "Verification layers").
//!
//! Unlike every other experiment in the registry, V1 measures nothing
//! statistical: it is the *exhaustive* product-automaton exploration of
//! `mtm-check` run over all 38 connected 4-node topologies, certifying
//! that BlindGossip, BitConvergence and PushPull reach agreement under
//! every adversarial matching schedule, and that MaintainedGossip never
//! regresses its epoch within the bounded horizon. The final row is the
//! negative control: the A1 `β = 1` tag-collision instance, where the
//! checker must *find* the two-leader deadlock and produce a minimal
//! engine-replayable witness. A certified row going uncertified — or the
//! control row's deadlock disappearing — is a semantic change to the
//! protocol stack, caught here as table drift by `regen --check`.
//!
//! The table is fully deterministic (no trials, no seeds): quick and full
//! scales are identical, and the registry digest pins every cell.

use mtm_analysis::table::Table;
use mtm_check::{analyze, explore, CheckConfig};

use crate::opts::ExpOpts;

/// Run the experiment, returning the result table.
pub fn run(_opts: &ExpOpts) -> Table {
    let mut table = Table::new(vec![
        "protocol",
        "graphs",
        "closed",
        "states",
        "transitions",
        "doomed",
        "deadlock",
        "viol",
        "max_dist",
        "witness",
        "certified",
    ]);

    for row in mtm_check::certification_matrix() {
        table.push_row(vec![
            row.protocol.to_string(),
            row.graphs.to_string(),
            row.closed.to_string(),
            row.total_states.to_string(),
            row.transitions.to_string(),
            row.doomed.to_string(),
            row.deadlocks.to_string(),
            row.violations.to_string(),
            if row.closed > 0 { row.max_agreement_distance.to_string() } else { "-".into() },
            "-".to_string(),
            if row.certified { "yes" } else { "NO" }.to_string(),
        ]);
    }

    // Negative control: the A1 β=1 tag collision must deadlock, with a
    // minimal witness schedule the engine reproduces bit for bit.
    let (graph, spec) = mtm_check::a1_beta1_instance();
    let cfg = CheckConfig::default();
    let ex = explore(&spec, &graph, &cfg);
    let an = analyze(&spec, &ex);
    let witness_len = an
        .first_deadlock
        .map(|s| {
            mtm_check::replay_state(&spec, &graph, &ex, s)
                .expect("deadlock witness must replay through the engine");
            ex.witness(s).len().to_string()
        })
        .unwrap_or_else(|| "NONE".to_string());
    table.push_row(vec![
        "bit-conv β=1 (control)".to_string(),
        "1".to_string(),
        usize::from(ex.closed).to_string(),
        ex.state_count().to_string(),
        ex.transitions.to_string(),
        an.doomed.to_string(),
        an.deadlocks.to_string(),
        ex.violations.len().to_string(),
        "-".to_string(),
        witness_len,
        "deadlock (expected)".to_string(),
    ]);

    table
}
