//! The experiment registry: one entry per reproduced table/figure.
//!
//! Every consumer of "which experiments exist" — the 18 `*_exp` harness
//! binaries, the CLI's `experiment all` mode, the `regen` provenance
//! binary, and the benches — resolves ids through this table, so adding an
//! experiment is one entry here (a missing entry fails the registry
//! completeness test against `results/`).

use mtm_analysis::table::Table;

use crate::opts::ExpOpts;

/// A registered experiment: id, human title, and its runner.
pub struct Experiment {
    /// Lowercase id (`"t1"`, `"f3"`, `"a2"`); also the `results/` file stem.
    pub id: &'static str,
    /// Title line printed above the table (matches the committed
    /// `results/<id>.txt` headers).
    pub title: &'static str,
    /// Run the sweep, returning the result table.
    pub run: fn(&ExpOpts) -> Table,
}

impl Experiment {
    /// `"t1"` → `"T1"`, the display form used in table headers.
    pub fn display_id(&self) -> String {
        self.id.to_uppercase()
    }
}

/// Every experiment, in presentation order (paper claims T*/F*, then the
/// beyond-the-paper F8/F9, ablations A*, and service-mode churn C*).
pub static REGISTRY: [Experiment; 25] = [
    Experiment {
        id: "t1",
        title: "Theorem VI.1 — blind gossip O((1/a)*D^2*log^2 n)",
        run: crate::exp_t1::run,
    },
    Experiment {
        id: "f1",
        title: "Sec VI — Omega(D^2/sqrt(a)) lower bound on the line of stars",
        run: crate::exp_f1::run,
    },
    Experiment {
        id: "t2",
        title: "Corollary VI.6 — PUSH-PULL rumor spreading, b=0",
        run: crate::exp_t2::run,
    },
    Experiment {
        id: "f2",
        title: "Theorem VII.2 — tau sweep, bit convergence vs blind gossip",
        run: crate::exp_f2::run,
    },
    Experiment {
        id: "t3",
        title: "Theorem VII.2 — polylog rounds for tau >= log D, a = O(1)",
        run: crate::exp_t3::run,
    },
    Experiment {
        id: "f3",
        title: "Sec VI vs VII — b=0 vs b=1 separation",
        run: crate::exp_f3::run,
    },
    Experiment {
        id: "t4",
        title: "Theorem VIII.2 — non-synchronized vs synchronized bit convergence",
        run: crate::exp_t4::run,
    },
    Experiment {
        id: "f4",
        title: "Sec VIII — self-stabilization on component joins",
        run: crate::exp_f4::run,
    },
    Experiment { id: "t5", title: "Lemma V.1 — gamma >= alpha/4", run: crate::exp_t5::run },
    Experiment {
        id: "f5",
        title: "Theorem V.2 — PPUSH matching approximation m/f(r)",
        run: crate::exp_f5::run,
    },
    Experiment {
        id: "t6",
        title: "Sec IX — tag length ablation b in {0, 1, loglog n}",
        run: crate::exp_t6::run,
    },
    Experiment {
        id: "f6",
        title: "Related work — mobile vs classical telephone model gap",
        run: crate::exp_f6::run,
    },
    Experiment {
        id: "f7",
        title: "Convergence trajectories (fraction agreeing on the winner)",
        run: crate::exp_f7::run,
    },
    Experiment {
        id: "f8",
        title: "Fault injection: crash churn x message loss vs stabilization",
        run: crate::exp_f8::run,
    },
    Experiment {
        id: "f9",
        title: "Scaling: slopes at 10^5-10^8 nodes on 8-regular expanders",
        run: crate::exp_f9::run,
    },
    Experiment {
        id: "a1",
        title: "Ablation — ID tag length multiplier beta",
        run: crate::exp_a1::run,
    },
    Experiment { id: "a2", title: "Ablation — group length multiplier", run: crate::exp_a2::run },
    Experiment {
        id: "a3",
        title: "Ablation — PUSH-PULL vs PUSH-only vs PULL-only",
        run: crate::exp_a3::run,
    },
    Experiment {
        id: "c1",
        title: "Service mode — flash-crowd join: settle time and takeover",
        run: crate::exp_c1::run,
    },
    Experiment {
        id: "c2",
        title: "Service mode — mass departure: detection + re-election latency",
        run: crate::exp_c2::run,
    },
    Experiment {
        id: "c3",
        title: "Service mode — partition and heal: split-brain exposure",
        run: crate::exp_c3::run,
    },
    Experiment {
        id: "c4",
        title: "Service mode — rolling churn: steady-state service quality",
        run: crate::exp_c4::run,
    },
    Experiment {
        id: "v1",
        title: "Model checking — n=4 certification matrix + beta=1 deadlock control",
        run: crate::exp_v1::run,
    },
    Experiment {
        id: "as1",
        title: "Async election — event backend ticks vs the lockstep bound",
        run: crate::exp_as1::run,
    },
    Experiment {
        id: "as2",
        title: "Async PUSH-PULL — event backend ticks vs the lockstep bound",
        run: crate::exp_as2::run,
    },
];

/// Look up an experiment by id (case-insensitive).
pub fn find(id: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

/// The shared `main` of every `*_exp` harness binary: parse options from
/// the environment, run the experiment, emit the table (and CSV when
/// requested). Exits nonzero if the CSV write fails, so scripted
/// regeneration cannot mistake a partial emit for success.
pub fn run_binary(id: &str) -> ! {
    let exp = find(id).expect("binary wired to a registered experiment id");
    let opts = ExpOpts::from_env();
    let table = (exp.run)(&opts);
    match opts.emit(&exp.display_id(), exp.title, &table) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique_and_in_presentation_order() {
        let ids: Vec<&str> = REGISTRY.iter().map(|e| e.id).collect();
        assert_eq!(ids, crate::ALL_IDS);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), REGISTRY.len(), "duplicate experiment id");
    }

    #[test]
    fn find_is_case_insensitive() {
        assert_eq!(find("t1").map(|e| e.id), Some("t1"));
        assert_eq!(find("T1").map(|e| e.id), Some("t1"));
        assert!(find("t99").is_none());
    }

    #[test]
    fn titles_are_header_safe() {
        for e in &REGISTRY {
            assert!(!e.title.is_empty(), "{} has no title", e.id);
            assert!(!e.title.contains('\n'), "{} title breaks the header line", e.id);
            assert_eq!(e.display_id(), e.id.to_uppercase());
        }
    }
}
