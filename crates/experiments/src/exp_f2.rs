//! **F2 — Theorem VII.2, τ dependence**: bit convergence stabilizes in
//! `O((1/α)·Δ^(1/τ̂)·τ̂·log⁵n)` rounds; as `τ` grows from 1 to `log Δ` its
//! advantage over blind gossip grows from a factor of `Δ` to `Δ²`
//! (ignoring logs).
//!
//! Sweep: a fixed line-of-stars graph under the leaf-shuffle adversary at
//! `τ ∈ {1, 2, 4, …}` plus the static graph (`τ = ∞`). For each `τ` we run
//! both algorithms and report the speedup ratio; the claim reproduced is
//! that the ratio **grows monotonically in `τ`** (crossover structure), not
//! the absolute constants.

use mtm_analysis::table::{fmt_f64, Table};

use crate::harness::{
    bit_convergence_bound, bit_convergence_rounds, blind_gossip_rounds, summarize, TopoSpec,
};
use crate::opts::{ExpOpts, Scale};

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    // Spine s stars of s points each.
    let (s, taus, trials, max_rounds): (usize, &[Option<u64>], usize, u64) = match opts.scale {
        Scale::Quick => (4, &[Some(1), Some(2), None], opts.trials_or(3), 10_000_000),
        Scale::Full => {
            (12, &[Some(1), Some(2), Some(4), Some(8), None], opts.trials_or(10), 200_000_000)
        }
    };
    let g = mtm_graph::gen::line_of_stars(s, s);
    let n = g.node_count();
    let delta = g.max_degree();
    let alpha = mtm_graph::GraphFamily::LineOfStars
        .known_alpha(n)
        .expect("the line of stars has an analytic alpha at every size");

    let mut table = Table::new(vec![
        "τ",
        "n",
        "Δ",
        "blind(mean)",
        "bitconv(mean)",
        "speedup",
        "bc-bound",
        "bc-mean/bound",
    ]);
    for &tau in taus {
        let spec = match tau {
            Some(t) => TopoSpec::StarShuffle { spine: s, points: s, tau: t },
            None => TopoSpec::Static { family: mtm_graph::GraphFamily::LineOfStars, n },
        };
        let blind =
            summarize(&blind_gossip_rounds(&spec, trials, opts.seed, opts.threads, max_rounds));
        let bc = summarize(&bit_convergence_rounds(
            &spec,
            trials,
            opts.seed ^ 1,
            opts.threads,
            max_rounds,
        ));
        let bound = bit_convergence_bound(n, delta, alpha, tau);
        let (blind_mean, bc_mean, speedup, ratio) = match (&blind.summary, &bc.summary) {
            (Some(b), Some(c)) => (
                fmt_f64(b.mean),
                fmt_f64(c.mean),
                fmt_f64(b.mean / c.mean),
                fmt_f64(c.mean / bound),
            ),
            (b, c) => (
                b.as_ref().map_or("-".into(), |x| fmt_f64(x.mean)),
                c.as_ref().map_or("-".into(), |x| fmt_f64(x.mean)),
                "-".into(),
                "-".into(),
            ),
        };
        table.push_row(vec![
            tau.map_or("∞".into(), |t| t.to_string()),
            n.to_string(),
            delta.to_string(),
            blind_mean,
            bc_mean,
            speedup,
            fmt_f64(bound),
            ratio,
        ]);
    }
    table
}

/// Mean bit-convergence rounds per τ (used by integration tests to check
/// that more stability never hurts).
pub fn bitconv_means_by_tau(opts: &ExpOpts, s: usize, taus: &[Option<u64>]) -> Vec<f64> {
    let trials = opts.trials_or(4);
    let n = s + s * s;
    taus.iter()
        .map(|&tau| {
            let spec = match tau {
                Some(t) => TopoSpec::StarShuffle { spine: s, points: s, tau: t },
                None => TopoSpec::Static { family: mtm_graph::GraphFamily::LineOfStars, n },
            };
            let bc = summarize(&bit_convergence_rounds(
                &spec,
                trials,
                opts.seed,
                opts.threads,
                100_000_000,
            ));
            bc.summary.expect("must stabilize").mean
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 3); // τ ∈ {1, 2, ∞}
        assert_eq!(t.header()[5], "speedup");
    }
}
