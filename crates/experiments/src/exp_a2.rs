//! **A2 — ablation: group length multiplier** (design choice in §VII).
//!
//! Bit convergence uses groups of `2·log Δ` rounds. The `2×` guarantees
//! a stretch of `τ̂ = min{τ, log Δ}` *stable* rounds inside every group
//! even when a topology change lands mid-group, and gives PPUSH `log Δ`
//! rounds to realize a good fraction of the cut matching (Theorem V.2 is
//! strongest at `r = log Δ`). Shorter groups make phases cheaper but each
//! group realizes less of the matching; longer groups waste rounds after
//! the matching is exhausted. The sweep shows the trade-off around the
//! paper's choice `m = 2`.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::config::ceil_log2;
use mtm_core::{BitConvergence, TagConfig, UidPool};
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, ModelParams};
use mtm_graph::dynamic::LineOfStarsShuffle;
use mtm_graph::rng::derive_seed;

use crate::harness::summarize;
use crate::opts::{ExpOpts, Scale};

/// One trial with group length `m·⌈log₂ Δ⌉` under `τ = 1` leaf-shuffle
/// churn (the regime the 2× slack exists for).
fn trial(s: usize, mult: u64, seed: u64, max_rounds: u64) -> Option<u64> {
    let topo = LineOfStarsShuffle::new(s, s, 1, derive_seed(seed, 1));
    let g = mtm_graph::gen::line_of_stars(s, s);
    let n = g.node_count();
    let log_delta = ceil_log2(g.max_degree().max(2)) as u64;
    let mut config = TagConfig::for_network(n, g.max_degree());
    config.group_len = (mult * log_delta).max(1);
    let uids = UidPool::random(n, derive_seed(seed, 10));
    let nodes = BitConvergence::spawn(&uids, config, derive_seed(seed, 12));
    let mut e = Engine::new(
        topo,
        ModelParams::mobile(1),
        ActivationSchedule::synchronized(n),
        nodes,
        derive_seed(seed, 11),
    );
    e.run_to_stabilization(max_rounds).stabilized_round
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (s, mults, trials, max_rounds): (usize, &[u64], usize, u64) = match opts.scale {
        Scale::Quick => (4, &[1, 2, 4], opts.trials_or(3), 50_000_000),
        Scale::Full => (12, &[1, 2, 3, 4, 8], opts.trials_or(10), 500_000_000),
    };
    let g = mtm_graph::gen::line_of_stars(s, s);
    let log_delta = ceil_log2(g.max_degree().max(2)) as u64;
    let mut table = Table::new(vec![
        "group multiplier m",
        "group len (rounds)",
        "trials",
        "mean rounds",
        "median",
        "timeouts",
    ]);
    for &m in mults {
        let results: Vec<Option<u64>> =
            run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                trial(s, m, seed, max_rounds)
            });
        let ts = summarize(&results);
        table.push_row(vec![
            m.to_string(),
            (m * log_delta).to_string(),
            trials.to_string(),
            ts.summary.as_ref().map_or("-".into(), |x| fmt_f64(x.mean)),
            ts.summary.as_ref().map_or("-".into(), |x| fmt_f64(x.median)),
            ts.timeouts.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 3);
        for row in t.rows() {
            assert_eq!(row[5], "0", "m = {} timed out", row[0]);
        }
    }
}
