//! Shared machinery for the C-series (service-mode) experiments.
//!
//! C1–C4 all drive the same stack — [`MaintainedGossip`] under
//! [`Engine::run_service`] — against different churn scenarios. This
//! module centralizes the pieces they share: the engine constructor with
//! the standard seed-stream assignment, and small aggregation helpers for
//! the per-trial result structs the C tables summarize.
//!
//! Seed streams match the election harnesses so a C trial and an election
//! trial with the same base seed build the same world: stream 0 = graph,
//! 10 = UID pool, 11 = engine, 13 = fault chains.

use mtm_core::{MaintainedGossip, MaintenanceConfig, UidPool};
use mtm_engine::{ActivationSchedule, Engine, ModelParams};
use mtm_graph::rng::derive_seed;
use mtm_graph::DynamicTopology;

/// Build a maintained-gossip service engine over an arbitrary topology.
///
/// The UID pool is passed in (not derived here) because scenarios like C2
/// need the pool *before* the topology exists — scheduled crashes target
/// specific UID ranks. Derive it with `UidPool::random(n, derive_seed(seed,
/// 10))` to stay on the standard stream.
pub fn service_engine<T: DynamicTopology>(
    topo: T,
    schedule: ActivationSchedule,
    uids: &UidPool,
    timeout: u64,
    seed: u64,
) -> Engine<MaintainedGossip, T> {
    let nodes = MaintainedGossip::spawn(uids, MaintenanceConfig::new(timeout));
    Engine::new(topo, ModelParams::mobile(0), schedule, nodes, derive_seed(seed, 11))
}

/// Mean of a per-trial quantity (0 for an empty trial set).
pub fn mean_by<T>(trials: &[T], f: impl Fn(&T) -> f64) -> f64 {
    if trials.is_empty() {
        return 0.0;
    }
    trials.iter().map(f).sum::<f64>() / trials.len() as f64
}

/// Fraction of trials satisfying a predicate (0 for an empty trial set).
pub fn frac_by<T>(trials: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if trials.is_empty() {
        return 0.0;
    }
    trials.iter().filter(|t| pred(t)).count() as f64 / trials.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::ServiceConfig;
    use mtm_graph::{gen, StaticTopology};

    #[test]
    fn aggregators_handle_empty_and_nonempty() {
        let empty: [u64; 0] = [];
        assert_eq!(mean_by(&empty, |&x| x as f64), 0.0);
        assert_eq!(frac_by(&empty, |&x| x > 0), 0.0);
        let xs = [1u64, 2, 3, 4];
        assert!((mean_by(&xs, |&x| x as f64) - 2.5).abs() < 1e-12);
        assert!((frac_by(&xs, |&x| x >= 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn service_engine_runs_on_standard_streams() {
        let seed = 42;
        let uids = UidPool::random(8, derive_seed(seed, 10));
        let mut e = service_engine(
            StaticTopology::new(gen::clique(8)),
            ActivationSchedule::synchronized(8),
            &uids,
            64,
            seed,
        );
        let out = e.run_service(&ServiceConfig::rounds(400));
        assert_eq!(out.final_leader, Some(uids.min_uid()));
        assert_eq!(out.service.re_elections, 0);
    }
}
