//! **F3 — the `b = 0` vs `b = 1` separation**: the paper's headline
//! qualitative result is the large complexity gap between zero advertising
//! bits (blind gossip, `Θ(Δ²)` dependence) and a single bit (bit
//! convergence, `Δ^(1/τ̂)·τ̂` dependence).
//!
//! Sweep: the line-of-stars family — blind gossip's worst case — with `n`
//! growing, both algorithms on the *same* static topology. The reproduced
//! claim: the blind/bitconv ratio grows with `n` (the gap widens as `Δ`
//! grows), i.e. the separation is asymptotic, not a constant factor.

use mtm_analysis::table::{fmt_f64, Table};

use crate::harness::{bit_convergence_rounds, blind_gossip_rounds, summarize, TopoSpec};
use crate::opts::{ExpOpts, Scale};

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (stars, trials, max_rounds): (&[usize], usize, u64) = match opts.scale {
        Scale::Quick => (&[3, 5], opts.trials_or(3), 10_000_000),
        Scale::Full => (&[4, 6, 8, 11, 16, 20, 24], opts.trials_or(10), 200_000_000),
    };
    let mut table =
        Table::new(vec!["stars", "n", "Δ", "blind b=0 (mean)", "bitconv b=1 (mean)", "ratio"]);
    for &s in stars {
        let n = s + s * s;
        let spec = TopoSpec::Static { family: mtm_graph::GraphFamily::LineOfStars, n };
        let g = mtm_graph::gen::line_of_stars(s, s);
        let blind =
            summarize(&blind_gossip_rounds(&spec, trials, opts.seed, opts.threads, max_rounds));
        let bc = summarize(&bit_convergence_rounds(
            &spec,
            trials,
            opts.seed ^ 1,
            opts.threads,
            max_rounds,
        ));
        let (b_mean, c_mean, ratio) = match (&blind.summary, &bc.summary) {
            (Some(b), Some(c)) => (fmt_f64(b.mean), fmt_f64(c.mean), fmt_f64(b.mean / c.mean)),
            (b, c) => (
                b.as_ref().map_or("-".into(), |x| fmt_f64(x.mean)),
                c.as_ref().map_or("-".into(), |x| fmt_f64(x.mean)),
                "-".into(),
            ),
        };
        table.push_row(vec![
            s.to_string(),
            g.node_count().to_string(),
            g.max_degree().to_string(),
            b_mean,
            c_mean,
            ratio,
        ]);
    }
    table
}

/// Blind/bitconv mean-round ratios per size (integration-test hook: the
/// last ratio should exceed the first — the gap widens).
pub fn ratios(opts: &ExpOpts, stars: &[usize]) -> Vec<f64> {
    let trials = opts.trials_or(4);
    stars
        .iter()
        .map(|&s| {
            let n = s + s * s;
            let spec = TopoSpec::Static { family: mtm_graph::GraphFamily::LineOfStars, n };
            let blind = summarize(&blind_gossip_rounds(
                &spec,
                trials,
                opts.seed,
                opts.threads,
                200_000_000,
            ));
            let bc = summarize(&bit_convergence_rounds(
                &spec,
                trials,
                opts.seed ^ 1,
                opts.threads,
                200_000_000,
            ));
            blind.summary.expect("blind must stabilize").mean
                / bc.summary.expect("bitconv must stabilize").mean
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 2);
        assert_eq!(t.header().len(), 6);
    }
}
