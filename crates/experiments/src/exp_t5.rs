//! **T5 — Lemma V.1**: for any graph with vertex expansion `α`,
//! `γ = min_{S, |S| ≤ n/2} ν(B(S))/|S| ≥ α/4`.
//!
//! This is a deterministic graph-theoretic claim, so the experiment is an
//! exhaustive check: for each size we draw random connected graphs and
//! structured family instances, compute `γ` (maximum matchings over *every*
//! cut) and `α` exactly, and report the minimum observed ratio `γ/(α/4)` —
//! which the lemma says is ≥ 1. We also report `γ/α` to show how tight the
//! 1/4 constant is in practice.

use mtm_analysis::stats::Summary;
use mtm_analysis::table::{fmt_f64, Table};
use mtm_engine::runner::run_trials;
use mtm_graph::expansion::alpha_exact;
use mtm_graph::matching::gamma_exact;
use mtm_graph::rng::derive_seed;
use mtm_graph::{gen, GraphFamily};

use crate::opts::{ExpOpts, Scale};

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (sizes, trials): (&[usize], usize) = match opts.scale {
        Scale::Quick => (&[8, 10], opts.trials_or(20)),
        Scale::Full => (&[8, 10, 12, 14, 16], opts.trials_or(100)),
    };
    let mut table = Table::new(vec![
        "source",
        "n",
        "graphs",
        "min γ/(α/4)",
        "mean γ/(α/4)",
        "min γ/α",
        "violations",
    ]);
    // Random connected Erdős–Rényi graphs.
    for &n in sizes {
        let ratios: Vec<(f64, f64)> =
            run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                let p = 2.5 * (n as f64).ln() / n as f64;
                let g = gen::erdos_renyi_connected(n, p.min(0.9), derive_seed(seed, 0));
                let gamma = gamma_exact(&g);
                let alpha = alpha_exact(&g);
                (gamma / (alpha / 4.0), gamma / alpha)
            });
        push_ratio_row(&mut table, "G(n,p)", n, &ratios);
    }
    // Structured families at a fixed small size.
    let n = 14;
    for family in [
        GraphFamily::Clique,
        GraphFamily::Path,
        GraphFamily::Cycle,
        GraphFamily::Star,
        GraphFamily::BinaryTree,
    ] {
        let g = family.build(n, opts.seed);
        if g.node_count() > 16 {
            continue;
        }
        let gamma = gamma_exact(&g);
        let alpha = alpha_exact(&g);
        push_ratio_row(
            &mut table,
            family.name(),
            g.node_count(),
            &[(gamma / (alpha / 4.0), gamma / alpha)],
        );
    }
    table
}

fn push_ratio_row(table: &mut Table, source: &str, n: usize, ratios: &[(f64, f64)]) {
    let lemma: Vec<f64> = ratios.iter().map(|r| r.0).collect();
    let plain: Vec<f64> = ratios.iter().map(|r| r.1).collect();
    let s = Summary::of(&lemma);
    let violations = lemma.iter().filter(|&&r| r < 1.0 - 1e-9).count();
    table.push_row(vec![
        source.to_string(),
        n.to_string(),
        ratios.len().to_string(),
        fmt_f64(s.min),
        fmt_f64(s.mean),
        fmt_f64(plain.iter().copied().fold(f64::INFINITY, f64::min)),
        violations.to_string(),
    ]);
}

/// Minimum `γ/(α/4)` over random graphs (integration-test hook; must be
/// ≥ 1).
pub fn min_lemma_ratio(opts: &ExpOpts, n: usize, trials: usize) -> f64 {
    let ratios: Vec<f64> = run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
        let p = 2.5 * (n as f64).ln() / n as f64;
        let g = gen::erdos_renyi_connected(n, p.min(0.9), derive_seed(seed, 0));
        gamma_exact(&g) / (alpha_exact(&g) / 4.0)
    });
    ratios.into_iter().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_holds_in_quick_run() {
        let mut opts = ExpOpts::quick();
        opts.trials = 10;
        let t = run(&opts);
        for row in t.rows() {
            assert_eq!(row[6], "0", "Lemma V.1 violated in row {row:?}");
        }
    }
}
