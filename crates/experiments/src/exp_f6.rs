//! **F6 — mobile vs classical telephone model**: the reason the paper's
//! model exists. In the classical telephone model a node may accept
//! unboundedly many incoming connections per round; Daum et al. (and §I of
//! the paper) observe that bounding acceptance to one — what smartphone
//! peer-to-peer stacks actually do — makes classical strategies much
//! slower on hub-heavy topologies.
//!
//! Sweep: PUSH-PULL rumor spreading from one leaf of a star, identical
//! protocol code under both connection policies. In the classical model
//! the hub informs all leaves in `O(log n)` rounds; in the mobile model the
//! hub is a one-connection-per-round bottleneck and needs `Θ(n·log n)`
//! rounds. The reproduced claim: the mobile/classical ratio grows roughly
//! linearly in `n`.

use mtm_analysis::fit::log_log_fit;
use mtm_analysis::table::{fmt_f64, Table};
use mtm_engine::ModelParams;
use mtm_graph::GraphFamily;

use crate::harness::{push_pull_rounds, summarize, TopoSpec};
use crate::opts::{ExpOpts, Scale};

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (sizes, trials, max_rounds): (&[usize], usize, u64) = match opts.scale {
        Scale::Quick => (&[16, 64], opts.trials_or(3), 5_000_000),
        Scale::Full => (&[64, 128, 256, 512, 1024], opts.trials_or(10), 100_000_000),
    };
    let mut table =
        Table::new(vec!["n", "classical (mean)", "mobile (mean)", "mobile/classical", "n·log₂n"]);
    let mut ratio_points = Vec::new();
    for &n in sizes {
        let spec = TopoSpec::Static { family: GraphFamily::Star, n };
        let classical = summarize(&push_pull_rounds(
            &spec,
            ModelParams::classical(),
            trials,
            opts.seed,
            opts.threads,
            max_rounds,
        ));
        let mobile = summarize(&push_pull_rounds(
            &spec,
            ModelParams::mobile(0),
            trials,
            opts.seed ^ 1,
            opts.threads,
            max_rounds,
        ));
        let (c_mean, m_mean, ratio) = match (&classical.summary, &mobile.summary) {
            (Some(c), Some(m)) => {
                ratio_points.push((n as f64, m.mean / c.mean));
                (fmt_f64(c.mean), fmt_f64(m.mean), fmt_f64(m.mean / c.mean))
            }
            (c, m) => (
                c.as_ref().map_or("-".into(), |x| fmt_f64(x.mean)),
                m.as_ref().map_or("-".into(), |x| fmt_f64(x.mean)),
                "-".into(),
            ),
        };
        table.push_row(vec![
            n.to_string(),
            c_mean,
            m_mean,
            ratio,
            fmt_f64(n as f64 * (n as f64).log2()),
        ]);
    }
    if ratio_points.len() >= 2 {
        let fit = log_log_fit(&ratio_points);
        table.push_row(vec![
            "ratio fit".into(),
            format!("slope={}", fmt_f64(fit.slope)),
            format!("R²={}", fmt_f64(fit.r_squared)),
            "expect ≈1".into(),
            "-".into(),
        ]);
    }
    table
}

/// `(classical mean, mobile mean)` for one size (integration-test hook).
pub fn model_gap(opts: &ExpOpts, n: usize) -> (f64, f64) {
    let trials = opts.trials_or(3);
    let spec = TopoSpec::Static { family: GraphFamily::Star, n };
    let classical = summarize(&push_pull_rounds(
        &spec,
        ModelParams::classical(),
        trials,
        opts.seed,
        opts.threads,
        100_000_000,
    ));
    let mobile = summarize(&push_pull_rounds(
        &spec,
        ModelParams::mobile(0),
        trials,
        opts.seed ^ 1,
        opts.threads,
        100_000_000,
    ));
    (
        classical.summary.expect("classical must finish").mean,
        mobile.summary.expect("mobile must finish").mean,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_gap() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 3); // 2 sizes + fit row
                                // The mobile mean must exceed the classical mean at n = 64.
        let row = &t.rows()[1];
        let c: f64 = row[1].parse().expect("rounds column is numeric");
        let m: f64 = row[2].parse().expect("rounds column is numeric");
        assert!(m > c, "mobile ({m}) should be slower than classical ({c})");
    }
}
