//! **C1 — flash-crowd join: a small core elects, then the crowd arrives**
//! (service mode beyond the paper's one-shot elections).
//!
//! Scenario: an eighth of the network is online from round 1 and runs the
//! maintenance protocol alone; at `join_round` the remaining seven eighths
//! activate simultaneously (a flash crowd opening the app at once, §VIII's
//! asynchronous activations pushed to the worst case). Every joiner starts
//! as a claimant of epoch 0, so the instant after the join the network has
//! hundreds of concurrent claimants — the question is how fast the
//! min-UID rule collapses them and at what disruption cost.
//!
//! Two deliberate non-goals: the core's induced subgraph on an 8-regular
//! expander is sparse (expected intra-core degree ≈ 1), so the core phase
//! may not reach agreement — the `core agreed` column reports how often it
//! does rather than forcing it. And the crowd legitimately *takes over*
//! leadership whenever the global minimum UID arrives with it (expected in
//! 7/8 of trials): maintenance guarantees convergence to the min UID of
//! whoever is present, not tenure for the incumbent. The `takeover`
//! column measures exactly that.
//!
//! Expected shape: settle time after the join on the order of a fresh
//! election at full size; dual-claimant exposure for most of the settle
//! window; zero leaderless rounds (claimants are never scarce here); zero
//! re-elections (heartbeats never go stale — nobody is *dead*, merely
//! late).

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::UidPool;
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, ServiceConfig};
use mtm_graph::rng::derive_seed;
use mtm_graph::{GraphFamily, StaticTopology};

use crate::churn::{frac_by, mean_by, service_engine};
use crate::harness::summarize;
use crate::opts::{ExpOpts, Scale};

/// Per-trial measurements for one flash-crowd run.
struct Trial {
    /// Rounds from the join until every up participant agrees on one
    /// leader in the final epoch (`None` = never within the horizon).
    settle: Option<u64>,
    /// Did the isolated core phase itself reach agreement before the join?
    core_agreed: bool,
    /// Final leader differs from the core's minimum UID.
    takeover: bool,
    dual_rounds: u64,
    leaderless_rounds: u64,
    re_elections: u64,
}

fn trial(n: usize, join_round: u64, timeout: u64, horizon: u64, seed: u64) -> Trial {
    let g = GraphFamily::Expander8.build(n, derive_seed(seed, 0));
    let n_actual = g.node_count();
    let core = (n_actual / 8).max(1);
    let uids = UidPool::random(n_actual, derive_seed(seed, 10));
    let core_min = uids.as_slice()[..core].iter().copied().min().expect("core is non-empty");
    let mut e = service_engine(
        StaticTopology::new(g),
        ActivationSchedule::two_wave(n_actual, core, join_round),
        &uids,
        timeout,
        seed,
    );
    // Phase 1: the core alone, rounds 1..join_round. Phase 2 starts fresh
    // counters at the join so the measured disruption is the crowd's.
    let pre = e.run_service(&ServiceConfig::rounds(join_round - 1));
    let post = e.run_service(&ServiceConfig::rounds(horizon - (join_round - 1)));
    let last = post.epochs.last().expect("epoch history is never empty");
    Trial {
        settle: last.agreed_round.map(|r| r - (join_round - 1)),
        core_agreed: pre.final_leader.is_some(),
        takeover: post.final_leader.is_some_and(|l| l != core_min),
        dual_rounds: post.service.dual_leader_rounds,
        leaderless_rounds: post.service.leaderless_rounds,
        re_elections: post.service.re_elections,
    }
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (sizes, join_round, timeout, horizon, trials): (&[usize], u64, u64, u64, usize) =
        match opts.scale {
            Scale::Quick => (&[64], 60, 128, 400, opts.trials_or(2)),
            Scale::Full => (&[256, 1024, 4096], 200, 256, 1200, opts.trials_or(8)),
        };
    let mut table = Table::new(vec![
        "n",
        "core",
        "join@",
        "trials",
        "settle mean",
        "settle median",
        "dual rounds",
        "leaderless",
        "re-elect",
        "core agreed",
        "takeover",
        "unsettled",
    ]);
    for &n in sizes {
        let n_actual = GraphFamily::Expander8.build(n, 0).node_count();
        let results: Vec<Trial> = run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
            trial(n, join_round, timeout, horizon, seed)
        });
        let settles: Vec<Option<u64>> = results.iter().map(|t| t.settle).collect();
        let ts = summarize(&settles);
        table.push_row(vec![
            n_actual.to_string(),
            (n_actual / 8).max(1).to_string(),
            join_round.to_string(),
            trials.to_string(),
            ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
            ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.median)),
            fmt_f64(mean_by(&results, |t| t.dual_rounds as f64)),
            fmt_f64(mean_by(&results, |t| t.leaderless_rounds as f64)),
            fmt_f64(mean_by(&results, |t| t.re_elections as f64)),
            fmt_f64(frac_by(&results, |t| t.core_agreed)),
            fmt_f64(frac_by(&results, |t| t.takeover)),
            ts.timeouts.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 1);
        let row = &t.rows()[0];
        assert_eq!(row[11], "0", "every quick trial must settle after the join: {row:?}");
        // Claimants are never scarce in a join-only scenario.
        assert_eq!(row[7], fmt_f64(0.0), "no leaderless rounds expected: {row:?}");
    }
}
