//! Harness binary for experiment T5: Lemma V.1 — gamma >= alpha/4.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_t5::run(&opts);
    opts.emit("T5", "Lemma V.1 — gamma >= alpha/4", &table);
}
