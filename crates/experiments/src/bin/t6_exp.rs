//! Harness binary for experiment T6 (title and runner resolved through
//! the experiment registry).

fn main() {
    mtm_experiments::registry::run_binary("t6");
}
