//! Harness binary for experiment T6: Sec IX — tag length ablation b in {0, 1, loglog n}.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_t6::run(&opts);
    opts.emit("T6", "Sec IX — tag length ablation b in {0, 1, loglog n}", &table);
}
