//! Harness binary for experiment AS1 (title and runner resolved through
//! the experiment registry).

fn main() {
    mtm_experiments::registry::run_binary("as1");
}
