//! Harness binary for experiment F4: Sec VIII — self-stabilization on component joins.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_f4::run(&opts);
    opts.emit("F4", "Sec VIII — self-stabilization on component joins", &table);
}
