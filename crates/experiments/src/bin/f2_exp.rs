//! Harness binary for experiment F2: Theorem VII.2 — tau sweep, bit convergence vs blind gossip.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_f2::run(&opts);
    opts.emit("F2", "Theorem VII.2 — tau sweep, bit convergence vs blind gossip", &table);
}
