//! Harness binary for experiment T2: Corollary VI.6 — PUSH-PULL rumor spreading, b=0.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_t2::run(&opts);
    opts.emit("T2", "Corollary VI.6 — PUSH-PULL rumor spreading, b=0", &table);
}
