//! Harness binary for experiment F3: Sec VI vs VII — b=0 vs b=1 separation.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_f3::run(&opts);
    opts.emit("F3", "Sec VI vs VII — b=0 vs b=1 separation", &table);
}
