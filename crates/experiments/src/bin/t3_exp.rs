//! Harness binary for experiment T3: Theorem VII.2 — polylog rounds for tau >= log D, a = O(1).

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_t3::run(&opts);
    opts.emit("T3", "Theorem VII.2 — polylog rounds for tau >= log D, a = O(1)", &table);
}
