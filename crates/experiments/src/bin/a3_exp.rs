//! Harness binary for experiment A3: Ablation — PUSH-PULL vs PUSH-only vs PULL-only.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_a3::run(&opts);
    opts.emit("A3", "Ablation — PUSH-PULL vs PUSH-only vs PULL-only", &table);
}
