//! Harness binary for experiment F6: Related work — mobile vs classical telephone model gap.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_f6::run(&opts);
    opts.emit("F6", "Related work — mobile vs classical telephone model gap", &table);
}
