//! Harness binary for experiment F5: Theorem V.2 — PPUSH matching approximation m/f(r).

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_f5::run(&opts);
    opts.emit("F5", "Theorem V.2 — PPUSH matching approximation m/f(r)", &table);
}
