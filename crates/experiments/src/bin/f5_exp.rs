//! Harness binary for experiment F5 (title and runner resolved through
//! the experiment registry).

fn main() {
    mtm_experiments::registry::run_binary("f5");
}
