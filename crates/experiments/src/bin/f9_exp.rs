//! Harness binary for experiment F9: million-node scaling of blind gossip
//! and bit convergence on 8-regular expanders.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_f9::run(&opts);
    opts.emit("F9", "Scaling: slopes at 10^5-10^6 nodes on 8-regular expanders", &table);
}
