//! Harness binary for experiment F7: convergence trajectories for the
//! three leader election algorithms.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_f7::run(&opts);
    opts.emit("F7", "Convergence trajectories (fraction agreeing on the winner)", &table);
}
