//! Harness binary for experiment T1: Theorem VI.1 — blind gossip O((1/a)*D^2*log^2 n).

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_t1::run(&opts);
    opts.emit("T1", "Theorem VI.1 — blind gossip O((1/a)*D^2*log^2 n)", &table);
}
