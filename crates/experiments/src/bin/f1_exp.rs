//! Harness binary for experiment F1: Sec VI — Omega(D^2/sqrt(a)) lower bound on the line of stars.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_f1::run(&opts);
    opts.emit("F1", "Sec VI — Omega(D^2/sqrt(a)) lower bound on the line of stars", &table);
}
