//! Harness binary for experiment F8: stabilization time under crash
//! churn and message loss.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_f8::run(&opts);
    opts.emit("F8", "Fault injection: crash churn x message loss vs stabilization", &table);
}
