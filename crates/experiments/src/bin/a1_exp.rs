//! Harness binary for experiment A1: Ablation — ID tag length multiplier beta.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_a1::run(&opts);
    opts.emit("A1", "Ablation — ID tag length multiplier beta", &table);
}
