//! Harness binary for experiment A2: Ablation — group length multiplier.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_a2::run(&opts);
    opts.emit("A2", "Ablation — group length multiplier", &table);
}
