//! Harness binary for experiment A2 (title and runner resolved through
//! the experiment registry).

fn main() {
    mtm_experiments::registry::run_binary("a2");
}
