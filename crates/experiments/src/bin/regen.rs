//! Regenerate result tables with provenance, or verify them.
//!
//! ```text
//! regen --all                  # regenerate every table + MANIFEST.json
//! regen --only t4,f3           # regenerate a subset (manifest merges)
//! regen --check                # recompute file digests vs MANIFEST.json
//! regen --check --quick        # + re-run quick-scale sweeps (executor drift)
//! ```
//!
//! Exit codes: 0 success, 1 check failure / regeneration error, 2 usage.

use std::path::PathBuf;

use mtm_experiments::{manifest, ExpOpts};

struct Args {
    check: bool,
    quick: bool,
    ids: Vec<String>,
    results_dir: PathBuf,
    base: ExpOpts,
}

fn usage() -> ! {
    eprintln!(
        "usage: regen (--all | --only ID[,ID...] | --check [--quick]) \
         [--results-dir DIR] [--seed N] [--trials N] [--threads N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut quick = false;
    let mut all = false;
    let mut only: Option<Vec<String>> = None;
    let mut results_dir = PathBuf::from("results");
    let mut base = ExpOpts::default();
    let mut i = 0;
    let take = |argv: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        match argv.get(*i) {
            Some(v) => v.clone(),
            None => {
                eprintln!("error: {flag} needs a value");
                usage();
            }
        }
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--check" => check = true,
            "--quick" => quick = true,
            "--all" => all = true,
            "--only" => {
                only = Some(
                    take(&argv, &mut i, "--only")
                        .split(',')
                        .map(|s| s.trim().to_lowercase())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--results-dir" => results_dir = PathBuf::from(take(&argv, &mut i, "--results-dir")),
            "--seed" => match take(&argv, &mut i, "--seed").parse() {
                Ok(v) => base.seed = v,
                Err(e) => {
                    eprintln!("error: --seed: {e}");
                    usage();
                }
            },
            "--trials" => match take(&argv, &mut i, "--trials").parse() {
                Ok(v) => base.trials = v,
                Err(e) => {
                    eprintln!("error: --trials: {e}");
                    usage();
                }
            },
            "--threads" => match take(&argv, &mut i, "--threads").parse() {
                Ok(v) => base.threads = v,
                Err(e) => {
                    eprintln!("error: --threads: {e}");
                    usage();
                }
            },
            other => {
                eprintln!("error: unknown flag: {other}");
                usage();
            }
        }
        i += 1;
    }
    let ids: Vec<String> = if check {
        if all || only.is_some() {
            eprintln!("error: --check does not combine with --all/--only");
            usage();
        }
        Vec::new()
    } else if all {
        if only.is_some() {
            eprintln!("error: --all and --only are mutually exclusive");
            usage();
        }
        mtm_experiments::ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else if let Some(ids) = only {
        for id in &ids {
            if mtm_experiments::registry::find(id).is_none() {
                eprintln!("error: unknown experiment id {id:?}");
                usage();
            }
        }
        if ids.is_empty() {
            usage();
        }
        ids
    } else {
        usage();
    };
    Args { check, quick, ids, results_dir, base }
}

fn main() {
    let args = parse_args();

    if args.check {
        let m = match manifest::Manifest::load(&args.results_dir) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        // A semantics mismatch means every table is stale regardless of
        // byte digests — report it and stop before the per-file noise.
        if let Some(p) = manifest::check_engine_semantics(&m) {
            eprintln!("regen: {p}");
            std::process::exit(1);
        }
        let mut problems = manifest::check_digests(&m, &args.results_dir);
        if args.quick {
            eprintln!("regen: re-running quick-scale sweeps for {} tables", m.tables.len());
            problems.extend(manifest::check_quick(&m, args.base.threads));
        }
        if problems.is_empty() {
            println!(
                "regen: {} tables verified against {}/{}",
                m.tables.len(),
                args.results_dir.display(),
                manifest::FILE_NAME
            );
            std::process::exit(0);
        }
        eprintln!("regen: results drift detected ({} problems):", problems.len());
        for p in &problems {
            eprintln!("  {p}");
        }
        let mut ids: Vec<&str> =
            problems.iter().filter_map(|p| p.split(&[':', '.'][..]).next()).collect();
        ids.sort_unstable();
        ids.dedup();
        eprintln!("regen: offending tables: {}", ids.join(", "));
        eprintln!("regen: run `regen --only {}` and commit the result", ids.join(","));
        std::process::exit(1);
    }

    match manifest::regenerate(&args.ids, &args.results_dir, &args.base) {
        Ok(m) => {
            println!(
                "regen: wrote {} tables + {} ({} entries total)",
                args.ids.len(),
                manifest::FILE_NAME,
                m.tables.len()
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
