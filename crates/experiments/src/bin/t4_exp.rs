//! Harness binary for experiment T4: Theorem VIII.2 — non-synchronized vs synchronized bit convergence.

fn main() {
    let opts = mtm_experiments::ExpOpts::from_env();
    let table = mtm_experiments::exp_t4::run(&opts);
    opts.emit("T4", "Theorem VIII.2 — non-synchronized vs synchronized bit convergence", &table);
}
