//! Harness binary for experiment V1 (title and runner resolved through
//! the experiment registry).

fn main() {
    mtm_experiments::registry::run_binary("v1");
}
