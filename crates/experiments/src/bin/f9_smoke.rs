//! CI smoke for the F9 scaling path: one giant blind-gossip cell at
//! `n = 2^22` run through the sharded executor.
//!
//! This is the cheapest configuration that still exercises everything the
//! full F9 sweep depends on past the direct-CSR threshold: the cycle-union
//! expander builder, the struct-of-arrays engine state at multi-million
//! node counts, and the deterministic parallel step path (`--threads`,
//! default 4). It asserts the run stabilizes and prints the wall clock so
//! CI logs show throughput drift; any panic or timeout fails the job.

use mtm_experiments::harness::{blind_gossip_rounds_threaded, TopoSpec};
use mtm_experiments::opts::ExpOpts;
use mtm_experiments::perf::{RssSampler, Stopwatch};
use mtm_graph::GraphFamily;

const SMOKE_N: usize = 1 << 22;
const MAX_ROUNDS: u64 = 1_000_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExpOpts::parse(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("usage: f9_smoke [--seed N] [--threads N]");
        std::process::exit(2);
    });
    if opts.threads == 0 {
        opts.threads = 4;
    }
    let spec = TopoSpec::Static { family: GraphFamily::Expander8, n: SMOKE_N };
    let sampler = RssSampler::start(50);
    let sw = Stopwatch::start();
    // Single trial, all threads inside the engine: the giant-cell routing
    // the full sweep uses past DIRECT_CSR_THRESHOLD.
    let results = blind_gossip_rounds_threaded(&spec, 1, opts.seed, 1, opts.threads, MAX_ROUNDS);
    let wall = sw.elapsed_secs();
    let rss = sampler.stop();
    let rounds = results[0].unwrap_or_else(|| {
        eprintln!("f9_smoke: blind gossip failed to stabilize within {MAX_ROUNDS} rounds");
        std::process::exit(1);
    });
    let rss_mb = rss.map_or(-1.0, |b| b as f64 / (1024.0 * 1024.0));
    println!(
        "f9_smoke ok: n={SMOKE_N} threads={} rounds={rounds} wall_s={wall:.2} peak_rss_mb={rss_mb:.1}",
        opts.threads
    );
}
