//! Shared measurement machinery: topology specifications, per-algorithm
//! trial runners, and summary helpers.

use mtm_analysis::stats::Summary;
use mtm_core::{
    BitConvergence, BlindGossip, NonSyncBitConvergence, Ppush, PushPull, TagConfig, UidPool,
};
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, ModelParams};
use mtm_graph::dynamic::{BoxedTopology, LineOfStarsShuffle, RelabelingAdversary, StaticTopology};
use mtm_graph::rng::derive_seed;
use mtm_graph::{Graph, GraphFamily};

/// How a trial's topology is generated.
#[derive(Clone, Debug)]
pub enum TopoSpec {
    /// A static instance of a family (`τ = ∞`).
    Static { family: GraphFamily, n: usize },
    /// A family instance scrambled by the relabeling adversary every `τ`
    /// rounds (structure-preserving worst-case churn).
    Relabeled { family: GraphFamily, n: usize, tau: u64 },
    /// The §VI line-of-stars with leaves re-dealt every `τ` rounds.
    StarShuffle { spine: usize, points: usize, tau: u64 },
}

impl TopoSpec {
    /// Build the trial topology for a given seed.
    pub fn build(&self, seed: u64) -> BoxedTopology {
        match *self {
            TopoSpec::Static { family, n } => {
                Box::new(StaticTopology::new(family.build(n, derive_seed(seed, 0))))
            }
            TopoSpec::Relabeled { family, n, tau } => Box::new(RelabelingAdversary::new(
                family.build(n, derive_seed(seed, 0)),
                tau,
                derive_seed(seed, 1),
            )),
            TopoSpec::StarShuffle { spine, points, tau } => {
                Box::new(LineOfStarsShuffle::new(spine, points, tau, derive_seed(seed, 1)))
            }
        }
    }

    /// A representative static graph (for `n`, `Δ` and analytic `α`).
    pub fn sample_graph(&self, seed: u64) -> Graph {
        match *self {
            TopoSpec::Static { family, n } | TopoSpec::Relabeled { family, n, .. } => {
                family.build(n, derive_seed(seed, 0))
            }
            TopoSpec::StarShuffle { spine, points, .. } => {
                mtm_graph::gen::line_of_stars(spine, points)
            }
        }
    }

    /// Analytic `α` where the family provides one.
    pub fn known_alpha(&self, n_actual: usize) -> Option<f64> {
        match *self {
            TopoSpec::Static { family, .. } | TopoSpec::Relabeled { family, .. } => {
                family.known_alpha(n_actual)
            }
            TopoSpec::StarShuffle { .. } => GraphFamily::LineOfStars.known_alpha(n_actual),
        }
    }

    /// Stability factor of the spec (`None` = static).
    pub fn tau(&self) -> Option<u64> {
        match *self {
            TopoSpec::Static { .. } => None,
            TopoSpec::Relabeled { tau, .. } | TopoSpec::StarShuffle { tau, .. } => Some(tau),
        }
    }

    /// Human-readable label for table rows.
    pub fn label(&self) -> String {
        match *self {
            TopoSpec::Static { family, .. } => family.name().to_string(),
            TopoSpec::Relabeled { family, tau, .. } => format!("{}/τ={tau}", family.name()),
            TopoSpec::StarShuffle { tau, .. } => format!("line-of-stars/τ={tau}"),
        }
    }
}

/// Activation schedule specification.
#[derive(Clone, Copy, Debug)]
pub enum SchedSpec {
    /// All nodes activate in round 1.
    Synchronized,
    /// Uniform staggering over a window of rounds.
    Staggered { window: u64 },
}

impl SchedSpec {
    fn build(&self, n: usize, seed: u64) -> ActivationSchedule {
        match *self {
            SchedSpec::Synchronized => ActivationSchedule::synchronized(n),
            SchedSpec::Staggered { window } => {
                ActivationSchedule::staggered_uniform(n, window, derive_seed(seed, 2))
            }
        }
    }
}

/// Stabilization rounds of blind gossip (`b = 0`), one entry per trial
/// (`None` = did not stabilize within `max_rounds`).
pub fn blind_gossip_rounds(
    spec: &TopoSpec,
    trials: usize,
    base_seed: u64,
    threads: usize,
    max_rounds: u64,
) -> Vec<Option<u64>> {
    blind_gossip_rounds_threaded(spec, trials, base_seed, threads, 1, max_rounds)
}

/// [`blind_gossip_rounds`] with the engine's sharded executor at
/// `engine_threads` workers inside every trial. Results are identical for
/// any `engine_threads` (the executor is bit-for-bit deterministic — see
/// `Engine::set_threads`); the knob matters for single-trial giant cells,
/// where trial-level fan-out has nothing to parallelize.
pub fn blind_gossip_rounds_threaded(
    spec: &TopoSpec,
    trials: usize,
    base_seed: u64,
    trial_threads: usize,
    engine_threads: usize,
    max_rounds: u64,
) -> Vec<Option<u64>> {
    let spec = spec.clone();
    run_trials(trials, base_seed, trial_threads, move |_t, seed| {
        let topo = spec.build(seed);
        let n = topo.node_count();
        let uids = UidPool::random(n, derive_seed(seed, 10));
        let mut e = Engine::new(
            topo,
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            BlindGossip::spawn(&uids),
            derive_seed(seed, 11),
        );
        e.set_threads(engine_threads);
        let out = e.run_to_stabilization(max_rounds);
        if let Some(w) = out.winner {
            assert_eq!(w, uids.min_uid(), "blind gossip must elect the min UID");
        }
        out.stabilized_round
    })
}

/// Stabilization rounds of synchronized bit convergence (`b = 1`).
pub fn bit_convergence_rounds(
    spec: &TopoSpec,
    trials: usize,
    base_seed: u64,
    threads: usize,
    max_rounds: u64,
) -> Vec<Option<u64>> {
    bit_convergence_rounds_threaded(spec, trials, base_seed, threads, 1, max_rounds)
}

/// [`bit_convergence_rounds`] with the engine's sharded executor at
/// `engine_threads` workers inside every trial (see
/// [`blind_gossip_rounds_threaded`]).
pub fn bit_convergence_rounds_threaded(
    spec: &TopoSpec,
    trials: usize,
    base_seed: u64,
    trial_threads: usize,
    engine_threads: usize,
    max_rounds: u64,
) -> Vec<Option<u64>> {
    let spec = spec.clone();
    run_trials(trials, base_seed, trial_threads, move |_t, seed| {
        let mut topo = spec.build(seed);
        let n = topo.node_count();
        // Δ from the topology already built for this trial (round-1 graphs
        // are isomorphic to the family instance, so Δ is the sample Δ);
        // rebuilding the instance via `sample_graph` would double the
        // construction cost without changing any derived seed stream.
        let delta = topo.graph_at(1).max_degree();
        let config = TagConfig::for_network(n, delta);
        let uids = UidPool::random(n, derive_seed(seed, 10));
        let nodes = BitConvergence::spawn(&uids, config, derive_seed(seed, 12));
        let expect = nodes
            .iter()
            .map(BitConvergence::active_pair)
            .min()
            .expect("network has at least one node");
        let mut e = Engine::new(
            topo,
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            nodes,
            derive_seed(seed, 11),
        );
        e.set_threads(engine_threads);
        let out = e.run_to_stabilization(max_rounds);
        if let Some(w) = out.winner {
            assert_eq!(w, expect.uid, "bit convergence must elect the min (tag, uid) pair");
        }
        out.stabilized_round
    })
}

/// Stabilization rounds (after the last activation) of non-synchronized bit
/// convergence (`b = log log n + O(1)`).
pub fn nonsync_rounds(
    spec: &TopoSpec,
    sched: SchedSpec,
    trials: usize,
    base_seed: u64,
    threads: usize,
    max_rounds: u64,
) -> Vec<Option<u64>> {
    let spec = spec.clone();
    run_trials(trials, base_seed, threads, move |_t, seed| {
        let mut topo = spec.build(seed);
        let n = topo.node_count();
        // Δ from the already-built topology; see `bit_convergence_rounds`.
        let delta = topo.graph_at(1).max_degree();
        let config = TagConfig::for_network(n, delta);
        let uids = UidPool::random(n, derive_seed(seed, 10));
        let nodes = NonSyncBitConvergence::spawn(&uids, config, derive_seed(seed, 12));
        let expect = nodes
            .iter()
            .map(NonSyncBitConvergence::best_pair)
            .min()
            .expect("network has at least one node");
        let mut e = Engine::new(
            topo,
            ModelParams::mobile(config.nonsync_tag_bits()),
            sched.build(n, seed),
            nodes,
            derive_seed(seed, 11),
        );
        let out = e.run_to_stabilization(max_rounds);
        if let Some(w) = out.winner {
            assert_eq!(
                w, expect.uid,
                "non-synchronized bit convergence must elect the min (tag, uid) pair"
            );
        }
        out.rounds_after_activation
    })
}

/// Rounds for PUSH-PULL (`b = 0`) rumor spreading to inform all nodes,
/// under either connection policy.
pub fn push_pull_rounds(
    spec: &TopoSpec,
    params: ModelParams,
    trials: usize,
    base_seed: u64,
    threads: usize,
    max_rounds: u64,
) -> Vec<Option<u64>> {
    let spec = spec.clone();
    run_trials(trials, base_seed, threads, move |_t, seed| {
        let topo = spec.build(seed);
        let n = topo.node_count();
        let mut e = Engine::new(
            topo,
            params,
            ActivationSchedule::synchronized(n),
            PushPull::spawn(n, 1),
            derive_seed(seed, 11),
        );
        e.run_to_full_information(max_rounds).stabilized_round
    })
}

/// Rounds for PPUSH (`b = 1`) rumor spreading to inform all nodes.
pub fn ppush_rounds(
    spec: &TopoSpec,
    trials: usize,
    base_seed: u64,
    threads: usize,
    max_rounds: u64,
) -> Vec<Option<u64>> {
    let spec = spec.clone();
    run_trials(trials, base_seed, threads, move |_t, seed| {
        let topo = spec.build(seed);
        let n = topo.node_count();
        let mut e = Engine::new(
            topo,
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            Ppush::spawn(n, 1),
            derive_seed(seed, 11),
        );
        e.run_to_full_information(max_rounds).stabilized_round
    })
}

/// Summarize trial results, counting timeouts separately.
pub struct TrialSummary {
    /// Summary over the trials that finished.
    pub summary: Option<Summary>,
    /// Number of trials that hit the round budget.
    pub timeouts: usize,
}

/// Collapse per-trial `Option<u64>` results.
pub fn summarize(results: &[Option<u64>]) -> TrialSummary {
    let finished: Vec<u64> = results.iter().flatten().copied().collect();
    TrialSummary {
        summary: if finished.is_empty() { None } else { Some(Summary::of_u64(&finished)) },
        timeouts: results.len() - finished.len(),
    }
}

/// `(1/α)·Δ²·log₂²n` — the Theorem VI.1 / Corollary VI.6 bound shape
/// (constant-free).
pub fn blind_gossip_bound(n: usize, delta: usize, alpha: f64) -> f64 {
    let log_n = (n as f64).log2();
    (1.0 / alpha) * (delta as f64).powi(2) * log_n * log_n
}

/// `f(r) = Δ^(1/r)·r·log₂ n` — Theorem V.2's approximation factor with
/// `c = 1`.
pub fn f_of_r(delta: usize, r: u64, n: usize) -> f64 {
    (delta as f64).powf(1.0 / r as f64) * r as f64 * (n as f64).log2()
}

/// `(1/α)·Δ^(1/τ̂)·τ̂·log₂⁵n` — the Theorem VII.2 bound shape, with
/// `τ̂ = min{τ, log₂ Δ}` (`τ = None` ⇒ `τ̂ = log₂ Δ`).
pub fn bit_convergence_bound(n: usize, delta: usize, alpha: f64, tau: Option<u64>) -> f64 {
    let log_delta = (delta.max(2) as f64).log2().max(1.0);
    let tau_hat = match tau {
        Some(t) => (t as f64).min(log_delta),
        None => log_delta,
    };
    let log_n = (n as f64).log2();
    (1.0 / alpha) * (delta as f64).powf(1.0 / tau_hat) * tau_hat * log_n.powi(5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_handles_mixed_results() {
        let r = vec![Some(10), None, Some(20), Some(30)];
        let s = summarize(&r);
        assert_eq!(s.timeouts, 1);
        let sum = s.summary.expect("a non-empty trial set has a summary");
        assert_eq!(sum.count, 3);
        assert!((sum.mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_all_timeouts() {
        let s = summarize(&[None, None]);
        assert_eq!(s.timeouts, 2);
        assert!(s.summary.is_none());
    }

    #[test]
    fn bound_shapes_monotone() {
        assert!(blind_gossip_bound(100, 10, 0.5) < blind_gossip_bound(100, 20, 0.5));
        assert!(blind_gossip_bound(100, 10, 0.5) < blind_gossip_bound(100, 10, 0.25));
        // More stability never increases the bit-convergence bound.
        let b1 = bit_convergence_bound(1024, 32, 1.0, Some(1));
        let b5 = bit_convergence_bound(1024, 32, 1.0, Some(5));
        let binf = bit_convergence_bound(1024, 32, 1.0, None);
        assert!(b1 > b5 && b5 >= binf);
    }

    #[test]
    fn f_of_r_decreases_up_to_log_delta() {
        let n = 1024;
        let delta = 64;
        // f(r) = Δ^(1/r)·r·log n falls steeply from r = 1 and flattens near
        // r = ln Δ (it is not strictly monotone at the tail: f(3) = f(6)
        // for Δ = 64).
        let f1 = f_of_r(delta, 1, n);
        let f3 = f_of_r(delta, 3, n);
        let f6 = f_of_r(delta, 6, n);
        assert!(f1 > f3 && f1 > f6, "f(1)={f1} f(3)={f3} f(6)={f6}");
        assert!(f3 <= f6 + 1e-9);
    }

    #[test]
    fn blind_gossip_measurement_smoke() {
        let spec = TopoSpec::Static { family: GraphFamily::Clique, n: 12 };
        let results = blind_gossip_rounds(&spec, 4, 1, 2, 200_000);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.is_some()));
    }

    #[test]
    fn measurement_deterministic_across_thread_counts() {
        let spec = TopoSpec::Static { family: GraphFamily::Cycle, n: 10 };
        let a = blind_gossip_rounds(&spec, 4, 9, 1, 500_000);
        let b = blind_gossip_rounds(&spec, 4, 9, 4, 500_000);
        assert_eq!(a, b);
    }

    #[test]
    fn bit_convergence_measurement_smoke() {
        let spec = TopoSpec::Static { family: GraphFamily::Clique, n: 12 };
        let results = bit_convergence_rounds(&spec, 2, 3, 2, 500_000);
        assert!(results.iter().all(|r| r.is_some()));
    }

    #[test]
    fn nonsync_measurement_smoke() {
        let spec = TopoSpec::Static { family: GraphFamily::Clique, n: 10 };
        let results =
            nonsync_rounds(&spec, SchedSpec::Staggered { window: 50 }, 2, 4, 2, 1_000_000);
        assert!(results.iter().all(|r| r.is_some()));
    }

    #[test]
    fn rumor_measurement_smoke() {
        let spec = TopoSpec::Static { family: GraphFamily::Clique, n: 16 };
        let pp = push_pull_rounds(&spec, ModelParams::mobile(0), 2, 5, 2, 200_000);
        assert!(pp.iter().all(|r| r.is_some()));
        let pr = ppush_rounds(&spec, 2, 5, 2, 200_000);
        assert!(pr.iter().all(|r| r.is_some()));
    }

    #[test]
    fn topo_spec_labels() {
        assert_eq!(TopoSpec::Static { family: GraphFamily::Clique, n: 8 }.label(), "clique");
        assert_eq!(
            TopoSpec::Relabeled { family: GraphFamily::Star, n: 8, tau: 3 }.label(),
            "star/τ=3"
        );
        assert_eq!(
            TopoSpec::StarShuffle { spine: 4, points: 4, tau: 1 }.label(),
            "line-of-stars/τ=1"
        );
    }
}
