//! Options shared by every experiment binary.

/// Scale of an experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI/bench scale: small sizes, few trials, seconds per experiment.
    Quick,
    /// Paper scale: the sweeps recorded in EXPERIMENTS.md.
    Full,
}

/// Options shared by every experiment.
#[derive(Clone, Debug)]
pub struct ExpOpts {
    /// Trials per configuration (0 = use the experiment's default).
    pub trials: usize,
    /// Base seed; every trial derives its own.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Quick or full sweeps.
    pub scale: Scale,
    /// Optional path to also write the table as CSV.
    pub csv: Option<String>,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts { trials: 0, seed: 0xC0FFEE, threads: 0, scale: Scale::Full, csv: None }
    }
}

impl ExpOpts {
    /// Quick-scale options for tests and benches.
    pub fn quick() -> Self {
        ExpOpts { scale: Scale::Quick, ..Default::default() }
    }

    /// Trials to run, with a per-experiment default.
    pub fn trials_or(&self, default: usize) -> usize {
        if self.trials == 0 {
            default
        } else {
            self.trials
        }
    }

    /// Parse from command-line arguments (everything after the binary
    /// name). Recognized: `--quick`, `--trials N`, `--seed N`,
    /// `--threads N`, `--csv PATH`. Returns an error message for unknown
    /// flags.
    pub fn parse(args: &[String]) -> Result<ExpOpts, String> {
        let mut opts = ExpOpts::default();
        let mut i = 0;
        let take_value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => opts.scale = Scale::Quick,
                "--full" => opts.scale = Scale::Full,
                "--trials" => {
                    opts.trials = take_value(args, &mut i, "--trials")?
                        .parse()
                        .map_err(|e| format!("--trials: {e}"))?;
                }
                "--seed" => {
                    opts.seed = take_value(args, &mut i, "--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--threads" => {
                    opts.threads = take_value(args, &mut i, "--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--csv" => opts.csv = Some(take_value(args, &mut i, "--csv")?),
                other => return Err(format!("unknown flag: {other}")),
            }
            i += 1;
        }
        Ok(opts)
    }

    /// Parse from `std::env::args`, exiting with a usage message on error.
    pub fn from_env() -> ExpOpts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match ExpOpts::parse(&args) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--quick|--full] [--trials N] [--seed N] [--threads N] [--csv PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Print the table; write CSV if requested. The `(csv written to …)`
    /// line is only printed when the write actually succeeded; a failed
    /// write is returned as an error so binaries can exit nonzero instead
    /// of misreporting success.
    pub fn emit(
        &self,
        id: &str,
        title: &str,
        table: &mtm_analysis::table::Table,
    ) -> Result<(), String> {
        println!("== {id}: {title} ==");
        println!("{}", table.render());
        if let Some(path) = &self.csv {
            std::fs::write(path, table.to_csv())
                .map_err(|e| format!("failed to write {path}: {e}"))?;
            println!("(csv written to {path})");
        }
        Ok(())
    }

    /// A copy of these options whose CSV path is made unique to `id` by
    /// inserting `-<id>` before the extension (`out.csv` → `out-t1.csv`).
    /// Multi-table emitters (the CLI's `experiment all` mode) must use
    /// this so each table gets its own file instead of every table
    /// clobbering the same path.
    pub fn with_csv_for(&self, id: &str) -> ExpOpts {
        let mut opts = self.clone();
        opts.csv = self.csv.as_ref().map(|path| {
            let id = id.to_lowercase();
            match path.rsplit_once('.') {
                // Only treat the suffix as an extension if it looks like
                // one (no path separator after the dot).
                Some((stem, ext)) if !ext.contains('/') => format!("{stem}-{id}.{ext}"),
                _ => format!("{path}-{id}"),
            }
        });
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = ExpOpts::parse(&[]).expect("empty flag list parses to defaults");
        assert_eq!(o.scale, Scale::Full);
        assert_eq!(o.trials, 0);
    }

    #[test]
    fn parse_flags() {
        let o = ExpOpts::parse(&s(&["--quick", "--trials", "7", "--seed", "99", "--threads", "2"]))
            .expect("all flags in this list are valid");
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.trials, 7);
        assert_eq!(o.seed, 99);
        assert_eq!(o.threads, 2);
    }

    #[test]
    fn parse_csv_path() {
        let o = ExpOpts::parse(&s(&["--csv", "/tmp/x.csv"])).expect("--csv with a path is valid");
        assert_eq!(o.csv.as_deref(), Some("/tmp/x.csv"));
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(ExpOpts::parse(&s(&["--bogus"])).is_err());
        assert!(ExpOpts::parse(&s(&["--trials"])).is_err());
        assert!(ExpOpts::parse(&s(&["--trials", "abc"])).is_err());
    }

    #[test]
    fn emit_reports_csv_write_failure() {
        let mut t = mtm_analysis::table::Table::new(vec!["x"]);
        t.push_row(vec!["1"]);
        let mut o = ExpOpts {
            csv: Some("/nonexistent-dir/deep/table.csv".to_string()),
            ..ExpOpts::default()
        };
        let err = o.emit("T0", "emit failure propagates", &t).expect_err("write must fail");
        assert!(err.contains("/nonexistent-dir/deep/table.csv"), "error names the path: {err}");
        o.csv = None;
        o.emit("T0", "no csv requested", &t).expect("plain emit succeeds");
    }

    #[test]
    fn with_csv_for_derives_per_table_paths() {
        let mut o = ExpOpts { csv: Some("results/all.csv".to_string()), ..ExpOpts::default() };
        assert_eq!(o.with_csv_for("t1").csv.as_deref(), Some("results/all-t1.csv"));
        assert_eq!(o.with_csv_for("F3").csv.as_deref(), Some("results/all-f3.csv"));
        // Distinct tables never share a path.
        assert_ne!(o.with_csv_for("t1").csv, o.with_csv_for("t2").csv);
        // No extension: the id is appended.
        o.csv = Some("out/tables".to_string());
        assert_eq!(o.with_csv_for("a1").csv.as_deref(), Some("out/tables-a1"));
        // A dot in a directory name is not an extension.
        o.csv = Some("out.d/tables".to_string());
        assert_eq!(o.with_csv_for("a1").csv.as_deref(), Some("out.d/tables-a1"));
        // No CSV requested: still none.
        o.csv = None;
        assert_eq!(o.with_csv_for("t1").csv, None);
    }

    #[test]
    fn trials_or_default() {
        let mut o = ExpOpts::default();
        assert_eq!(o.trials_or(5), 5);
        o.trials = 2;
        assert_eq!(o.trials_or(5), 2);
    }
}
