//! Options shared by every experiment binary.

/// Scale of an experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI/bench scale: small sizes, few trials, seconds per experiment.
    Quick,
    /// Paper scale: the sweeps recorded in EXPERIMENTS.md.
    Full,
}

/// Options shared by every experiment.
#[derive(Clone, Debug)]
pub struct ExpOpts {
    /// Trials per configuration (0 = use the experiment's default).
    pub trials: usize,
    /// Base seed; every trial derives its own.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Quick or full sweeps.
    pub scale: Scale,
    /// Optional path to also write the table as CSV.
    pub csv: Option<String>,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts { trials: 0, seed: 0xC0FFEE, threads: 0, scale: Scale::Full, csv: None }
    }
}

impl ExpOpts {
    /// Quick-scale options for tests and benches.
    pub fn quick() -> Self {
        ExpOpts { scale: Scale::Quick, ..Default::default() }
    }

    /// Trials to run, with a per-experiment default.
    pub fn trials_or(&self, default: usize) -> usize {
        if self.trials == 0 {
            default
        } else {
            self.trials
        }
    }

    /// Parse from command-line arguments (everything after the binary
    /// name). Recognized: `--quick`, `--trials N`, `--seed N`,
    /// `--threads N`, `--csv PATH`. Returns an error message for unknown
    /// flags.
    pub fn parse(args: &[String]) -> Result<ExpOpts, String> {
        let mut opts = ExpOpts::default();
        let mut i = 0;
        let take_value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => opts.scale = Scale::Quick,
                "--full" => opts.scale = Scale::Full,
                "--trials" => {
                    opts.trials = take_value(args, &mut i, "--trials")?
                        .parse()
                        .map_err(|e| format!("--trials: {e}"))?;
                }
                "--seed" => {
                    opts.seed = take_value(args, &mut i, "--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--threads" => {
                    opts.threads = take_value(args, &mut i, "--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--csv" => opts.csv = Some(take_value(args, &mut i, "--csv")?),
                other => return Err(format!("unknown flag: {other}")),
            }
            i += 1;
        }
        Ok(opts)
    }

    /// Parse from `std::env::args`, exiting with a usage message on error.
    pub fn from_env() -> ExpOpts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match ExpOpts::parse(&args) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--quick|--full] [--trials N] [--seed N] [--threads N] [--csv PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Print the table; write CSV if requested.
    pub fn emit(&self, id: &str, title: &str, table: &mtm_analysis::table::Table) {
        println!("== {id}: {title} ==");
        println!("{}", table.render());
        if let Some(path) = &self.csv {
            std::fs::write(path, table.to_csv())
                .unwrap_or_else(|e| eprintln!("warning: failed to write {path}: {e}"));
            println!("(csv written to {path})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = ExpOpts::parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::Full);
        assert_eq!(o.trials, 0);
    }

    #[test]
    fn parse_flags() {
        let o = ExpOpts::parse(&s(&["--quick", "--trials", "7", "--seed", "99", "--threads", "2"]))
            .unwrap();
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.trials, 7);
        assert_eq!(o.seed, 99);
        assert_eq!(o.threads, 2);
    }

    #[test]
    fn parse_csv_path() {
        let o = ExpOpts::parse(&s(&["--csv", "/tmp/x.csv"])).unwrap();
        assert_eq!(o.csv.as_deref(), Some("/tmp/x.csv"));
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(ExpOpts::parse(&s(&["--bogus"])).is_err());
        assert!(ExpOpts::parse(&s(&["--trials"])).is_err());
        assert!(ExpOpts::parse(&s(&["--trials", "abc"])).is_err());
    }

    #[test]
    fn trials_or_default() {
        let mut o = ExpOpts::default();
        assert_eq!(o.trials_or(5), 5);
        o.trials = 2;
        assert_eq!(o.trials_or(5), 2);
    }
}
