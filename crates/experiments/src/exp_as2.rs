//! **AS2 — asynchronous PUSH-PULL: full-information time vs
//! latency-distribution spread** (the rumor-spreading side of AS1).
//!
//! Same harness as [`crate::exp_as1`], different workload: PUSH-PULL rumor
//! spreading (Theorem VI.5's protocol) runs under the event backend while
//! the lockstep engine provides the synchronized-round comparator on the
//! same graph with the same per-node randomness. The spread knob of
//! [`LatencyModel::multipeer`] again sweeps from an almost-synchronous
//! network to heavily drifted clocks.
//!
//! PUSH-PULL is the interesting stress case for asynchrony: its analysis
//! leans on *everyone* attempting a connection each round (informed nodes
//! push, uninformed pull), so drifted clocks could plausibly starve the
//! informed/uninformed frontier. The ratio column checks they do not: full
//! information lands within a constant factor of the lockstep bound at
//! every spread, matching the asynchronous-gossip follow-up's claim.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::PushPull;
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, EventEngine, LatencyModel, ModelParams};
use mtm_graph::dynamic::StaticTopology;
use mtm_graph::rng::derive_seed;
use mtm_graph::GraphFamily;

use crate::harness::summarize;
use crate::opts::{ExpOpts, Scale};

/// One event-backend trial: ticks until every node is informed.
fn event_trial(
    family: GraphFamily,
    n: usize,
    spread: u64,
    seed: u64,
    max_time: u64,
) -> Option<u64> {
    let g = family.build(n, derive_seed(seed, 0));
    let n_actual = g.node_count();
    let mut e = EventEngine::new(
        g,
        ModelParams::mobile(0),
        PushPull::spawn(n_actual, 1),
        derive_seed(seed, 11),
        LatencyModel::multipeer(spread),
    );
    e.run_to_full_information(max_time).completed_at
}

/// The lockstep comparator: same graph and trial seed, synchronized rounds.
fn lockstep_trial(family: GraphFamily, n: usize, seed: u64, max_rounds: u64) -> Option<u64> {
    let g = family.build(n, derive_seed(seed, 0));
    let n_actual = g.node_count();
    let mut e = Engine::new(
        StaticTopology::new(g),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n_actual),
        PushPull::spawn(n_actual, 1),
        derive_seed(seed, 11),
    );
    e.run_to_full_information(max_rounds).stabilized_round
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (ns, spreads, trials, max_time): (&[usize], &[u64], usize, u64) = match opts.scale {
        Scale::Quick => (&[32], &[0, 8], opts.trials_or(2), 5_000_000),
        Scale::Full => (&[64, 256], &[0, 4, 16, 64], opts.trials_or(8), 100_000_000),
    };
    let family = GraphFamily::Expander8;
    let mut table = Table::new(vec![
        "n",
        "spread",
        "trials",
        "mean ticks",
        "median",
        "lockstep rounds",
        "bound ticks",
        "ratio",
        "timeouts",
    ]);
    for &n in ns {
        let lockstep: Vec<Option<u64>> =
            run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                lockstep_trial(family, n, seed, max_time)
            });
        let lockstep_mean = summarize(&lockstep).summary.map(|s| s.mean);
        for &spread in spreads {
            let results: Vec<Option<u64>> =
                run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                    event_trial(family, n, spread, seed, max_time)
                });
            let ts = summarize(&results);
            let mean = ts.summary.as_ref().map(|s| s.mean);
            let bound =
                lockstep_mean.map(|m| m * LatencyModel::multipeer(spread).nominal_round_ticks());
            let ratio = match (mean, bound) {
                (Some(m), Some(b)) if b > 0.0 => fmt_f64(m / b),
                _ => "-".into(),
            };
            table.push_row(vec![
                n.to_string(),
                spread.to_string(),
                trials.to_string(),
                mean.map_or("-".into(), fmt_f64),
                ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.median)),
                lockstep_mean.map_or("-".into(), fmt_f64),
                bound.map_or("-".into(), fmt_f64),
                ratio,
                ts.timeouts.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 1;
        let t = run(&opts);
        assert_eq!(t.len(), 2); // 1 size × 2 spreads
        for row in t.rows() {
            assert_eq!(row[8], "0", "no cell should time out at quick scale: {row:?}");
            assert_ne!(row[7], "-", "the bound ratio must be computable: {row:?}");
        }
    }
}
