//! **T2 — Corollary VI.6**: PUSH-PULL rumor spreading succeeds in
//! `O((1/α)·Δ²·log²n)` rounds in the mobile telephone model with `b = 0`
//! and any `τ ≥ 1`.
//!
//! Same sweep design as T1 (the corollary inherits Theorem VI.1's bound):
//! families with known `α`, static and `τ = 1` churn, rumor starting at one
//! node, measuring rounds until every node is informed.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_engine::ModelParams;
use mtm_graph::GraphFamily;

use crate::harness::{blind_gossip_bound, push_pull_rounds, summarize, TopoSpec};
use crate::opts::{ExpOpts, Scale};

const FAMILIES: [GraphFamily; 4] =
    [GraphFamily::Clique, GraphFamily::Cycle, GraphFamily::Star, GraphFamily::LineOfStars];

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (sizes, trials, max_rounds): (&[usize], usize, u64) = match opts.scale {
        Scale::Quick => (&[16, 32], opts.trials_or(3), 2_000_000),
        Scale::Full => (&[64, 128, 256], opts.trials_or(10), 50_000_000),
    };
    let mut table = Table::new(vec![
        "topology",
        "n",
        "Δ",
        "α",
        "τ",
        "trials",
        "mean",
        "median",
        "timeouts",
        "bound",
        "mean/bound",
    ]);
    for family in FAMILIES {
        for &n in sizes {
            for tau in [None, Some(1u64)] {
                let spec = match tau {
                    None => TopoSpec::Static { family, n },
                    Some(t) => TopoSpec::Relabeled { family, n, tau: t },
                };
                let sample = spec.sample_graph(opts.seed);
                let n_actual = sample.node_count();
                let delta = sample.max_degree();
                let alpha = spec.known_alpha(n_actual).expect("family has closed-form α");
                let results = push_pull_rounds(
                    &spec,
                    ModelParams::mobile(0),
                    trials,
                    opts.seed,
                    opts.threads,
                    max_rounds,
                );
                let ts = summarize(&results);
                let bound = blind_gossip_bound(n_actual, delta, alpha);
                let (mean, median, ratio) = match &ts.summary {
                    Some(s) => (fmt_f64(s.mean), fmt_f64(s.median), fmt_f64(s.mean / bound)),
                    None => ("-".into(), "-".into(), "-".into()),
                };
                table.push_row(vec![
                    spec.label(),
                    n_actual.to_string(),
                    delta.to_string(),
                    fmt_f64(alpha),
                    tau.map_or("∞".into(), |t| t.to_string()),
                    trials.to_string(),
                    mean,
                    median,
                    ts.timeouts.to_string(),
                    fmt_f64(bound),
                    ratio,
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_full_grid() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 16);
        for row in t.rows() {
            assert_eq!(row[8], "0", "timeout in row {row:?}");
        }
    }
}
