//! **C4 — rolling churn: steady-state service quality under the Markov
//! fault chain** (service mode beyond the paper's one-shot elections).
//!
//! Scenario: the F8 fault model — every node crashes with probability
//! `crash` per round and recovers with probability `recover` — but instead
//! of asking "how much slower is one election", the maintenance protocol
//! runs for thousands of rounds and the table reports *service quality*:
//! what fraction of rounds had exactly one live leader everyone agreed on
//! (`stable`), no live leader (`leaderless`), or several (`dual`)?
//!
//! `recover` is held at 2·10⁻³ (mean outage 500 rounds, comfortably past
//! the 256-round detection timeout) so the `crash` axis alone sets the
//! churn intensity; the steady-state down fraction is
//! `crash/(crash+recover)`. Re-elections are driven by the *leader's* own
//! crash process — rate ≈ `crash · e^(−recover·timeout)` per round — so
//! the sweep's horizon is long enough for a handful per trial at the top
//! setting. A second block fixes the churn mix and scales `n` to 2²⁰,
//! the F9 regime, checking that detection latency (a local staleness
//! clock) does not grow with network size even when thousands of nodes
//! flip state every round.
//!
//! Expected shape: `stable` degrades gracefully with `crash`; leaderless
//! cost per re-election stays ≈ timeout + election time; dual exposure
//! stays small (a recovered ex-claimant abdicates on first contact — the
//! rejoin-grace rule); the scale block's quality columns are flat in `n`.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::UidPool;
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, ServiceConfig};
use mtm_graph::rng::derive_seed;
use mtm_graph::{FaultConfig, FaultyTopology, GraphFamily, StaticTopology};

use crate::churn::{frac_by, mean_by, service_engine};
use crate::opts::{ExpOpts, Scale};

/// Per-round recovery probability; see the module docs.
pub const RECOVER: f64 = 0.002;

/// Per-trial measurements for one rolling-churn run.
struct Trial {
    re_elections: u64,
    leaderless_rounds: u64,
    dual_rounds: u64,
    stable_rounds: u64,
    final_epoch: u64,
    agreed_at_end: bool,
}

fn trial(n: usize, crash: f64, recover: f64, timeout: u64, horizon: u64, seed: u64) -> Trial {
    let g = GraphFamily::Expander8.build(n, derive_seed(seed, 0));
    let n_actual = g.node_count();
    let uids = UidPool::random(n_actual, derive_seed(seed, 10));
    let cfg = if crash > 0.0 { FaultConfig::crashes(crash, recover) } else { FaultConfig::NONE };
    let topo = FaultyTopology::new(StaticTopology::new(g), cfg, derive_seed(seed, 13));
    let mut e =
        service_engine(topo, ActivationSchedule::synchronized(n_actual), &uids, timeout, seed);
    let out = e.run_service(&ServiceConfig::rounds(horizon));
    Trial {
        re_elections: out.service.re_elections,
        leaderless_rounds: out.service.leaderless_rounds,
        dual_rounds: out.service.dual_leader_rounds,
        stable_rounds: out.service.stable_rounds,
        final_epoch: out.final_epoch,
        agreed_at_end: out.final_leader.is_some(),
    }
}

/// One table block: a set of `(n, crash, trials, horizon)` rows sharing a
/// timeout.
struct Block {
    rows: Vec<(usize, f64, usize, u64)>,
    timeout: u64,
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let blocks: Vec<Block> = match opts.scale {
        Scale::Quick => vec![Block {
            rows: vec![(64, 0.0, opts.trials_or(2), 800), (64, 0.002, opts.trials_or(2), 800)],
            timeout: 128,
        }],
        Scale::Full => vec![
            // Churn-intensity axis at fixed n.
            Block {
                rows: [0.0, 0.0002, 0.001]
                    .iter()
                    .map(|&c| (1024, c, opts.trials_or(5), 4000))
                    .collect(),
                timeout: 256,
            },
            // Scale axis at fixed churn: the F9 regime.
            Block {
                rows: vec![
                    (1 << 14, 0.001, opts.trials_or(3).min(3), 1500),
                    (1 << 17, 0.001, opts.trials_or(2).min(2), 1500),
                    (1 << 20, 0.001, 1, 1500),
                ],
                timeout: 256,
            },
        ],
    };
    let mut table = Table::new(vec![
        "n",
        "crash",
        "recover",
        "horizon",
        "trials",
        "re-elect",
        "leaderless%",
        "dual%",
        "stable%",
        "final epoch",
        "agreed@end",
    ]);
    for block in &blocks {
        let timeout = block.timeout;
        for &(n, crash, trials, horizon) in &block.rows {
            let n_actual = GraphFamily::Expander8.build(n, 0).node_count();
            let recover = match (crash > 0.0, opts.scale) {
                (false, _) => 0.0,
                // Quick runs compress the outage length with the horizon.
                (true, Scale::Quick) => 0.004,
                (true, Scale::Full) => RECOVER,
            };
            let results: Vec<Trial> =
                run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                    trial(n, crash, recover, timeout, horizon, seed)
                });
            let pct = |x: f64| fmt_f64(100.0 * x / horizon as f64);
            table.push_row(vec![
                n_actual.to_string(),
                fmt_f64(crash),
                fmt_f64(recover),
                horizon.to_string(),
                trials.to_string(),
                fmt_f64(mean_by(&results, |t| t.re_elections as f64)),
                pct(mean_by(&results, |t| t.leaderless_rounds as f64)),
                pct(mean_by(&results, |t| t.dual_rounds as f64)),
                pct(mean_by(&results, |t| t.stable_rounds as f64)),
                fmt_f64(mean_by(&results, |t| t.final_epoch as f64)),
                fmt_f64(frac_by(&results, |t| t.agreed_at_end)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 2);
        let calm = &t.rows()[0];
        // The churn-free row anchors the table: one term, no downtime.
        assert_eq!(calm[5], "0", "no re-elections without churn: {calm:?}");
        assert_eq!(calm[6], "0", "no leaderless rounds without churn: {calm:?}");
        assert_eq!(calm[9], "0", "epoch 0 holds without churn: {calm:?}");
        assert_eq!(calm[10], fmt_f64(1.0), "churn-free run ends agreed: {calm:?}");
        let churned = &t.rows()[1];
        let stable: f64 = churned[8].parse().expect("numeric stable% column");
        assert!(stable > 10.0, "churned run still serves most rounds: {churned:?}");
    }
}
