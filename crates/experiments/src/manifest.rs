//! Results provenance manifest: `results/MANIFEST.json`.
//!
//! Every table under `results/` is recorded here with the options that
//! produced it (base seed, scale, trials), the wall-clock cost of the run,
//! engine/build identifiers, and SHA-256 digests of the emitted `.txt` and
//! `.csv`. The `regen` binary writes the manifest when it regenerates
//! tables and verifies it in `--check` mode:
//!
//! * digest mode — recompute the digests of the committed files and compare
//!   against the manifest (fast: catches hand-edited or stale files);
//! * `--quick` mode — additionally re-run every experiment at quick scale
//!   and compare against the recorded quick digest (slower: catches
//!   executor-behavior drift that leaves the committed bytes untouched,
//!   the failure mode that left 13 tables stale after the PR 3 run-loop
//!   fixes).
//!
//! JSON round-trips through [`mtm_analysis::json`] (the offline build has
//! no serde); digests through [`crate::digest`].

use std::path::Path;

use mtm_analysis::json::{parse, Value};
use mtm_analysis::table::Table;

use crate::digest::sha256_hex;
use crate::opts::{ExpOpts, Scale};
use crate::registry::Experiment;

/// Manifest schema identifier (bump on incompatible layout changes).
pub const SCHEMA: &str = "mtm-results-manifest/v1";

/// Manifest file name inside the results directory.
pub const FILE_NAME: &str = "MANIFEST.json";

/// A digest of one emitted file, with its path relative to `results/`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileDigest {
    pub path: String,
    pub sha256: String,
}

/// Provenance record for one table.
#[derive(Clone, Debug, PartialEq)]
pub struct TableEntry {
    /// Lowercase experiment id (also the file stem).
    pub id: String,
    /// Experiment title at recording time.
    pub title: String,
    /// Base seed of the run.
    pub seed: u64,
    /// `"full"` or `"quick"`.
    pub scale: String,
    /// Trials option (0 = the experiment's per-configuration default).
    pub trials: usize,
    /// Wall-clock seconds the regeneration took (metadata only — not part
    /// of any digest, and expected to vary between machines).
    pub wall_s: f64,
    /// Digests of the emitted files.
    pub files: Vec<FileDigest>,
    /// Digest of a quick-scale run (`render() + to_csv()`, default trials,
    /// same base seed); `None` for tables whose rendered output is not
    /// bit-deterministic (wall-clock / RSS columns, e.g. F9).
    pub quick_sha256: Option<String>,
}

/// The parsed manifest.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Manifest {
    /// Engine/build identifiers, in insertion order.
    pub engine: Vec<(String, String)>,
    /// One entry per table, in presentation order.
    pub tables: Vec<TableEntry>,
}

/// Engine/build identifiers for manifests written by this build.
pub fn engine_info() -> Vec<(String, String)> {
    vec![
        ("workspace_version".to_string(), env!("CARGO_PKG_VERSION").to_string()),
        (
            "build_profile".to_string(),
            if cfg!(debug_assertions) { "debug" } else { "release" }.to_string(),
        ),
        // The executor whose RNG stream produced these tables is pinned by
        // the trace-equivalence suite; name it so a future stream change
        // is traceable to the test that must have been updated with it.
        ("rng_contract".to_string(), "crates/engine/tests/trace_equivalence.rs".to_string()),
        // Semantics version of the round executor (bumped when the meaning
        // of a (seed, config) pair changes — e.g. v2's counter-based loss
        // coins). A manifest recorded under a different version than the
        // running build means every table must be regenerated.
        ("engine_semantics".to_string(), mtm_engine::ENGINE_SEMANTICS_VERSION.to_string()),
    ]
}

/// The `.txt` and `.csv` bodies emitted for a table, exactly as the
/// harness binaries print them (`<id>_exp --csv results/<id>.csv >
/// results/<id>.txt`), so regenerated files are byte-identical to
/// hand-run ones.
pub struct Emitted {
    pub txt: String,
    pub csv: String,
}

/// Render the canonical file contents for `table` produced by `exp`.
/// `csv_rel` is the path string echoed in the txt trailer (the committed
/// files use `results/<id>.csv`).
pub fn render_outputs(exp: &Experiment, table: &Table, csv_rel: &str) -> Emitted {
    let txt = format!(
        "== {}: {} ==\n{}\n(csv written to {csv_rel})\n",
        exp.display_id(),
        exp.title,
        table.render()
    );
    Emitted { txt, csv: table.to_csv() }
}

/// Digest of a quick-scale run of `exp`: SHA-256 over the rendered table
/// plus its CSV. Pure function of (seed, executor); trials/threads come
/// from quick defaults so `--check --quick` recomputes the same bytes.
pub fn quick_digest(exp: &Experiment, seed: u64, threads: usize) -> String {
    let opts = ExpOpts { scale: Scale::Quick, seed, threads, ..ExpOpts::default() };
    let table = (exp.run)(&opts);
    let mut bytes = table.render();
    bytes.push_str(&table.to_csv());
    sha256_hex(bytes.as_bytes())
}

impl Manifest {
    /// Entry for `id`, if recorded.
    pub fn entry(&self, id: &str) -> Option<&TableEntry> {
        self.tables.iter().find(|t| t.id == id)
    }

    /// Insert or replace the entry with `entry.id`, keeping `order` (a
    /// list of ids) as the table order for ids that appear in it.
    pub fn upsert(&mut self, entry: TableEntry, order: &[&str]) {
        match self.tables.iter_mut().find(|t| t.id == entry.id) {
            Some(slot) => *slot = entry,
            None => self.tables.push(entry),
        }
        let rank = |id: &str| order.iter().position(|o| *o == id).unwrap_or(usize::MAX);
        self.tables.sort_by_key(|t| rank(&t.id));
    }

    /// Render as the canonical JSON document.
    pub fn render(&self) -> String {
        let engine = self.engine.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect();
        let tables = self
            .tables
            .iter()
            .map(|t| {
                let files = t
                    .files
                    .iter()
                    .map(|f| {
                        Value::Obj(vec![
                            ("path".to_string(), Value::Str(f.path.clone())),
                            ("sha256".to_string(), Value::Str(f.sha256.clone())),
                        ])
                    })
                    .collect();
                Value::Obj(vec![
                    ("id".to_string(), Value::Str(t.id.clone())),
                    ("title".to_string(), Value::Str(t.title.clone())),
                    ("seed".to_string(), Value::Num(t.seed as f64)),
                    ("scale".to_string(), Value::Str(t.scale.clone())),
                    ("trials".to_string(), Value::Num(t.trials as f64)),
                    ("wall_s".to_string(), Value::Num((t.wall_s * 100.0).round() / 100.0)),
                    ("files".to_string(), Value::Arr(files)),
                    (
                        "quick_sha256".to_string(),
                        match &t.quick_sha256 {
                            Some(d) => Value::Str(d.clone()),
                            None => Value::Null,
                        },
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("engine".to_string(), Value::Obj(engine)),
            ("tables".to_string(), Value::Arr(tables)),
        ])
        .render()
    }

    /// Parse a manifest document (strict about schema and field types).
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = parse(text)?;
        let schema = doc.get("schema").and_then(Value::as_str).ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (expected {SCHEMA:?})"));
        }
        let engine = doc
            .get("engine")
            .and_then(Value::members)
            .ok_or("missing engine object")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), v.as_str().ok_or("non-string engine field")?.to_string())))
            .collect::<Result<Vec<_>, &str>>()?;
        let str_field = |v: &Value, key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("table missing {key}"))?
                .to_string())
        };
        let num_field = |v: &Value, key: &str| -> Result<f64, String> {
            v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("table missing {key}"))
        };
        let mut tables = Vec::new();
        for t in doc.get("tables").and_then(Value::as_arr).ok_or("missing tables array")? {
            let mut files = Vec::new();
            for f in t.get("files").and_then(Value::as_arr).ok_or("table missing files")? {
                files.push(FileDigest {
                    path: str_field(f, "path")?,
                    sha256: str_field(f, "sha256")?,
                });
            }
            let quick_sha256 = match t.get("quick_sha256") {
                Some(Value::Str(d)) => Some(d.clone()),
                Some(Value::Null) | None => None,
                Some(_) => return Err("quick_sha256 must be a string or null".to_string()),
            };
            tables.push(TableEntry {
                id: str_field(t, "id")?,
                title: str_field(t, "title")?,
                seed: num_field(t, "seed")? as u64,
                scale: str_field(t, "scale")?,
                trials: num_field(t, "trials")? as usize,
                wall_s: num_field(t, "wall_s")?,
                files,
                quick_sha256,
            });
        }
        Ok(Manifest { engine, tables })
    }

    /// Load from `<results_dir>/MANIFEST.json`.
    pub fn load(results_dir: &Path) -> Result<Manifest, String> {
        let path = results_dir.join(FILE_NAME);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        Manifest::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write to `<results_dir>/MANIFEST.json`.
    pub fn store(&self, results_dir: &Path) -> Result<(), String> {
        let path = results_dir.join(FILE_NAME);
        std::fs::write(&path, self.render()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Tables whose rendered output contains wall-clock / RSS columns and is
/// therefore not bit-deterministic; they get no quick digest (digest-mode
/// checks of the committed bytes still apply).
pub const WALL_CLOCK_TABLES: &[&str] = &["f9"];

/// Check that the manifest was recorded under this build's engine
/// semantics version. Digest checks compare bytes; this catches the
/// deeper staleness where the bytes match a manifest that a *different
/// executor* produced (e.g. tables recorded before the v2 counter-based
/// loss coins). Returns a problem string on mismatch or a missing field.
pub fn check_engine_semantics(manifest: &Manifest) -> Option<String> {
    let current = mtm_engine::ENGINE_SEMANTICS_VERSION;
    match manifest.engine.iter().find(|(k, _)| k == "engine_semantics") {
        Some((_, v)) if v == current => None,
        Some((_, v)) => Some(format!(
            "manifest records engine_semantics {v:?} but this build is {current:?} — \
             run `regen --all` and commit the result"
        )),
        None => Some(format!(
            "manifest records no engine_semantics but this build is {current:?} — \
             run `regen --all` and commit the result"
        )),
    }
}

/// Regenerate `ids` (lowercase, in any order; they are processed in
/// presentation order) into `results_dir`: run each experiment with
/// `base` options, write `<id>.txt` / `<id>.csv` in the canonical byte
/// format, record provenance (including a quick-scale digest for
/// deterministic tables), and write the updated `MANIFEST.json`. Existing
/// entries for other ids are preserved, so `--only` regenerations merge
/// instead of truncating the manifest.
pub fn regenerate(ids: &[String], results_dir: &Path, base: &ExpOpts) -> Result<Manifest, String> {
    let mut manifest = match std::fs::metadata(results_dir.join(FILE_NAME)) {
        Ok(_) => Manifest::load(results_dir)?,
        Err(_) => Manifest::default(),
    };
    manifest.engine = engine_info();
    std::fs::create_dir_all(results_dir).map_err(|e| format!("{}: {e}", results_dir.display()))?;

    for exp in crate::registry::REGISTRY.iter() {
        if !ids.iter().any(|id| id.eq_ignore_ascii_case(exp.id)) {
            continue;
        }
        eprintln!("regen: running {} ({})", exp.display_id(), exp.title);
        let watch = crate::perf::Stopwatch::start();
        let table = (exp.run)(base);
        let wall_s = watch.elapsed_secs();

        let csv_rel = format!("{}/{}.csv", results_dir.display(), exp.id);
        let emitted = render_outputs(exp, &table, &csv_rel);
        let txt_name = format!("{}.txt", exp.id);
        let csv_name = format!("{}.csv", exp.id);
        std::fs::write(results_dir.join(&txt_name), &emitted.txt)
            .map_err(|e| format!("{txt_name}: {e}"))?;
        std::fs::write(results_dir.join(&csv_name), &emitted.csv)
            .map_err(|e| format!("{csv_name}: {e}"))?;

        let quick_sha256 = if WALL_CLOCK_TABLES.contains(&exp.id) {
            None
        } else {
            Some(quick_digest(exp, base.seed, base.threads))
        };
        manifest.upsert(
            TableEntry {
                id: exp.id.to_string(),
                title: exp.title.to_string(),
                seed: base.seed,
                scale: match base.scale {
                    Scale::Quick => "quick".to_string(),
                    Scale::Full => "full".to_string(),
                },
                trials: base.trials,
                wall_s,
                files: vec![
                    FileDigest { path: txt_name, sha256: sha256_hex(emitted.txt.as_bytes()) },
                    FileDigest { path: csv_name, sha256: sha256_hex(emitted.csv.as_bytes()) },
                ],
                quick_sha256,
            },
            &crate::ALL_IDS,
        );
        eprintln!("regen: {} done in {wall_s:.1}s", exp.display_id());
    }
    manifest.store(results_dir)?;
    Ok(manifest)
}

/// Digest-mode check: recompute the SHA-256 of every file recorded in the
/// manifest against the bytes on disk, and flag result files on disk that
/// the manifest does not cover. Returns one human-readable problem per
/// drifted table (empty = clean).
pub fn check_digests(manifest: &Manifest, results_dir: &Path) -> Vec<String> {
    let mut problems = Vec::new();
    for t in &manifest.tables {
        for f in &t.files {
            let path = results_dir.join(&f.path);
            match std::fs::read(&path) {
                Ok(bytes) => {
                    let got = sha256_hex(&bytes);
                    if got != f.sha256 {
                        problems.push(format!(
                            "{}: {} drifted (manifest {}…, on disk {}…)",
                            t.id,
                            f.path,
                            &f.sha256[..12.min(f.sha256.len())],
                            &got[..12]
                        ));
                    }
                }
                Err(e) => problems.push(format!("{}: {} unreadable: {e}", t.id, f.path)),
            }
        }
    }
    // Orphans: result files with no manifest entry.
    if let Ok(dir) = std::fs::read_dir(results_dir) {
        let mut orphans: Vec<String> = dir
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|name| {
                (name.ends_with(".txt") || name.ends_with(".csv"))
                    && !manifest.tables.iter().any(|t| t.files.iter().any(|f| f.path == *name))
            })
            .collect();
        orphans.sort();
        for name in orphans {
            problems.push(format!("{name}: present in results/ but not in the manifest"));
        }
    }
    problems
}

/// Quick-mode check: re-run every table's experiment at quick scale and
/// compare against the recorded quick digest. Catches executor drift that
/// digest mode cannot (committed bytes unchanged, behavior changed).
/// Tables recorded with `quick_sha256: null` are skipped.
pub fn check_quick(manifest: &Manifest, threads: usize) -> Vec<String> {
    let mut problems = Vec::new();
    for t in &manifest.tables {
        let Some(expect) = &t.quick_sha256 else {
            continue;
        };
        let Some(exp) = crate::registry::find(&t.id) else {
            problems.push(format!("{}: recorded in the manifest but not in the registry", t.id));
            continue;
        };
        let got = quick_digest(exp, t.seed, threads);
        if got != *expect {
            problems.push(format!(
                "{}: quick-scale output drifted (recorded {}…, executor now produces {}…) — \
                 the executor changed behavior; regenerate the table",
                t.id,
                &expect[..12.min(expect.len())],
                &got[..12]
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            engine: engine_info(),
            tables: vec![
                TableEntry {
                    id: "t1".to_string(),
                    title: "Theorem VI.1 — blind gossip".to_string(),
                    seed: 0xC0FFEE,
                    scale: "full".to_string(),
                    trials: 0,
                    wall_s: 12.34,
                    files: vec![
                        FileDigest { path: "t1.txt".to_string(), sha256: "ab".repeat(32) },
                        FileDigest { path: "t1.csv".to_string(), sha256: "cd".repeat(32) },
                    ],
                    quick_sha256: Some("ef".repeat(32)),
                },
                TableEntry {
                    id: "f9".to_string(),
                    title: "Scaling".to_string(),
                    seed: 0xC0FFEE,
                    scale: "full".to_string(),
                    trials: 3,
                    wall_s: 600.0,
                    files: vec![FileDigest { path: "f9.txt".to_string(), sha256: "01".repeat(32) }],
                    quick_sha256: None, // wall-clock columns
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let m = sample();
        let text = m.render();
        let back = Manifest::parse(&text).expect("parse rendered manifest");
        assert_eq!(back, m);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = sample().render().replace(SCHEMA, "something-else/v9");
        assert!(Manifest::parse(&text).unwrap_err().contains("unsupported schema"));
    }

    #[test]
    fn upsert_replaces_and_orders() {
        let mut m = sample();
        let mut replacement = m.tables[0].clone();
        replacement.wall_s = 99.0;
        m.upsert(replacement, &["t1", "f9"]);
        assert_eq!(m.tables.len(), 2);
        assert!(
            (m.entry("t1").expect("the t1 entry was just recorded").wall_s - 99.0).abs() < 1e-9
        );
        // New entry lands in presentation order, not at the end.
        let mut extra = m.tables[0].clone();
        extra.id = "f1".to_string();
        m.upsert(extra, &["t1", "f1", "f9"]);
        let ids: Vec<&str> = m.tables.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids, ["t1", "f1", "f9"]);
    }

    #[test]
    fn digest_check_flags_drift_and_orphans() {
        let dir = std::env::temp_dir().join("mtm-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp results dir");
        std::fs::write(dir.join("t1.txt"), "table body\n").expect("write txt");
        std::fs::write(dir.join("t1.csv"), "a,b\n1,2\n").expect("write csv");
        std::fs::write(dir.join("zz.txt"), "orphan\n").expect("write orphan");

        let mut m = Manifest { engine: engine_info(), tables: vec![] };
        m.tables.push(TableEntry {
            id: "t1".to_string(),
            title: "t".to_string(),
            seed: 1,
            scale: "full".to_string(),
            trials: 0,
            wall_s: 0.0,
            files: vec![
                FileDigest {
                    path: "t1.txt".to_string(),
                    sha256: crate::digest::sha256_hex(b"table body\n"),
                },
                FileDigest {
                    path: "t1.csv".to_string(),
                    sha256: crate::digest::sha256_hex(b"a,b\n1,2\n"),
                },
            ],
            quick_sha256: None,
        });

        let problems = check_digests(&m, &dir);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("zz.txt"), "{problems:?}");

        // Tamper with the csv: drift is reported with the table id.
        std::fs::write(dir.join("t1.csv"), "a,b\n1,3\n").expect("tamper");
        let problems = check_digests(&m, &dir);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems.iter().any(|p| p.starts_with("t1:") && p.contains("drifted")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_semantics_mismatch_is_detected() {
        let mut m = sample();
        assert_eq!(check_engine_semantics(&m), None, "fresh manifest matches this build");
        for (k, v) in &mut m.engine {
            if k == "engine_semantics" {
                *v = "v0-from-the-past".to_string();
            }
        }
        let problem = check_engine_semantics(&m).expect("mismatch flagged");
        assert!(problem.contains("regen --all"), "{problem}");
        m.engine.retain(|(k, _)| k != "engine_semantics");
        assert!(check_engine_semantics(&m).is_some(), "missing field flagged");
    }

    #[test]
    fn quick_digest_is_stable_for_a_cheap_experiment() {
        let exp = crate::registry::find("t5").expect("t5 registered");
        let a = quick_digest(exp, 7, 2);
        let b = quick_digest(exp, 7, 1);
        assert_eq!(a, b, "quick digest must not depend on thread count");
        let c = quick_digest(exp, 8, 2);
        assert_ne!(a, c, "quick digest must depend on the seed");
    }
}
