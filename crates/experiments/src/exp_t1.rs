//! **T1 — Theorem VI.1**: blind gossip solves leader election in
//! `O((1/α)·Δ²·log²n)` rounds, for any `τ ≥ 1` and `b = 0`.
//!
//! Sweep: graph families with known `α`, sizes doubling, both a static
//! topology (`τ = ∞`) and the relabeling adversary at `τ = 1` (maximum
//! churn). For each configuration we report measured stabilization rounds
//! and the constant-free bound shape `(1/α)·Δ²·log²n`; the reproduction
//! claim is that measured/bound stays bounded (and well below 1) across the
//! sweep — i.e. the bound's *shape* tracks the measurement.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_graph::GraphFamily;

use crate::harness::{blind_gossip_bound, blind_gossip_rounds, summarize, TopoSpec};
use crate::opts::{ExpOpts, Scale};

/// Families swept (all with closed-form `α`).
const FAMILIES: [GraphFamily; 4] =
    [GraphFamily::Clique, GraphFamily::Cycle, GraphFamily::Star, GraphFamily::LineOfStars];

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (sizes, trials, max_rounds): (&[usize], usize, u64) = match opts.scale {
        Scale::Quick => (&[16, 32], opts.trials_or(3), 2_000_000),
        Scale::Full => (&[64, 128, 256], opts.trials_or(10), 50_000_000),
    };
    let mut table = Table::new(vec![
        "topology",
        "n",
        "Δ",
        "α",
        "τ",
        "trials",
        "mean",
        "median",
        "p90",
        "timeouts",
        "bound",
        "mean/bound",
    ]);
    for family in FAMILIES {
        for &n in sizes {
            for tau in [None, Some(1u64)] {
                let spec = match tau {
                    None => TopoSpec::Static { family, n },
                    Some(t) => TopoSpec::Relabeled { family, n, tau: t },
                };
                let sample = spec.sample_graph(opts.seed);
                let n_actual = sample.node_count();
                let delta = sample.max_degree();
                let alpha = spec.known_alpha(n_actual).expect("family has closed-form α");
                let results =
                    blind_gossip_rounds(&spec, trials, opts.seed, opts.threads, max_rounds);
                let ts = summarize(&results);
                let bound = blind_gossip_bound(n_actual, delta, alpha);
                let (mean, median, p90, ratio) = match &ts.summary {
                    Some(s) => (
                        fmt_f64(s.mean),
                        fmt_f64(s.median),
                        fmt_f64(s.p90),
                        fmt_f64(s.mean / bound),
                    ),
                    None => ("-".into(), "-".into(), "-".into(), "-".into()),
                };
                table.push_row(vec![
                    spec.label(),
                    n_actual.to_string(),
                    delta.to_string(),
                    fmt_f64(alpha),
                    tau.map_or("∞".into(), |t| t.to_string()),
                    trials.to_string(),
                    mean,
                    median,
                    p90,
                    ts.timeouts.to_string(),
                    fmt_f64(bound),
                    ratio,
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_full_grid() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        opts.seed = 7;
        let t = run(&opts);
        // 4 families × 2 sizes × 2 τ values.
        assert_eq!(t.len(), 16);
        assert_eq!(t.header()[0], "topology");
        // No timeouts at quick scale.
        for row in t.rows() {
            assert_eq!(row[9], "0", "timeout in row {row:?}");
        }
    }
}
