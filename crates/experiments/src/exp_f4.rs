//! **F4 — §VIII self-stabilization**: "if you connect isolated network
//! components that have been running the algorithm for arbitrary durations,
//! the combined network will still stabilize to a single leader in the same
//! stabilization time."
//!
//! Design: two disjoint 8-regular expanders run non-synchronized bit
//! convergence long enough to converge internally (each half elects its own
//! leader — arbitrary prior state). At the join round a bridge edge
//! appears. We measure rounds from the join until global stabilization and
//! compare with a *fresh* execution on the joined graph — the claim is that
//! re-stabilization after a join costs the same order as stabilizing from
//! scratch.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::{NonSyncBitConvergence, TagConfig, UidPool};
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, ModelParams};
use mtm_graph::dynamic::JoinSchedule;
use mtm_graph::rng::derive_seed;
use mtm_graph::{gen, StaticTopology};

use crate::harness::summarize;
use crate::opts::{ExpOpts, Scale};

/// One joined-run trial: returns `(rounds after join to global
/// stabilization, halves converged separately before join)`.
fn joined_trial(half: usize, join_round: u64, seed: u64, max_rounds: u64) -> (Option<u64>, bool) {
    let left = gen::random_regular(half, 8, derive_seed(seed, 0));
    let right = gen::random_regular(half, 8, derive_seed(seed, 1));
    let bridge = [(0u32, half as u32)];
    let topo = JoinSchedule::new(&left, &right, &bridge, join_round);
    let n = 2 * half;
    let config = TagConfig::for_network(n, 9); // joined Δ = 9 at the bridge
    let uids = UidPool::random(n, derive_seed(seed, 10));
    let nodes = NonSyncBitConvergence::spawn(&uids, config, derive_seed(seed, 12));
    let mut e = Engine::new(
        topo,
        ModelParams::mobile(config.nonsync_tag_bits()),
        ActivationSchedule::synchronized(n),
        nodes,
        derive_seed(seed, 11),
    );
    // Run to just before the join and check each half converged internally.
    e.run_rounds(join_round - 1);
    let half_converged = {
        let l0 = e.node(0).best_pair();
        let r0 = e.node(half).best_pair();
        e.nodes()[..half].iter().all(|p| p.best_pair() == l0)
            && e.nodes()[half..].iter().all(|p| p.best_pair() == r0)
    };
    let out = e.run_to_stabilization(max_rounds);
    (out.stabilized_round.map(|r| r - join_round + 1), half_converged)
}

/// One fresh-run trial on the already-joined graph.
fn fresh_trial(half: usize, seed: u64, max_rounds: u64) -> Option<u64> {
    let left = gen::random_regular(half, 8, derive_seed(seed, 0));
    let right = gen::random_regular(half, 8, derive_seed(seed, 1));
    let joined = left.disjoint_union(&right).with_edges(&[(0, half as u32)]);
    let n = joined.node_count();
    let config = TagConfig::for_network(n, 9);
    let uids = UidPool::random(n, derive_seed(seed, 10));
    let nodes = NonSyncBitConvergence::spawn(&uids, config, derive_seed(seed, 12));
    let mut e = Engine::new(
        StaticTopology::new(joined),
        ModelParams::mobile(config.nonsync_tag_bits()),
        ActivationSchedule::synchronized(n),
        nodes,
        derive_seed(seed, 11),
    );
    e.run_to_stabilization(max_rounds).stabilized_round
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (halves, join_round, trials, max_rounds): (&[usize], u64, usize, u64) = match opts.scale {
        Scale::Quick => (&[12], 30_000, opts.trials_or(2), 50_000_000),
        Scale::Full => (&[16, 32, 64], 200_000, opts.trials_or(8), 500_000_000),
    };
    let mut table = Table::new(vec![
        "half",
        "n",
        "join@",
        "pre-converged",
        "rejoin (mean)",
        "fresh (mean)",
        "rejoin/fresh",
    ]);
    for &half in halves {
        let joined: Vec<(Option<u64>, bool)> =
            run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                joined_trial(half, join_round, seed, max_rounds)
            });
        let fresh: Vec<Option<u64>> =
            run_trials(trials, opts.seed ^ 9, opts.threads, move |_t, seed| {
                fresh_trial(half, seed, max_rounds)
            });
        let pre_converged = joined.iter().filter(|(_, c)| *c).count();
        let rejoin = summarize(&joined.iter().map(|(r, _)| *r).collect::<Vec<_>>());
        let fresh_s = summarize(&fresh);
        let ratio = match (&rejoin.summary, &fresh_s.summary) {
            (Some(a), Some(b)) => fmt_f64(a.mean / b.mean),
            _ => "-".into(),
        };
        table.push_row(vec![
            half.to_string(),
            (2 * half).to_string(),
            join_round.to_string(),
            format!("{pre_converged}/{trials}"),
            rejoin.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
            fresh_s.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
            ratio,
        ]);
    }
    table
}

/// `(rejoin mean, fresh mean, halves-converged fraction)` for one size
/// (integration-test hook).
pub fn rejoin_vs_fresh(opts: &ExpOpts, half: usize, join_round: u64) -> (f64, f64, f64) {
    let trials = opts.trials_or(3);
    let joined: Vec<(Option<u64>, bool)> =
        run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
            joined_trial(half, join_round, seed, 500_000_000)
        });
    let fresh: Vec<Option<u64>> =
        run_trials(trials, opts.seed ^ 9, opts.threads, move |_t, seed| {
            fresh_trial(half, seed, 500_000_000)
        });
    let rejoin = summarize(&joined.iter().map(|(r, _)| *r).collect::<Vec<_>>());
    let fresh_s = summarize(&fresh);
    let conv = joined.iter().filter(|(_, c)| *c).count() as f64 / trials as f64;
    (
        rejoin.summary.expect("rejoin must stabilize").mean,
        fresh_s.summary.expect("fresh must stabilize").mean,
        conv,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 1;
        let t = run(&opts);
        assert_eq!(t.len(), 1);
        let row = &t.rows()[0];
        assert_ne!(row[4], "-", "rejoin timed out");
        assert_ne!(row[5], "-", "fresh timed out");
    }
}
