//! **F8 — fault injection: crash churn × message loss vs stabilization
//! time** (robustness beyond the paper's fault-free model).
//!
//! The paper's analysis assumes every device stays up and every accepted
//! proposal completes. Real smartphone deployments (§IX) see neither:
//! devices die and recover (battery, app suspension) and transfers abort.
//! This experiment measures how gracefully non-synchronized bit
//! convergence degrades when both fault processes are switched on:
//!
//! * **crash churn** — [`FaultyTopology`] runs a per-node Markov chain
//!   (crash with probability `crash` per round, recover with probability
//!   [`RECOVER`]), so in steady state a `crash/(crash+RECOVER)` fraction
//!   of nodes is dark at any time;
//! * **message loss** — `Engine::set_proposal_loss(p)` drops each
//!   accepted connection proposal independently with probability `p`.
//!
//! Both processes are seed-derived, so every cell of the sweep replays
//! exactly (the determinism contract holds under faults — see
//! `tests/robustness.rs`). The sweep crosses crash rates with loss rates
//! on an 8-regular expander and the §VI line-of-stars; the "slowdown"
//! column is mean rounds relative to the fault-free cell of the same
//! topology. Expected shape: graceful, roughly `1/(1-p)`-ish degradation
//! from loss alone, a mild penalty from churn while recover ≫ crash, and
//! a super-linear penalty on the line of stars, whose single-hub cut
//! makes every spine crash a temporary partition.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::{NonSyncBitConvergence, TagConfig, UidPool};
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, ModelParams};
use mtm_graph::rng::derive_seed;
use mtm_graph::{FaultConfig, FaultyTopology, GraphFamily, StaticTopology};

use crate::harness::summarize;
use crate::opts::{ExpOpts, Scale};

/// Per-round recovery probability for every crashed node. Held fixed
/// across the sweep so the steady-state down fraction is
/// `crash / (crash + RECOVER)` — the crash axis alone controls severity.
pub const RECOVER: f64 = 0.1;

/// One trial: rounds to stabilization under the given fault mix.
fn trial(
    family: GraphFamily,
    n: usize,
    crash: f64,
    loss: f64,
    seed: u64,
    max_rounds: u64,
) -> Option<u64> {
    let g = family.build(n, derive_seed(seed, 0));
    let n_actual = g.node_count();
    let config = TagConfig::for_network(n_actual, g.max_degree());
    let uids = UidPool::random(n_actual, derive_seed(seed, 10));
    let nodes = NonSyncBitConvergence::spawn(&uids, config, derive_seed(seed, 12));
    let cfg = if crash > 0.0 { FaultConfig::crashes(crash, RECOVER) } else { FaultConfig::NONE };
    let topo = FaultyTopology::new(StaticTopology::new(g), cfg, derive_seed(seed, 13));
    let mut e = Engine::new(
        topo,
        ModelParams::mobile(config.nonsync_tag_bits()),
        ActivationSchedule::synchronized(n_actual),
        nodes,
        derive_seed(seed, 11),
    );
    e.set_proposal_loss(loss);
    e.run_to_stabilization(max_rounds).stabilized_round
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (n, crashes, losses, trials, max_rounds): (usize, &[f64], &[f64], usize, u64) =
        match opts.scale {
            Scale::Quick => (32, &[0.0, 0.002], &[0.0, 0.2], opts.trials_or(2), 5_000_000),
            Scale::Full => {
                (128, &[0.0, 0.001, 0.005], &[0.0, 0.1, 0.3], opts.trials_or(8), 100_000_000)
            }
        };
    let families = [GraphFamily::Expander8, GraphFamily::LineOfStars];
    let mut table = Table::new(vec![
        "topology",
        "n",
        "crash",
        "loss",
        "trials",
        "mean rounds",
        "median",
        "slowdown",
        "timeouts",
    ]);
    for family in families {
        let n_actual = family.build(n, 0).node_count();
        let mut baseline_mean: Option<f64> = None;
        for &crash in crashes {
            for &loss in losses {
                let results: Vec<Option<u64>> =
                    run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                        trial(family, n, crash, loss, seed, max_rounds)
                    });
                let ts = summarize(&results);
                let mean = ts.summary.as_ref().map(|s| s.mean);
                if crash == 0.0 && loss == 0.0 {
                    baseline_mean = mean;
                }
                let slowdown = match (mean, baseline_mean) {
                    (Some(m), Some(b)) if b > 0.0 => fmt_f64(m / b),
                    _ => "-".into(),
                };
                table.push_row(vec![
                    family.name().to_string(),
                    n_actual.to_string(),
                    fmt_f64(crash),
                    fmt_f64(loss),
                    trials.to_string(),
                    mean.map_or("-".into(), fmt_f64),
                    ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.median)),
                    slowdown,
                    ts.timeouts.to_string(),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 1;
        let t = run(&opts);
        assert_eq!(t.len(), 8); // 2 topologies × 2 crash rates × 2 loss rates
        for row in t.rows() {
            assert_eq!(row[8], "0", "no cell should time out at quick scale: {row:?}");
        }
        // The fault-free cells anchor the slowdown column at 1.
        assert_eq!(t.rows()[0][7], fmt_f64(1.0));
        assert_eq!(t.rows()[4][7], fmt_f64(1.0));
    }
}
