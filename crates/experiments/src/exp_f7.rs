//! **F7 — convergence trajectories**: the time-series view of
//! stabilization. For one topology, all three leader election algorithms,
//! the fraction of nodes already pointing at the eventual winner as a
//! function of the round — the epidemic S-curve behind Theorems VI.1,
//! VII.2 and VIII.2's epidemic-expansion arguments (slow start while the
//! winner's set `S_r` is small, exponential middle while `|S_r| ≤ n/2`
//! grows by `(1 + Θ(α))` factors, saturating tail as `U_r` shrinks).
//!
//! Unlike T1/F2 (which report only the stabilization round) this
//! regenerates the whole curve, checkpointed on a fixed round grid and
//! averaged across trials.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::{BitConvergence, BlindGossip, IdPair, NonSyncBitConvergence, TagConfig, UidPool};
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, LeaderView, ModelParams, Protocol};
use mtm_graph::rng::derive_seed;
use mtm_graph::{DynamicTopology, StaticTopology};

use crate::opts::{ExpOpts, Scale};

/// Fraction of nodes pointing at `winner`.
fn agree_fraction<P: Protocol + LeaderView, T: DynamicTopology>(
    e: &Engine<P, T>,
    winner: u64,
) -> f64 {
    let n = e.node_count();
    e.nodes().iter().filter(|p| p.leader() == winner).count() as f64 / n as f64
}

/// The eventual winner of the `(tag, uid)` ordering, or `None` when the
/// active set is empty — the no-winner case degrades to a flat-zero curve
/// instead of a panic deep inside `min()`.
fn winner_uid(pairs: impl Iterator<Item = IdPair>) -> Option<u64> {
    pairs.min().map(|p| p.uid)
}

/// One trial: agreement fraction at each checkpoint for one algorithm.
/// An empty network yields the all-zero no-winner curve.
fn trajectory(algo: &'static str, s: usize, checkpoints: &[u64], seed: u64) -> Vec<f64> {
    let g = mtm_graph::gen::line_of_stars(s, s);
    let n = g.node_count();
    if n == 0 {
        return vec![0.0; checkpoints.len()];
    }
    let delta = g.max_degree();
    let uids = UidPool::random(n, derive_seed(seed, 10));
    let engine_seed = derive_seed(seed, 11);
    let sched = ActivationSchedule::synchronized(n);
    let config = TagConfig::for_network(n, delta);

    // Sample each algorithm's curve on the shared checkpoint grid.
    macro_rules! sample {
        ($engine:expr, $winner:expr) => {{
            let mut e = $engine;
            let winner = $winner;
            let mut out = Vec::with_capacity(checkpoints.len());
            let mut at = 0u64;
            for &cp in checkpoints {
                e.run_rounds(cp - at);
                at = cp;
                out.push(agree_fraction(&e, winner));
            }
            out
        }};
    }

    match algo {
        "blind" => {
            let nodes = BlindGossip::spawn(&uids);
            sample!(
                Engine::new(
                    StaticTopology::new(g),
                    ModelParams::mobile(0),
                    sched,
                    nodes,
                    engine_seed
                ),
                uids.min_uid()
            )
        }
        "bitconv" => {
            let nodes = BitConvergence::spawn(&uids, config, derive_seed(seed, 12));
            let Some(winner) = winner_uid(nodes.iter().map(|p| p.active_pair())) else {
                return vec![0.0; checkpoints.len()];
            };
            sample!(
                Engine::new(
                    StaticTopology::new(g),
                    ModelParams::mobile(1),
                    sched,
                    nodes,
                    engine_seed
                ),
                winner
            )
        }
        "nonsync" => {
            let nodes = NonSyncBitConvergence::spawn(&uids, config, derive_seed(seed, 12));
            let Some(winner) = winner_uid(nodes.iter().map(|p| p.best_pair())) else {
                return vec![0.0; checkpoints.len()];
            };
            sample!(
                Engine::new(
                    StaticTopology::new(g),
                    ModelParams::mobile(config.nonsync_tag_bits()),
                    sched,
                    nodes,
                    engine_seed
                ),
                winner
            )
        }
        _ => unreachable!(),
    }
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (s, trials, grid_step, grid_points): (usize, usize, u64, usize) = match opts.scale {
        Scale::Quick => (4, opts.trials_or(3), 50, 12),
        Scale::Full => (10, opts.trials_or(10), 500, 24),
    };
    let checkpoints: Vec<u64> = (1..=grid_points as u64).map(|i| i * grid_step).collect();
    let mut table = Table::new(vec!["round", "blind b=0", "bitconv b=1", "nonsync b=loglog"]);
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for algo in ["blind", "bitconv", "nonsync"] {
        let cps = checkpoints.clone();
        let per_trial: Vec<Vec<f64>> =
            run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                trajectory(algo, s, &cps, seed)
            });
        // Average across trials per checkpoint.
        let mean: Vec<f64> = (0..checkpoints.len())
            .map(|i| per_trial.iter().map(|c| c[i]).sum::<f64>() / trials as f64)
            .collect();
        curves.push(mean);
    }
    for (i, &cp) in checkpoints.iter().enumerate() {
        table.push_row(vec![
            cp.to_string(),
            fmt_f64(curves[0][i]),
            fmt_f64(curves[1][i]),
            fmt_f64(curves[2][i]),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winner_uid_handles_empty_active_set() {
        assert_eq!(winner_uid(std::iter::empty()), None);
        let pairs = [IdPair { tag: 1, uid: 9 }, IdPair { tag: 0, uid: 7 }];
        // The (tag, uid) ordering wins, not the raw UID.
        assert_eq!(winner_uid(pairs.into_iter()), Some(7));
    }

    #[test]
    fn quick_run_curves_are_monotone_ish_and_bounded() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 12);
        // Fractions in [0, 1]; last checkpoint ≥ first (net progress).
        for col in 1..=3 {
            let first: f64 = t.rows()[0][col].parse().expect("fraction column is numeric");
            let last: f64 = t.rows()[11][col].parse().expect("fraction column is numeric");
            assert!((0.0..=1.0).contains(&first) && (0.0..=1.0).contains(&last));
            assert!(last >= first, "column {col} regressed: {first} -> {last}");
        }
    }
}
