//! **C3 — partition and heal: split brain on the dumbbell** (service mode
//! beyond the paper's one-shot elections).
//!
//! Scenario: two 8-regular expander halves joined by a single bridge edge
//! `(0, half)` — `gen::dumbbell_expander` — elect one leader, then node 0
//! (a bridge endpoint) crashes for a window `[ps, pe)`, cutting the
//! network in two. The half that lost sight of the leader watches its
//! heartbeats go stale, times out, and starts a new term: for the rest of
//! the window the network runs **two** leaders in **two** epochs — the
//! split-brain exposure a CAP-style service must surface, not hide. At
//! `pe` node 0 recovers, the bridge returns, and the higher epoch sweeps
//! the reunited network; within the new term the ordinary min-UID rule
//! reasserts the *global* minimum (every node implicitly competes when it
//! first hears of a term), so the old leader reclaims office in the new
//! epoch whenever it holds the global min.
//!
//! Note the asymmetry with C2: here the leader is never dead, merely
//! unreachable from one side — so the re-election is a *false positive*
//! the detector knowingly risks (module docs of `mtm_core::maintenance`),
//! priced at one extra term and a dual-leader window instead of unbounded
//! blocking.
//!
//! Expected shape: ≥ 1 re-election per trial once the window exceeds the
//! timeout; dual-leader exposure ≈ window − timeout − detection slack;
//! heal latency on the order of an election bottlenecked by the single
//! bridge edge; final leader = global min UID in every trial.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::UidPool;
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, ServiceConfig};
use mtm_graph::rng::derive_seed;
use mtm_graph::{gen, NodeId, ScheduledCrashes, StaticTopology};

use crate::churn::{frac_by, mean_by, service_engine};
use crate::harness::summarize;
use crate::opts::{ExpOpts, Scale};

/// Per-trial measurements for one partition-and-heal run.
struct Trial {
    /// Rounds from the heal until the reunited network agrees on one
    /// leader in the final epoch (`None` = not within the horizon).
    heal: Option<u64>,
    /// The reunited network ended agreed on the global minimum UID.
    global_min_leads: bool,
    /// Re-elections observed during the partition window.
    split_re_elections: u64,
    /// Dual-leader rounds during the partition window.
    split_dual_rounds: u64,
    /// Network-wide maximum epoch at the end of the run.
    final_epoch: u64,
}

fn trial(half: usize, ps: u64, pe: u64, timeout: u64, horizon: u64, seed: u64) -> Trial {
    let g = gen::dumbbell_expander(half, 8, derive_seed(seed, 0));
    let n_actual = g.node_count();
    let uids = UidPool::random(n_actual, derive_seed(seed, 10));
    // Downing node 0 removes the bridge endpoint: the halves separate.
    let bridge: NodeId = 0;
    let topo = ScheduledCrashes::new(StaticTopology::new(g), vec![(bridge, ps, pe)]);
    let mut e =
        service_engine(topo, ActivationSchedule::synchronized(n_actual), &uids, timeout, seed);
    // Phase 1: elect, rounds 1..ps. Phase 2: the partition window [ps, pe).
    // Phase 3: healed, rounds pe..horizon. Fresh counters per phase.
    let _ = e.run_service(&ServiceConfig::rounds(ps - 1));
    let split = e.run_service(&ServiceConfig::rounds(pe - ps));
    let healed = e.run_service(&ServiceConfig::rounds(horizon - (pe - 1)));
    let last = healed.epochs.last().expect("epoch history is never empty");
    Trial {
        heal: last.agreed_round.map(|r| r - (pe - 1)),
        global_min_leads: healed.final_leader == Some(uids.min_uid()),
        split_re_elections: split.service.re_elections,
        split_dual_rounds: split.service.dual_leader_rounds,
        final_epoch: healed.final_epoch,
    }
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (halves, ps, pe, timeout, horizon, trials): (&[usize], u64, u64, u64, u64, usize) =
        match opts.scale {
            Scale::Quick => (&[32], 60, 380, 256, 1000, opts.trials_or(2)),
            Scale::Full => (&[128, 512, 2048], 300, 1100, 512, 2200, opts.trials_or(8)),
        };
    let mut table = Table::new(vec![
        "n",
        "window",
        "timeout",
        "trials",
        "split re-elect",
        "split dual",
        "heal mean",
        "heal median",
        "final epoch",
        "global min leads",
        "unhealed",
    ]);
    for &half in halves {
        let results: Vec<Trial> = run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
            trial(half, ps, pe, timeout, horizon, seed)
        });
        let heals: Vec<Option<u64>> = results.iter().map(|t| t.heal).collect();
        let ts = summarize(&heals);
        table.push_row(vec![
            (2 * half).to_string(),
            (pe - ps).to_string(),
            timeout.to_string(),
            trials.to_string(),
            fmt_f64(mean_by(&results, |t| t.split_re_elections as f64)),
            fmt_f64(mean_by(&results, |t| t.split_dual_rounds as f64)),
            ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
            ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.median)),
            fmt_f64(mean_by(&results, |t| t.final_epoch as f64)),
            fmt_f64(frac_by(&results, |t| t.global_min_leads)),
            ts.timeouts.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 1);
        let row = &t.rows()[0];
        assert_eq!(row[10], "0", "every quick trial must re-agree after the heal: {row:?}");
        assert_eq!(row[9], fmt_f64(1.0), "global min must reclaim office: {row:?}");
        // A window of 320 rounds against a timeout of 256 must trigger the
        // cut-off side's detector.
        let re: f64 = row[4].parse().expect("numeric split re-elect column");
        assert!(re >= 1.0, "partition must cause a re-election: {row:?}");
        let dual: f64 = row[5].parse().expect("numeric split dual column");
        assert!(dual >= 1.0, "split brain must be visible as dual rounds: {row:?}");
    }
}
