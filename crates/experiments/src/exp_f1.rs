//! **F1 — §VI analysis optimality**: on the line-of-stars network (a line
//! of `√n` stars of `√n` points, smallest UID at the first star's center),
//! blind gossip needs `Ω(Δ²·√n) = Ω(Δ²/√α)` rounds.
//!
//! Sweep: star count `s` (so `n = s + s²`, `Δ ≈ s + 2`), measuring
//! stabilization rounds. The `Δ²·√n ≈ n^1.5` shape predicts a log–log slope
//! of ≈ 1.5 for rounds vs `n`; we report the fitted slope as the headline
//! number. A final row records the fit.

use mtm_analysis::fit::log_log_fit;
use mtm_analysis::table::{fmt_f64, Table};

use crate::harness::{blind_gossip_rounds, summarize, TopoSpec};
use crate::opts::{ExpOpts, Scale};

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (stars, trials, max_rounds): (&[usize], usize, u64) = match opts.scale {
        Scale::Quick => (&[3, 4, 6], opts.trials_or(3), 5_000_000),
        Scale::Full => (&[4, 6, 8, 11, 16, 22], opts.trials_or(10), 100_000_000),
    };
    let mut table =
        Table::new(vec!["stars", "n", "Δ", "trials", "mean", "median", "Δ²·√n", "mean/(Δ²√n)"]);
    let mut points = Vec::new();
    for &s in stars {
        let spec = TopoSpec::Static { family: mtm_graph::GraphFamily::LineOfStars, n: s + s * s };
        // Build directly so the spine/points split is exact.
        let g = mtm_graph::gen::line_of_stars(s, s);
        let n = g.node_count();
        let delta = g.max_degree();
        let results = blind_gossip_rounds(&spec, trials, opts.seed, opts.threads, max_rounds);
        let ts = summarize(&results);
        let lower_shape = (delta as f64).powi(2) * (n as f64).sqrt();
        if let Some(sum) = &ts.summary {
            points.push((n as f64, sum.mean));
            table.push_row(vec![
                s.to_string(),
                n.to_string(),
                delta.to_string(),
                trials.to_string(),
                fmt_f64(sum.mean),
                fmt_f64(sum.median),
                fmt_f64(lower_shape),
                fmt_f64(sum.mean / lower_shape),
            ]);
        } else {
            table.push_row(vec![
                s.to_string(),
                n.to_string(),
                delta.to_string(),
                trials.to_string(),
                "-".into(),
                "-".into(),
                fmt_f64(lower_shape),
                "-".into(),
            ]);
        }
    }
    if points.len() >= 2 {
        let fit = log_log_fit(&points);
        table.push_row(vec![
            "log-log fit".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("slope={}", fmt_f64(fit.slope)),
            format!("R²={}", fmt_f64(fit.r_squared)),
            "expect ≈1.5".into(),
            "-".into(),
        ]);
    }
    table
}

/// Fitted log–log slope of rounds vs n (used by integration tests to check
/// the super-linear growth the lower bound demands).
pub fn fitted_slope(opts: &ExpOpts) -> f64 {
    let (stars, trials, max_rounds): (&[usize], usize, u64) = match opts.scale {
        Scale::Quick => (&[3, 5, 8], opts.trials_or(3), 10_000_000),
        Scale::Full => (&[4, 8, 16], opts.trials_or(8), 100_000_000),
    };
    let mut points = Vec::new();
    for &s in stars {
        let spec = TopoSpec::Static { family: mtm_graph::GraphFamily::LineOfStars, n: s + s * s };
        let results = blind_gossip_rounds(&spec, trials, opts.seed, opts.threads, max_rounds);
        let ts = summarize(&results);
        if let Some(sum) = ts.summary {
            points.push(((s + s * s) as f64, sum.mean));
        }
    }
    log_log_fit(&points).slope
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        // 3 sizes + fit row.
        assert_eq!(t.len(), 4);
        let last = &t.rows()[3];
        assert!(last[4].starts_with("slope="));
    }
}
