//! **T4 — Theorem VIII.2**: the non-synchronized bit convergence algorithm
//! solves leader election within polylogarithmic factors of the
//! synchronized algorithm (`log³n` in the analysis), measured in rounds
//! *after the last activation*, at the cost of `b = log log n + O(1)` tag
//! bits.
//!
//! Sweep: random 8-regular expanders, three configurations per size —
//! synchronized bit convergence (the §VII baseline), non-synchronized with
//! synchronized starts (isolates the cost of random bit positions), and
//! non-synchronized with activations staggered over a window (the setting
//! the algorithm exists for). The reproduced claim: nonsync/sync slowdown
//! stays polylog-sized (we report it), and staggering does not break
//! convergence.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_graph::GraphFamily;

use crate::harness::{bit_convergence_rounds, nonsync_rounds, summarize, SchedSpec, TopoSpec};
use crate::opts::{ExpOpts, Scale};

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (sizes, trials, max_rounds): (&[usize], usize, u64) = match opts.scale {
        Scale::Quick => (&[16, 32], opts.trials_or(2), 50_000_000),
        Scale::Full => (&[32, 64, 128], opts.trials_or(8), 500_000_000),
    };
    let mut table = Table::new(vec![
        "n",
        "Δ",
        "sync bc (mean)",
        "nonsync sync-start (mean)",
        "nonsync staggered (mean)",
        "slowdown",
        "log₂³n",
    ]);
    for &n in sizes {
        let spec = TopoSpec::Static { family: GraphFamily::Expander8, n };
        let sample = spec.sample_graph(opts.seed);
        let n_actual = sample.node_count();
        let window = (4 * n_actual as u64).max(16);

        let sync =
            summarize(&bit_convergence_rounds(&spec, trials, opts.seed, opts.threads, max_rounds));
        let ns_sync = summarize(&nonsync_rounds(
            &spec,
            SchedSpec::Synchronized,
            trials,
            opts.seed ^ 1,
            opts.threads,
            max_rounds,
        ));
        let ns_stag = summarize(&nonsync_rounds(
            &spec,
            SchedSpec::Staggered { window },
            trials,
            opts.seed ^ 2,
            opts.threads,
            max_rounds,
        ));
        let log_n = (n_actual as f64).log2();
        let slowdown = match (&sync.summary, &ns_stag.summary) {
            (Some(s), Some(x)) => fmt_f64(x.mean / s.mean),
            _ => "-".into(),
        };
        table.push_row(vec![
            n_actual.to_string(),
            sample.max_degree().to_string(),
            sync.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
            ns_sync.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
            ns_stag.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
            slowdown,
            fmt_f64(log_n.powi(3)),
        ]);
    }
    table
}

/// `(sync mean, nonsync-staggered mean)` for one size (integration-test
/// hook).
pub fn sync_vs_nonsync(opts: &ExpOpts, n: usize) -> (f64, f64) {
    let trials = opts.trials_or(3);
    let spec = TopoSpec::Static { family: GraphFamily::Expander8, n };
    let sync =
        summarize(&bit_convergence_rounds(&spec, trials, opts.seed, opts.threads, 500_000_000));
    let ns = summarize(&nonsync_rounds(
        &spec,
        SchedSpec::Staggered { window: 4 * n as u64 },
        trials,
        opts.seed ^ 2,
        opts.threads,
        500_000_000,
    ));
    (
        sync.summary.expect("sync must stabilize").mean,
        ns.summary.expect("nonsync must stabilize").mean,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 1;
        let t = run(&opts);
        assert_eq!(t.len(), 2);
        for row in t.rows() {
            assert_ne!(row[2], "-", "sync timed out: {row:?}");
            assert_ne!(row[4], "-", "staggered nonsync timed out: {row:?}");
        }
    }
}
