//! **A3 — ablation: PUSH-PULL vs PUSH-only vs PULL-only** (`b = 0` rumor
//! spreading directions).
//!
//! Classical theory studies the two directions of PUSH-PULL separately;
//! in the mobile telephone model the single-accept constraint changes the
//! trade-offs (a popular node can absorb only one incoming proposal per
//! round, weakening PUSH toward hubs and PULL from hubs in different
//! ways). This ablation quantifies each direction's contribution on a
//! hub-free expander and the hub-heavy star.

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::{PullOnly, PushOnly, PushPull};
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, ModelParams};
use mtm_graph::rng::derive_seed;
use mtm_graph::{GraphFamily, StaticTopology};

use crate::harness::summarize;
use crate::opts::{ExpOpts, Scale};

fn run_strategy(
    family: GraphFamily,
    n: usize,
    strategy: &'static str,
    trials: usize,
    base_seed: u64,
    threads: usize,
    max_rounds: u64,
) -> Vec<Option<u64>> {
    run_trials(trials, base_seed, threads, move |_t, seed| {
        let g = family.build(n, derive_seed(seed, 0));
        let n_actual = g.node_count();
        let params = ModelParams::mobile(0);
        let sched = ActivationSchedule::synchronized(n_actual);
        let engine_seed = derive_seed(seed, 11);
        match strategy {
            "push-pull" => {
                let mut e = Engine::new(
                    StaticTopology::new(g),
                    params,
                    sched,
                    PushPull::spawn(n_actual, 1),
                    engine_seed,
                );
                e.run_to_full_information(max_rounds).stabilized_round
            }
            "push" => {
                let mut e = Engine::new(
                    StaticTopology::new(g),
                    params,
                    sched,
                    PushOnly::spawn(n_actual, 1),
                    engine_seed,
                );
                e.run_to_full_information(max_rounds).stabilized_round
            }
            "pull" => {
                let mut e = Engine::new(
                    StaticTopology::new(g),
                    params,
                    sched,
                    PullOnly::spawn(n_actual, 1),
                    engine_seed,
                );
                e.run_to_full_information(max_rounds).stabilized_round
            }
            _ => unreachable!(),
        }
    })
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (sizes, trials, max_rounds): (&[usize], usize, u64) = match opts.scale {
        Scale::Quick => (&[32], opts.trials_or(3), 5_000_000),
        Scale::Full => (&[128, 512], opts.trials_or(10), 100_000_000),
    };
    let mut table = Table::new(vec![
        "topology",
        "n",
        "push-pull (mean)",
        "push-only (mean)",
        "pull-only (mean)",
        "push/PP",
        "pull/PP",
    ]);
    for family in [GraphFamily::Expander8, GraphFamily::Star] {
        for &n in sizes {
            let pp = summarize(&run_strategy(
                family,
                n,
                "push-pull",
                trials,
                opts.seed,
                opts.threads,
                max_rounds,
            ));
            let push = summarize(&run_strategy(
                family,
                n,
                "push",
                trials,
                opts.seed ^ 1,
                opts.threads,
                max_rounds,
            ));
            let pull = summarize(&run_strategy(
                family,
                n,
                "pull",
                trials,
                opts.seed ^ 2,
                opts.threads,
                max_rounds,
            ));
            let cell = |x: &crate::harness::TrialSummary| {
                x.summary.as_ref().map_or("-".to_string(), |s| fmt_f64(s.mean))
            };
            let ratio = |a: &crate::harness::TrialSummary| match (&a.summary, &pp.summary) {
                (Some(x), Some(y)) => fmt_f64(x.mean / y.mean),
                _ => "-".to_string(),
            };
            table.push_row(vec![
                family.name().to_string(),
                n.to_string(),
                cell(&pp),
                cell(&push),
                cell(&pull),
                ratio(&push),
                ratio(&pull),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 2);
        for row in t.rows() {
            assert_ne!(row[2], "-", "push-pull timed out on {}", row[0]);
        }
    }
}
