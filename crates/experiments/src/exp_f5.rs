//! **F5 — Theorem V.2**: fix a bipartite cut with bipartitions `L`
//! (informed) and `R` (uninformed), `|R| ≥ |L| = m`, containing a matching
//! of size `m`, and run PPUSH for `r ≤ log Δ` rounds. With constant
//! probability at least `m/f(r)` nodes of `R` learn the rumor, where
//! `f(r) = Δ^(1/r)·c·r·log n`.
//!
//! Workload: random `d`-regular bipartite graphs built as the union of `d`
//! random perfect matchings (`Δ = d`, matching of size `m` guaranteed by
//! construction). For each `r ∈ {1..log Δ}` we report the mean and the 10th
//! percentile of newly informed nodes across trials against the `m/f(r)`
//! target with `c = 1` — the reproduced shape: more stable rounds, more of
//! the matching realized, with the guarantee scaling as `1/f(r)`.

use mtm_analysis::stats::Summary;
use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::Ppush;
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, ModelParams};
use mtm_graph::rng::derive_seed;
use mtm_graph::static_graph::GraphBuilder;
use mtm_graph::{Graph, StaticTopology};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::harness::f_of_r;
use crate::opts::{ExpOpts, Scale};

/// Random `d`-regular bipartite graph on `L = 0..m`, `R = m..2m`: the union
/// of `d` perfect matchings, realized as `d` distinct cyclic shifts of two
/// independent random permutations — matching `j` connects `π(i)` to
/// `σ((i + c_j) mod m)`. Distinct shifts make the matchings edge-disjoint
/// by construction (no rejection), each is a perfect matching, and the two
/// outer permutations randomize which cyclic structure any node sees.
pub fn regular_bipartite(m: usize, d: usize, seed: u64) -> Graph {
    assert!(d >= 1 && d <= m);
    // per-trial stream from the harness-derived seed. mtm-lint: allow(smallrng-outside-engine)
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut left_perm: Vec<u32> = (0..m as u32).collect();
    let mut right_perm: Vec<u32> = (0..m as u32).collect();
    left_perm.shuffle(&mut rng);
    right_perm.shuffle(&mut rng);
    let mut shifts: Vec<usize> = (0..m).collect();
    shifts.shuffle(&mut rng);
    shifts.truncate(d);
    let mut b = GraphBuilder::with_capacity(2 * m, m * d);
    for &c in &shifts {
        for i in 0..m {
            b.add_edge(left_perm[i], m as u32 + right_perm[(i + c) % m]);
        }
    }
    b.build()
}

/// One trial: newly informed nodes in `R` after `r` rounds of PPUSH.
fn ppush_trial(m: usize, d: usize, r: u64, seed: u64) -> u64 {
    let g = regular_bipartite(m, d, derive_seed(seed, 0));
    let n = g.node_count();
    let mut e = Engine::new(
        StaticTopology::new(g),
        ModelParams::mobile(1),
        ActivationSchedule::synchronized(n),
        Ppush::spawn(n, m), // nodes 0..m (all of L) start informed
        derive_seed(seed, 1),
    );
    e.run_rounds(r);
    (e.informed_count() - m) as u64
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (m, d, trials): (usize, usize, usize) = match opts.scale {
        Scale::Quick => (32, 8, opts.trials_or(10)),
        Scale::Full => (256, 16, opts.trials_or(50)),
    };
    let n = 2 * m;
    let log_delta = (d as f64).log2().ceil() as u64;
    let mut table = Table::new(vec![
        "m",
        "Δ",
        "r",
        "new informed (mean)",
        "p10",
        "m/f(r)",
        "mean/(m/f(r))",
        "guarantee met",
    ]);
    for r in 1..=log_delta {
        let results: Vec<u64> =
            run_trials(trials, opts.seed, opts.threads, move |_t, seed| ppush_trial(m, d, r, seed));
        let as_f: Vec<f64> = results.iter().map(|&x| x as f64).collect();
        let s = Summary::of(&as_f);
        let mut sorted = as_f.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("matching ratios are finite, never NaN"));
        let p10 = mtm_analysis::stats::percentile_sorted(&sorted, 0.10);
        let target = m as f64 / f_of_r(d, r, n);
        // "With constant probability at least m/f(r)": check the 10th
        // percentile clears the target.
        let met = p10 >= target;
        table.push_row(vec![
            m.to_string(),
            d.to_string(),
            r.to_string(),
            fmt_f64(s.mean),
            fmt_f64(p10),
            fmt_f64(target),
            fmt_f64(s.mean / target),
            if met { "yes".into() } else { "NO".to_string() },
        ]);
    }
    table
}

/// `(p10 informed, m/f(r) target)` per `r` (integration-test hook).
pub fn guarantee_margin(opts: &ExpOpts, m: usize, d: usize) -> Vec<(f64, f64)> {
    let trials = opts.trials_or(20);
    let n = 2 * m;
    let log_delta = (d as f64).log2().ceil() as u64;
    (1..=log_delta)
        .map(|r| {
            let results: Vec<u64> = run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                ppush_trial(m, d, r, seed)
            });
            let mut as_f: Vec<f64> = results.iter().map(|&x| x as f64).collect();
            as_f.sort_by(|a, b| a.partial_cmp(b).expect("matching ratios are finite, never NaN"));
            let p10 = mtm_analysis::stats::percentile_sorted(&as_f, 0.10);
            (p10, m as f64 / f_of_r(d, r, n))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_construction_is_regular_with_perfect_matching() {
        let g = regular_bipartite(16, 4, 3);
        assert_eq!(g.node_count(), 32);
        for u in 0..32u32 {
            assert_eq!(g.degree(u), 4, "node {u}");
        }
        // Perfect matching exists by construction; verify via Hopcroft-Karp.
        let in_s: Vec<bool> = (0..32).map(|u| u < 16).collect();
        assert_eq!(mtm_graph::matching::cut_matching(&g, &in_s), 16);
    }

    #[test]
    fn quick_run_meets_guarantee() {
        let mut opts = ExpOpts::quick();
        opts.trials = 10;
        let t = run(&opts);
        assert_eq!(t.len(), 3); // r ∈ {1, 2, 3} for Δ = 8
        for row in t.rows() {
            assert_eq!(row[7], "yes", "Theorem V.2 guarantee missed: {row:?}");
        }
    }
}
