//! **C2 — mass departure: the leader and its successors die at once**
//! (service mode beyond the paper's one-shot elections).
//!
//! Scenario: the network elects and stabilizes, then at `depart` the `k`
//! nodes holding the *smallest* UIDs all crash permanently — the adversarial
//! worst case for a min-UID protocol, since the leader **and** its first
//! `k−1` lines of succession vanish together (think: the organizing crew of
//! a flash mob walks out). Survivors keep gossiping heartbeats that no one
//! generates anymore; staleness accumulates; the detector fires; term
//! `epoch+1` starts and must converge on the `(k+1)`-th smallest UID.
//!
//! The departure fraction sweeps from a sliver to a quarter of the network.
//! Beyond ~25% on an 8-regular expander the survivor-induced subgraph
//! starts shedding isolated vertices (each survivor keeps a neighbor with
//! probability `1 − kill_frac⁸`), which would conflate detection latency
//! with structural disconnection — the sweep deliberately stops short.
//!
//! Expected shape: leaderless downtime ≈ `timeout` + a fresh-election time
//! (the heartbeat clocks were warm at the crash, so detection costs the
//! full threshold); recovery latency roughly flat in `k` (detection
//! dominates; the re-election only shrinks); exactly one extra term in
//! nearly every trial (concurrent detectors merge into the same epoch).

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::UidPool;
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, ServiceConfig};
use mtm_graph::rng::derive_seed;
use mtm_graph::{GraphFamily, NodeId, ScheduledCrashes, StaticTopology};

use crate::churn::{frac_by, mean_by, service_engine};
use crate::harness::summarize;
use crate::opts::{ExpOpts, Scale};

/// Per-trial measurements for one mass-departure run.
struct Trial {
    /// Rounds from the departure until the survivors agree on the expected
    /// successor in the final epoch (`None` = not within the horizon).
    recovery: Option<u64>,
    /// Survivors ended agreed on the `(k+1)`-th smallest UID.
    recovered: bool,
    leaderless_rounds: u64,
    dual_rounds: u64,
    re_elections: u64,
}

fn trial(n: usize, kill_frac: f64, depart: u64, timeout: u64, horizon: u64, seed: u64) -> Trial {
    let g = GraphFamily::Expander8.build(n, derive_seed(seed, 0));
    let n_actual = g.node_count();
    let uids = UidPool::random(n_actual, derive_seed(seed, 10));
    let kill = ((n_actual as f64 * kill_frac) as usize).clamp(1, n_actual - 1);
    // Node indices ordered by UID: the first `kill` depart, the next one is
    // the expected successor.
    let mut by_uid: Vec<usize> = (0..n_actual).collect();
    by_uid.sort_unstable_by_key(|&u| uids.uid(u));
    let outages: Vec<(NodeId, u64, u64)> =
        by_uid[..kill].iter().map(|&u| (u as NodeId, depart, u64::MAX)).collect();
    let successor = uids.uid(by_uid[kill]);
    let mut e = service_engine(
        ScheduledCrashes::new(StaticTopology::new(g), outages),
        ActivationSchedule::synchronized(n_actual),
        &uids,
        timeout,
        seed,
    );
    // Phase 1: elect and stabilize, rounds 1..depart. Phase 2 starts fresh
    // counters at the crash so leaderless/dual counts are post-departure.
    let _ = e.run_service(&ServiceConfig::rounds(depart - 1));
    let post = e.run_service(&ServiceConfig::rounds(horizon - (depart - 1)));
    let last = post.epochs.last().expect("epoch history is never empty");
    let recovered = post.final_leader == Some(successor);
    Trial {
        recovery: last
            .agreed_round
            .filter(|_| last.leader == Some(successor))
            .map(|r| r - (depart - 1)),
        recovered,
        leaderless_rounds: post.service.leaderless_rounds,
        dual_rounds: post.service.dual_leader_rounds,
        re_elections: post.service.re_elections,
    }
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (sizes, fracs, depart, timeout, horizon, trials): (&[usize], &[f64], u64, u64, u64, usize) =
        match opts.scale {
            Scale::Quick => (&[64], &[0.1], 60, 128, 600, opts.trials_or(2)),
            Scale::Full => (&[256, 1024], &[0.01, 0.1, 0.25], 200, 256, 1400, opts.trials_or(8)),
        };
    let mut table = Table::new(vec![
        "n",
        "killed",
        "depart@",
        "trials",
        "recovery mean",
        "recovery median",
        "leaderless",
        "dual rounds",
        "re-elect",
        "recovered",
        "unrecovered",
    ]);
    for &n in sizes {
        let n_actual = GraphFamily::Expander8.build(n, 0).node_count();
        for &frac in fracs {
            let results: Vec<Trial> =
                run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                    trial(n, frac, depart, timeout, horizon, seed)
                });
            let recoveries: Vec<Option<u64>> = results.iter().map(|t| t.recovery).collect();
            let ts = summarize(&recoveries);
            let kill = ((n_actual as f64 * frac) as usize).clamp(1, n_actual - 1);
            table.push_row(vec![
                n_actual.to_string(),
                kill.to_string(),
                depart.to_string(),
                trials.to_string(),
                ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
                ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.median)),
                fmt_f64(mean_by(&results, |t| t.leaderless_rounds as f64)),
                fmt_f64(mean_by(&results, |t| t.dual_rounds as f64)),
                fmt_f64(mean_by(&results, |t| t.re_elections as f64)),
                fmt_f64(frac_by(&results, |t| t.recovered)),
                ts.timeouts.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 1);
        let row = &t.rows()[0];
        assert_eq!(row[10], "0", "every quick trial must recover: {row:?}");
        assert_eq!(row[9], fmt_f64(1.0), "survivors must elect the successor: {row:?}");
        // Detection latency shows up as leaderless downtime: the survivors
        // must age from their warm heartbeat state to the timeout.
        let leaderless: f64 = row[6].parse().expect("numeric leaderless column");
        assert!(leaderless >= 20.0, "leaderless ≈ timeout expected: {row:?}");
    }
}
