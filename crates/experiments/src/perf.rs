//! Wall-clock and memory measurement helpers for throughput reporting.
//!
//! The simulation crates (`core`, `engine`, `apps`) are forbidden from
//! touching wall clocks by the determinism lint; measurement lives here, in
//! the experiment layer, where timing is the point (F9's scaling table and
//! the `mtm-bench` throughput harness both report wall seconds and peak
//! RSS per cell). None of this feeds back into simulation state.

use std::time::Instant;

/// A started wall-clock timer.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    // Wall-clock use is sanctioned in the experiment layer (measurement
    // only, never simulation input).
    #[allow(clippy::disallowed_methods)]
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). `None` off Linux or if the field is missing.
///
/// The value is a process-wide high-water mark: it is monotone over the
/// process lifetime, so per-cell readings in a multi-cell run report the
/// peak *up to and including* that cell.
pub fn peak_rss_bytes() -> Option<u64> {
    read_proc_status_kb("VmHWM:")
}

/// Current resident set size of this process in bytes (`VmRSS` from
/// `/proc/self/status`). Unlike [`peak_rss_bytes`] this is an instantaneous
/// reading: it falls when memory is freed, which is what makes per-cell
/// attribution possible (see [`RssSampler`]).
pub fn current_rss_bytes() -> Option<u64> {
    read_proc_status_kb("VmRSS:")
}

fn read_proc_status_kb(field: &str) -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix(field) {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = field;
        None
    }
}

/// Samples `VmRSS` on a background thread and reports the maximum seen
/// over a measured region — the honest per-cell memory number.
///
/// `VmHWM` (what [`peak_rss_bytes`] reads) is a process-*lifetime*
/// high-water mark: in a multi-cell run, every cell after the hungriest
/// one re-reports that earlier peak. Sampling `VmRSS` between `start` and
/// `stop` instead attributes memory to the cell that actually used it.
/// The thread only reads `/proc` and two atomics — it cannot touch
/// simulation state, so determinism is unaffected.
pub struct RssSampler {
    // measurement-only thread, no simulation state. mtm-lint: allow(parallelism-outside-engine)
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    // measurement-only accumulator. mtm-lint: allow(parallelism-outside-engine)
    peak: std::sync::Arc<std::sync::atomic::AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RssSampler {
    /// Start sampling at roughly `interval_ms` millisecond resolution. An
    /// immediate first sample is taken before returning, so even regions
    /// shorter than one interval get a reading.
    pub fn start(interval_ms: u64) -> RssSampler {
        use std::sync::atomic::Ordering;
        // measurement-only thread state. mtm-lint: allow(parallelism-outside-engine)
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        // measurement-only accumulator. mtm-lint: allow(parallelism-outside-engine)
        let peak = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        if let Some(rss) = current_rss_bytes() {
            peak.fetch_max(rss, Ordering::Relaxed);
        }
        let (stop2, peak2) = (stop.clone(), peak.clone());
        // measurement only, joined in stop(). mtm-lint: allow(parallelism-outside-engine)
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                if let Some(rss) = current_rss_bytes() {
                    peak2.fetch_max(rss, Ordering::Relaxed);
                }
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            }
        });
        RssSampler { stop, peak, handle: Some(handle) }
    }

    /// Stop sampling and return the peak `VmRSS` in bytes observed over the
    /// region (including one final sample). `None` when `/proc` sampling is
    /// unavailable (non-Linux).
    pub fn stop(mut self) -> Option<u64> {
        use std::sync::atomic::Ordering;
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        if let Some(rss) = current_rss_bytes() {
            self.peak.fetch_max(rss, Ordering::Relaxed);
        }
        let peak = self.peak.load(Ordering::Relaxed);
        (peak > 0).then_some(peak)
    }
}

impl Drop for RssSampler {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0 && b >= a);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(rss > 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_sampler_sees_a_transient_allocation() {
        let sampler = RssSampler::start(1);
        // Touch ~32 MB so VmRSS actually rises while the sampler runs.
        let block: Vec<u8> = (0..32 << 20).map(|i| (i % 251) as u8).collect();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let peak = sampler.stop().expect("VmRSS available on Linux");
        drop(block);
        let now = current_rss_bytes().expect("VmRSS available on Linux");
        assert!(peak > 0 && now > 0);
        // The sampled peak must be at least the block's size above zero —
        // i.e. it genuinely observed the allocation-era RSS.
        assert!(peak >= (32 << 20), "sampled peak {peak} missed the 32 MB block");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn current_rss_tracks_process_not_lifetime_peak() {
        let current = current_rss_bytes().expect("VmRSS available on Linux");
        let peak = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(current <= peak, "instantaneous RSS {current} above lifetime peak {peak}");
    }
}
