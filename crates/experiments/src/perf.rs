//! Wall-clock and memory measurement helpers for throughput reporting.
//!
//! The simulation crates (`core`, `engine`, `apps`) are forbidden from
//! touching wall clocks by the determinism lint; measurement lives here, in
//! the experiment layer, where timing is the point (F9's scaling table and
//! the `mtm-bench` throughput harness both report wall seconds and peak
//! RSS per cell). None of this feeds back into simulation state.

use std::time::Instant;

/// A started wall-clock timer.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    // Wall-clock use is sanctioned in the experiment layer (measurement
    // only, never simulation input).
    #[allow(clippy::disallowed_methods)]
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). `None` off Linux or if the field is missing.
///
/// The value is a process-wide high-water mark: it is monotone over the
/// process lifetime, so per-cell readings in a multi-cell run report the
/// peak *up to and including* that cell.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0 && b >= a);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(rss > 0);
    }
}
