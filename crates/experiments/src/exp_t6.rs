//! **T6 — tag length ablation (§IX)**: the paper's concluding discussion
//! highlights the jumps `b = 0 → 1` (large speedup) and
//! `b = 1 → log log n + O(1)` (asynchronous activations at a polylog cost).
//!
//! Sweep: one topology family (line-of-stars, where the `b = 0` penalty is
//! maximal), all three leader election algorithms on identical static
//! topologies with synchronized starts — isolating the tag budget as the
//! only variable. Columns report mean stabilization rounds per algorithm
//! and the pairwise ratios.

use mtm_analysis::table::{fmt_f64, Table};

use crate::harness::{
    bit_convergence_rounds, blind_gossip_rounds, nonsync_rounds, summarize, SchedSpec, TopoSpec,
};
use crate::opts::{ExpOpts, Scale};

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (stars, trials, max_rounds): (&[usize], usize, u64) = match opts.scale {
        Scale::Quick => (&[3, 4], opts.trials_or(2), 50_000_000),
        Scale::Full => (&[4, 6, 8, 11], opts.trials_or(8), 500_000_000),
    };
    let mut table = Table::new(vec![
        "n",
        "Δ",
        "b=0 blind (mean)",
        "b=1 bitconv (mean)",
        "b=loglog nonsync (mean)",
        "blind/bitconv",
        "nonsync/bitconv",
    ]);
    for &s in stars {
        let n = s + s * s;
        let spec = TopoSpec::Static { family: mtm_graph::GraphFamily::LineOfStars, n };
        let g = mtm_graph::gen::line_of_stars(s, s);
        let blind =
            summarize(&blind_gossip_rounds(&spec, trials, opts.seed, opts.threads, max_rounds));
        let bc = summarize(&bit_convergence_rounds(
            &spec,
            trials,
            opts.seed ^ 1,
            opts.threads,
            max_rounds,
        ));
        let ns = summarize(&nonsync_rounds(
            &spec,
            SchedSpec::Synchronized,
            trials,
            opts.seed ^ 2,
            opts.threads,
            max_rounds,
        ));
        let cell = |x: &crate::harness::TrialSummary| {
            x.summary.as_ref().map_or("-".to_string(), |s| fmt_f64(s.mean))
        };
        let ratio = |a: &crate::harness::TrialSummary, b: &crate::harness::TrialSummary| match (
            &a.summary, &b.summary,
        ) {
            (Some(x), Some(y)) => fmt_f64(x.mean / y.mean),
            _ => "-".to_string(),
        };
        table.push_row(vec![
            g.node_count().to_string(),
            g.max_degree().to_string(),
            cell(&blind),
            cell(&bc),
            cell(&ns),
            ratio(&blind, &bc),
            ratio(&ns, &bc),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 1;
        let t = run(&opts);
        assert_eq!(t.len(), 2);
        assert_eq!(t.header().len(), 7);
    }
}
