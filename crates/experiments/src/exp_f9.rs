//! **F9 — hundred-million-node scaling**: blind gossip (`b = 0`) and
//! synchronized bit convergence (`b = 1`) on random 8-regular expanders
//! with `n` swept five orders of magnitude past T1/T3 (up to
//! `n = 2^27 = 134,217,728` for blind gossip).
//!
//! The paper's asymptotic claims (Thm VI.1's `Δ²log²n`, Thm VII.2's polylog
//! regime) are only weakly constrained by `n ≤ 2048`; this sweep extends
//! the log–log slope evidence to national-population scales. Cells past the
//! direct-CSR threshold build their expanders with the cycle-union
//! generator and run single-trial with the engine's sharded executor at
//! `--threads` workers (below it, trials fan out and the engine stays
//! sequential — same results either way, the executor is deterministic).
//! Each row also records engineering telemetry: wall-clock seconds,
//! aggregate node-rounds/sec, and the cell's peak RSS sampled over the run
//! (`VmRSS` max, honest per cell — not the process-lifetime `VmHWM`).
//! Round counts stay deterministic in (seed, config); the telemetry
//! columns are machine-dependent by nature.

use mtm_analysis::fit::log_log_fit;
use mtm_analysis::table::{fmt_f64, Table};
use mtm_graph::family::DIRECT_CSR_THRESHOLD;
use mtm_graph::GraphFamily;

use crate::harness::{
    bit_convergence_rounds_threaded, blind_gossip_rounds_threaded, summarize, TopoSpec,
};
use crate::opts::{ExpOpts, Scale};
use crate::perf::{RssSampler, Stopwatch};

/// One algorithm's size sweep: `(size, default trials)` pairs.
struct Sweep {
    algorithm: &'static str,
    cells: &'static [(usize, usize)],
}

const FULL_SWEEPS: [Sweep; 2] = [
    Sweep {
        algorithm: "blind-gossip",
        cells: &[
            (4096, 3),
            (16384, 3),
            (65536, 2),
            (262144, 1),
            (1_048_576, 1),
            (4_194_304, 1),
            (16_777_216, 1),
            (134_217_728, 1),
        ],
    },
    Sweep {
        algorithm: "bit-convergence",
        cells: &[(4096, 3), (16384, 3), (65536, 2), (262144, 1)],
    },
];

const QUICK_SWEEPS: [Sweep; 2] = [
    Sweep { algorithm: "blind-gossip", cells: &[(256, 2), (1024, 2)] },
    Sweep { algorithm: "bit-convergence", cells: &[(256, 2)] },
];

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (sweeps, max_rounds): (&[Sweep], u64) = match opts.scale {
        Scale::Quick => (&QUICK_SWEEPS, 500_000),
        Scale::Full => (&FULL_SWEEPS, 1_000_000),
    };
    let mut table = Table::new(vec![
        "algorithm",
        "n",
        "Δ",
        "trials",
        "mean",
        "median",
        "timeouts",
        "wall_s",
        "Mnode-rounds/s",
        "peak_rss_mb",
    ]);
    for sweep in sweeps {
        let mut points = Vec::new();
        for &(n, default_trials) in sweep.cells {
            let trials = opts.trials_or(default_trials);
            let spec = TopoSpec::Static { family: GraphFamily::Expander8, n };
            // Past the direct-CSR threshold a second instance would not fit
            // in memory alongside the running one: route `--threads` into
            // the engine's sharded executor instead of trial fan-out, and
            // take the cell's shape from the family's construction (the
            // cycle-union builder yields exactly n nodes, all of degree 8)
            // rather than rebuilding a sample graph.
            let giant = n > DIRECT_CSR_THRESHOLD;
            let (trial_threads, engine_threads) =
                if giant { (1, opts.threads) } else { (opts.threads, 1) };
            let sampler = RssSampler::start(50);
            let sw = Stopwatch::start();
            let results = match sweep.algorithm {
                "blind-gossip" => blind_gossip_rounds_threaded(
                    &spec,
                    trials,
                    opts.seed,
                    trial_threads,
                    engine_threads,
                    max_rounds,
                ),
                _ => bit_convergence_rounds_threaded(
                    &spec,
                    trials,
                    opts.seed,
                    trial_threads,
                    engine_threads,
                    max_rounds,
                ),
            };
            let wall = sw.elapsed_secs();
            let cell_rss = sampler.stop();
            let (n_actual, max_degree) = if giant {
                (n, 8)
            } else {
                let sample = spec.sample_graph(opts.seed);
                (sample.node_count(), sample.max_degree())
            };
            // Executed rounds per trial = stabilization round (the engine
            // stops there) or the full budget on timeout.
            let executed: u64 = results.iter().map(|r| r.unwrap_or(max_rounds)).sum();
            let node_rounds = executed as f64 * n_actual as f64;
            let ts = summarize(&results);
            if let Some(s) = &ts.summary {
                points.push((n_actual as f64, s.mean));
            }
            table.push_row(vec![
                sweep.algorithm.to_string(),
                n_actual.to_string(),
                max_degree.to_string(),
                trials.to_string(),
                ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
                ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.median)),
                ts.timeouts.to_string(),
                fmt_f64(wall),
                fmt_f64(node_rounds / wall / 1e6),
                cell_rss.map_or("-".into(), |b| fmt_f64(b as f64 / (1024.0 * 1024.0))),
            ]);
        }
        if points.len() >= 2 {
            let ll = log_log_fit(&points);
            table.push_row(vec![
                format!("{} fit", sweep.algorithm),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("slope={}", fmt_f64(ll.slope)),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "expect slope≪1".into(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 1;
        let t = run(&opts);
        // 2 blind-gossip cells + fit + 1 bit-convergence cell (no fit:
        // a single point has no slope).
        assert_eq!(t.len(), 4);
        assert_eq!(t.header().len(), 10);
    }

    #[test]
    fn full_sweeps_reach_2_to_the_27_nodes() {
        let max = FULL_SWEEPS
            .iter()
            .flat_map(|s| s.cells.iter())
            .map(|&(n, _)| n)
            .max()
            .expect("non-empty sweeps");
        assert_eq!(max, 134_217_728);
    }

    #[test]
    fn giant_cells_are_single_trial() {
        // Past the direct-CSR threshold the cell routes `--threads` into
        // the engine; trial fan-out would multiply peak memory.
        for sweep in &FULL_SWEEPS {
            for &(n, trials) in sweep.cells {
                if n > DIRECT_CSR_THRESHOLD {
                    assert_eq!(trials, 1, "giant cell n={n} must default to one trial");
                }
            }
        }
    }
}
