//! **A1 — ablation: ID-tag length multiplier `β`** (design choice in
//! §VII).
//!
//! Bit convergence draws `k = ⌈β·log₂ N⌉`-bit ID tags. The analysis wants
//! `β` large enough that all tags are unique w.h.p. (birthday bound:
//! collision probability ≈ n²/2^(k+1)); larger `β` costs more groups per
//! phase (phases are `k` groups long), so stabilization rounds grow
//! linearly in `β`. This ablation sweeps `β` and reports measured rounds,
//! the observed tag-collision rate, and timeouts — the trade-off the
//! default `β = 3` balances.
//!
//! **Finding** (reproduced by this experiment): undersized tags do not
//! merely slow the algorithm — they can *deadlock* it. If two nodes hold
//! ID pairs with the same globally-minimal tag but different UIDs, their
//! advertised bits are identical in every group, so PPUSH never connects
//! them and the UID tie-break never propagates: the network stabilizes to
//! two co-existing leaders and `leader` variables never agree. The paper's
//! `β·log N`-bit tags make this a negligible-probability event; the `β=1`
//! rows below show it happening. Each trial runs the engine's stuck-run
//! detector (window 4·phase_len), so a deadlock is *proven* in O(window)
//! rounds — the "deadlocks" column — instead of burning the whole
//! `max_rounds` budget and being indistinguishable from "slow".

use mtm_analysis::table::{fmt_f64, Table};
use mtm_core::{BitConvergence, TagConfig, UidPool};
use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, ModelParams, RunStatus};
use mtm_graph::rng::derive_seed;
use mtm_graph::{GraphFamily, StaticTopology};

use crate::harness::summarize;
use crate::opts::{ExpOpts, Scale};

/// One trial: `(stabilization rounds, had tag collision, deadlocked)`.
fn trial(n: usize, beta: f64, seed: u64, max_rounds: u64) -> (Option<u64>, bool, bool) {
    let g = GraphFamily::Expander8.build(n, derive_seed(seed, 0));
    let n_actual = g.node_count();
    let config = TagConfig::new(n_actual, beta, g.max_degree());
    let uids = UidPool::random(n_actual, derive_seed(seed, 10));
    let nodes = BitConvergence::spawn(&uids, config, derive_seed(seed, 12));
    let mut tags: Vec<u64> = nodes.iter().map(|p| p.active_pair().tag).collect();
    tags.sort_unstable();
    let collision = tags.windows(2).any(|w| w[0] == w[1]);
    let mut e = Engine::new(
        StaticTopology::new(g),
        ModelParams::mobile(1),
        ActivationSchedule::synchronized(n_actual),
        nodes,
        derive_seed(seed, 11),
    );
    // Durable state changes at most every phase: a few phases with zero
    // change on the static topology proves the two-leader deadlock.
    e.enable_stuck_detection(4 * config.phase_len().max(1));
    let out = e.run_to_stabilization(max_rounds);
    (out.stabilized_round, collision, matches!(out.status, RunStatus::Stuck(_)))
}

/// Run the experiment, returning the result table.
pub fn run(opts: &ExpOpts) -> Table {
    let (n, betas, trials, max_rounds): (usize, &[f64], usize, u64) = match opts.scale {
        Scale::Quick => (32, &[1.0, 3.0], opts.trials_or(3), 300_000),
        Scale::Full => (256, &[1.0, 2.0, 3.0, 4.0, 6.0], opts.trials_or(10), 5_000_000),
    };
    let mut table = Table::new(vec![
        "β",
        "k (tag bits)",
        "trials",
        "mean rounds",
        "median",
        "collision rate",
        "deadlocks",
        "timeouts",
    ]);
    for &beta in betas {
        let results: Vec<(Option<u64>, bool, bool)> =
            run_trials(trials, opts.seed, opts.threads, move |_t, seed| {
                trial(n, beta, seed, max_rounds)
            });
        let rounds: Vec<Option<u64>> = results.iter().map(|(r, _, _)| *r).collect();
        let collisions = results.iter().filter(|(_, c, _)| *c).count();
        let deadlocks = results.iter().filter(|(_, _, s)| *s).count();
        let ts = summarize(&rounds);
        let k = TagConfig::new(n, beta, 8).k;
        table.push_row(vec![
            fmt_f64(beta),
            k.to_string(),
            trials.to_string(),
            ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.mean)),
            ts.summary.as_ref().map_or("-".into(), |s| fmt_f64(s.median)),
            format!("{collisions}/{trials}"),
            deadlocks.to_string(),
            (ts.timeouts - deadlocks).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let mut opts = ExpOpts::quick();
        opts.trials = 2;
        let t = run(&opts);
        assert_eq!(t.len(), 2);
        // β = 3 gives unique tags at n = 32 with near-certainty and must
        // stabilize; β = 1 may deadlock (that is the finding).
        let beta3 = &t.rows()[1];
        assert_eq!(beta3[6], "0", "β = 3 should not deadlock: {beta3:?}");
        assert_eq!(beta3[7], "0", "β = 3 should not time out: {beta3:?}");
    }
}
