//! Experiment harness: one module per reproduced claim.
//!
//! The paper is a theory paper — its "tables and figures" are theorems. Each
//! module here regenerates the empirical counterpart of one claim (see
//! DESIGN.md §3 for the full index):
//!
//! | id | claim | module |
//! |----|-------|--------|
//! | T1 | Thm VI.1 — blind gossip `O((1/α)Δ²log²n)` | [`exp_t1`] |
//! | F1 | §VI — `Ω(Δ²/√α)` on the line of stars | [`exp_f1`] |
//! | T2 | Cor VI.6 — PUSH-PULL `O((1/α)Δ²log²n)`, b=0 | [`exp_t2`] |
//! | F2 | Thm VII.2 — `τ` sweep, gap vs blind gossip | [`exp_f2`] |
//! | T3 | Thm VII.2 — polylog rounds for `τ ≥ log Δ`, `α = O(1)` | [`exp_t3`] |
//! | F3 | §VI vs §VII — `b = 0` vs `b = 1` separation | [`exp_f3`] |
//! | T4 | Thm VIII.2 — non-synchronized within polylog of synchronized | [`exp_t4`] |
//! | F4 | §VIII — self-stabilization on component joins | [`exp_f4`] |
//! | T5 | Lemma V.1 — `γ ≥ α/4` | [`exp_t5`] |
//! | F5 | Thm V.2 — PPUSH matching approximation `m/f(r)` | [`exp_f5`] |
//! | T6 | §IX — tag length ablation `b ∈ {0, 1, log log n}` | [`exp_t6`] |
//! | F6 | related work — mobile vs classical model gap | [`exp_f6`] |
//! | F7 | convergence trajectories per algorithm | [`exp_f7`] |
//! | F8 | fault injection — crash churn × message loss | [`exp_f8`] |
//! | F9 | scaling — slopes at 10⁵–10⁶ nodes on expanders | [`exp_f9`] |
//! | C1 | service mode — flash-crowd join | [`exp_c1`] |
//! | C2 | service mode — mass departure of the leader + successors | [`exp_c2`] |
//! | C3 | service mode — partition and heal (split brain) | [`exp_c3`] |
//! | C4 | service mode — rolling churn at 10⁶ nodes | [`exp_c4`] |
//! | AS1 | async election — event backend vs lockstep bound | [`exp_as1`] |
//! | AS2 | async PUSH-PULL — event backend vs lockstep bound | [`exp_as2`] |
//!
//! Every experiment is a pure function of [`opts::ExpOpts`] (trials, seed,
//! scale), prints an aligned table, and can emit CSV for EXPERIMENTS.md.

pub mod churn;
pub mod digest;
pub mod harness;
pub mod manifest;
pub mod opts;
pub mod perf;
pub mod registry;

pub mod exp_a1;
pub mod exp_a2;
pub mod exp_a3;
pub mod exp_as1;
pub mod exp_as2;
pub mod exp_c1;
pub mod exp_c2;
pub mod exp_c3;
pub mod exp_c4;
pub mod exp_f1;
pub mod exp_f2;
pub mod exp_f3;
pub mod exp_f4;
pub mod exp_f5;
pub mod exp_f6;
pub mod exp_f7;
pub mod exp_f8;
pub mod exp_f9;
pub mod exp_t1;
pub mod exp_t2;
pub mod exp_t3;
pub mod exp_t4;
pub mod exp_t5;
pub mod exp_t6;
pub mod exp_v1;

pub use harness::{SchedSpec, TopoSpec};
pub use opts::ExpOpts;

/// Run one experiment by id (resolved through [`registry::REGISTRY`]).
pub fn run_by_id(id: &str, opts: &ExpOpts) -> Option<mtm_analysis::table::Table> {
    registry::find(id).map(|e| (e.run)(opts))
}

/// Experiment ids in presentation order (paper claims T*/F*, ablations A*,
/// service-mode churn scenarios C*).
/// Kept in lockstep with [`registry::REGISTRY`] by its unit tests.
pub const ALL_IDS: [&str; 25] = [
    "t1", "f1", "t2", "f2", "t3", "f3", "t4", "f4", "t5", "f5", "t6", "f6", "f7", "f8", "f9", "a1",
    "a2", "a3", "c1", "c2", "c3", "c4", "v1", "as1", "as2",
];
