//! Property tests for the statistics and fitting utilities.

use mtm_analysis::compare::{bootstrap_mean_ci, mann_whitney_u, Histogram};
use mtm_analysis::fit::{linear_fit, log_log_fit};
use mtm_analysis::stats::{geometric_mean, percentile_sorted, Summary};
use mtm_analysis::table::Table;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn summary_order_invariants(samples in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::of(&samples);
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.count, samples.len());
    }

    #[test]
    fn summary_invariant_under_permutation(
        mut samples in proptest::collection::vec(-1e3f64..1e3, 2..50)
    ) {
        let a = Summary::of(&samples);
        samples.reverse();
        let b = Summary::of(&samples);
        prop_assert!((a.mean - b.mean).abs() < 1e-9);
        prop_assert_eq!(a.median, b.median);
        prop_assert_eq!(a.min, b.min);
        prop_assert_eq!(a.max, b.max);
    }

    #[test]
    fn summary_shift_equivariance(
        samples in proptest::collection::vec(-1e3f64..1e3, 2..40),
        shift in -100f64..100.0,
    ) {
        let a = Summary::of(&samples);
        let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        let b = Summary::of(&shifted);
        prop_assert!((b.mean - a.mean - shift).abs() < 1e-6);
        prop_assert!((b.std_dev - a.std_dev).abs() < 1e-6, "spread must be shift-invariant");
    }

    #[test]
    fn percentile_monotone_in_q(samples in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let p = percentile_sorted(&sorted, i as f64 / 10.0);
            prop_assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn geometric_le_arithmetic(samples in proptest::collection::vec(0.001f64..1e4, 1..40)) {
        let g = geometric_mean(&samples);
        let a = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!(g <= a * (1.0 + 1e-9), "AM-GM violated: {} > {}", g, a);
    }

    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -100f64..100.0,
        intercept in -100f64..100.0,
        xs in proptest::collection::hash_set(-1000i32..1000, 2..30),
    ) {
        let pts: Vec<(f64, f64)> = xs
            .into_iter()
            .map(|x| (x as f64, slope * x as f64 + intercept))
            .collect();
        let f = linear_fit(&pts);
        prop_assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((f.intercept - intercept).abs() < 1e-4 * (1.0 + intercept.abs()));
        prop_assert!(f.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn log_log_fit_recovers_power_laws(
        exponent in -3f64..3.0,
        scale in 0.1f64..100.0,
    ) {
        let pts: Vec<(f64, f64)> = (2..40)
            .map(|i| (i as f64, scale * (i as f64).powf(exponent)))
            .collect();
        let f = log_log_fit(&pts);
        prop_assert!((f.slope - exponent).abs() < 1e-6);
    }

    #[test]
    fn histogram_conserves_count(
        samples in proptest::collection::vec(-1e4f64..1e4, 1..200),
        buckets in 1usize..32,
    ) {
        let h = Histogram::of(&samples, buckets);
        prop_assert_eq!(h.total(), samples.len());
        prop_assert_eq!(h.counts.len(), buckets);
    }

    #[test]
    fn bootstrap_ci_brackets_sample_mean(
        samples in proptest::collection::vec(-100f64..100.0, 5..60),
        seed in any::<u64>(),
    ) {
        let (lo, hi) = bootstrap_mean_ci(&samples, 200, 0.05, seed);
        prop_assert!(lo <= hi);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // The sample mean is the center of the bootstrap distribution and
        // must lie within (or extremely near) the 95% interval.
        let slack = (hi - lo).max(1e-9);
        prop_assert!(mean >= lo - slack && mean <= hi + slack);
    }

    #[test]
    fn mann_whitney_p_in_range(
        a in proptest::collection::vec(-100f64..100.0, 2..40),
        b in proptest::collection::vec(-100f64..100.0, 2..40),
    ) {
        let (u, p) = mann_whitney_u(&a, &b);
        prop_assert!(u >= 0.0);
        prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
        // Symmetry: swapping the samples gives the same two-sided p.
        let (_, p2) = mann_whitney_u(&b, &a);
        prop_assert!((p - p2).abs() < 1e-9);
    }

    #[test]
    fn table_csv_has_consistent_columns(
        rows in proptest::collection::vec(
            (any::<i64>(), ".{0,12}"),
            0..20
        ),
    ) {
        let mut t = Table::new(vec!["num", "text"]);
        for (n, s) in &rows {
            t.push_row(vec![n.to_string(), s.clone()]);
        }
        let csv = t.to_csv();
        prop_assert_eq!(csv.lines().count(), rows.len() + 1);
        let rendered = t.render();
        prop_assert_eq!(rendered.lines().count(), rows.len() + 2);
    }
}
