//! Property tests for the statistics and fitting utilities.
//!
//! Cases are generated deterministically by `mtm-testkit` (the offline
//! replacement for proptest).

use mtm_analysis::compare::{bootstrap_mean_ci, mann_whitney_u, Histogram};
use mtm_analysis::fit::{linear_fit, log_log_fit};
use mtm_analysis::stats::{geometric_mean, percentile_sorted, Summary};
use mtm_analysis::table::Table;
use mtm_testkit::{ascii_string, run_cases, vec_f64, Rng};

#[test]
fn summary_order_invariants() {
    run_cases(0xA701, 128, |_case, rng| {
        let samples = vec_f64(rng, (1, 100), -1e6, 1e6);
        let s = Summary::of(&samples);
        assert!(s.min <= s.median + 1e-9);
        assert!(s.median <= s.p90 + 1e-9);
        assert!(s.p90 <= s.max + 1e-9);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(s.std_dev >= 0.0);
        assert_eq!(s.count, samples.len());
    });
}

#[test]
fn summary_invariant_under_permutation() {
    run_cases(0xA702, 128, |_case, rng| {
        let mut samples = vec_f64(rng, (2, 50), -1e3, 1e3);
        let a = Summary::of(&samples);
        samples.reverse();
        let b = Summary::of(&samples);
        assert!((a.mean - b.mean).abs() < 1e-9);
        assert_eq!(a.median, b.median);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
    });
}

#[test]
fn summary_shift_equivariance() {
    run_cases(0xA703, 128, |_case, rng| {
        let samples = vec_f64(rng, (2, 40), -1e3, 1e3);
        let shift = rng.gen_range(-100.0..100.0f64);
        let a = Summary::of(&samples);
        let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        let b = Summary::of(&shifted);
        assert!((b.mean - a.mean - shift).abs() < 1e-6);
        assert!((b.std_dev - a.std_dev).abs() < 1e-6, "spread must be shift-invariant");
    });
}

#[test]
fn percentile_monotone_in_q() {
    run_cases(0xA704, 128, |_case, rng| {
        let mut sorted = vec_f64(rng, (1, 50), -1e3, 1e3);
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in generated samples"));
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let p = percentile_sorted(&sorted, i as f64 / 10.0);
            assert!(p >= last);
            last = p;
        }
    });
}

#[test]
fn geometric_le_arithmetic() {
    run_cases(0xA705, 128, |_case, rng| {
        let samples = vec_f64(rng, (1, 40), 0.001, 1e4);
        let g = geometric_mean(&samples);
        let a = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(g <= a * (1.0 + 1e-9), "AM-GM violated: {g} > {a}");
    });
}

#[test]
fn linear_fit_recovers_exact_lines() {
    run_cases(0xA706, 128, |_case, rng| {
        let slope = rng.gen_range(-100.0..100.0f64);
        let intercept = rng.gen_range(-100.0..100.0f64);
        let mut xs: Vec<i32> =
            (0..rng.gen_range(2..30usize)).map(|_| rng.gen_range(-1000..1000)).collect();
        xs.sort_unstable();
        xs.dedup();
        if xs.len() < 2 {
            return;
        }
        let pts: Vec<(f64, f64)> =
            xs.into_iter().map(|x| (x as f64, slope * x as f64 + intercept)).collect();
        let f = linear_fit(&pts);
        assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        assert!((f.intercept - intercept).abs() < 1e-4 * (1.0 + intercept.abs()));
        assert!(f.r_squared > 1.0 - 1e-9);
    });
}

#[test]
fn log_log_fit_recovers_power_laws() {
    run_cases(0xA707, 128, |_case, rng| {
        let exponent = rng.gen_range(-3.0..3.0f64);
        let scale = rng.gen_range(0.1..100.0f64);
        let pts: Vec<(f64, f64)> =
            (2..40).map(|i| (i as f64, scale * (i as f64).powf(exponent))).collect();
        let f = log_log_fit(&pts);
        assert!((f.slope - exponent).abs() < 1e-6);
    });
}

#[test]
fn histogram_conserves_count() {
    run_cases(0xA708, 128, |_case, rng| {
        let samples = vec_f64(rng, (1, 200), -1e4, 1e4);
        let buckets = rng.gen_range(1..32usize);
        let h = Histogram::of(&samples, buckets);
        assert_eq!(h.total(), samples.len());
        assert_eq!(h.counts.len(), buckets);
    });
}

#[test]
fn bootstrap_ci_brackets_sample_mean() {
    run_cases(0xA709, 64, |_case, rng| {
        let samples = vec_f64(rng, (5, 60), -100.0, 100.0);
        let (lo, hi) = bootstrap_mean_ci(&samples, 200, 0.05, rng.gen());
        assert!(lo <= hi);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // The sample mean is the center of the bootstrap distribution and
        // must lie within (or extremely near) the 95% interval.
        let slack = (hi - lo).max(1e-9);
        assert!(mean >= lo - slack && mean <= hi + slack);
    });
}

#[test]
fn mann_whitney_p_in_range() {
    run_cases(0xA70A, 128, |_case, rng| {
        let a = vec_f64(rng, (2, 40), -100.0, 100.0);
        let b = vec_f64(rng, (2, 40), -100.0, 100.0);
        let (u, p) = mann_whitney_u(&a, &b);
        assert!(u >= 0.0);
        assert!((0.0..=1.0).contains(&p), "p = {p}");
        // Symmetry: swapping the samples gives the same two-sided p.
        let (_, p2) = mann_whitney_u(&b, &a);
        assert!((p - p2).abs() < 1e-9);
    });
}

#[test]
fn table_csv_has_consistent_columns() {
    run_cases(0xA70B, 128, |_case, rng| {
        let rows: Vec<(i64, String)> = (0..rng.gen_range(0..20usize))
            .map(|_| (rng.gen::<i64>(), ascii_string(rng, 12)))
            .collect();
        let mut t = Table::new(vec!["num", "text"]);
        for (n, s) in &rows {
            t.push_row(vec![n.to_string(), s.clone()]);
        }
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), rows.len() + 1);
        let rendered = t.render();
        assert_eq!(rendered.lines().count(), rows.len() + 2);
    });
}
