//! Minimal JSON value, parser, and renderer.
//!
//! The offline build has no serde, so JSON documents round-trip through
//! this hand-rolled module (same approach as `mtm-lint`'s report writer):
//! the bench harness's `BENCH_engine.json` and the results provenance
//! manifest `results/MANIFEST.json` both use it. Objects preserve
//! insertion order via a `Vec<(String, Value)>` — no hash maps, so
//! rendering is deterministic.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (None for other variants / missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable member lookup on an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Obj(members) => members.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a member on an object (panics on non-objects).
    pub fn set(&mut self, key: &str, value: Value) {
        let Value::Obj(members) = self else { panic!("set on non-object") };
        match members.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => members.push((key.to_string(), value)),
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members in insertion order (None for other variants).
    pub fn members(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Render as pretty-printed JSON (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => {
                assert!(x.is_finite(), "cannot render non-finite number");
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    // {:?} is Rust's shortest round-trippable f64 repr.
                    let _ = write!(out, "{x:?}");
                }
            }
            Value::Str(s) => render_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry a byte offset and message.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice is valid utf-8");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("non-empty rest");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Obj(vec![
            ("schema".to_string(), Value::Str("v1".to_string())),
            (
                "series".to_string(),
                Value::Obj(vec![(
                    "before".to_string(),
                    Value::Arr(vec![Value::Obj(vec![
                        ("bench".to_string(), Value::Str("a/b-c".to_string())),
                        ("nodes".to_string(), Value::Num(1024.0)),
                        ("ns".to_string(), Value::Num(9.537)),
                        ("ok".to_string(), Value::Bool(true)),
                        ("none".to_string(), Value::Null),
                    ])]),
                )]),
            ),
        ]);
        let text = v.render();
        let back = parse(&text).expect("parse rendered output");
        assert_eq!(back, v);
    }

    #[test]
    fn parses_numbers_and_escapes() {
        let v =
            parse(r#"{"a": -1.5e3, "b": "x\n\"y\"", "c": [1, 2], "d": []}"#).expect("valid doc");
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(-1500.0));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x\n\"y\""));
        assert_eq!(v.get("c").and_then(Value::as_arr).map(<[Value]>::len), Some(2));
        assert_eq!(v.get("d").and_then(Value::as_arr).map(<[Value]>::len), Some(0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(1_048_576.0).render(), "1048576\n");
        assert_eq!(Value::Num(9.5).render(), "9.5\n");
    }

    #[test]
    fn set_replaces_and_appends() {
        let mut v = Value::Obj(vec![]);
        v.set("x", Value::Num(1.0));
        v.set("x", Value::Num(2.0));
        v.set("y", Value::Num(3.0));
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.members().map(<[(String, Value)]>::len), Some(2));
    }
}
