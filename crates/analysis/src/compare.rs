//! Distribution comparison utilities: histograms, bootstrap confidence
//! intervals, and a Mann–Whitney U test. Used by experiments that claim
//! one algorithm *reliably* beats another (not just on the mean of a few
//! trials).

/// An equal-width histogram over a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Left edge of the first bucket.
    pub min: f64,
    /// Width of each bucket.
    pub width: f64,
    /// Counts per bucket.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Build a histogram with `buckets` equal-width buckets spanning the
    /// sample range. Panics on an empty sample or zero buckets; a constant
    /// sample produces one full bucket.
    pub fn of(samples: &[f64], buckets: usize) -> Histogram {
        assert!(!samples.is_empty(), "cannot histogram an empty sample");
        assert!(buckets > 0, "need at least one bucket");
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(f64::MIN_POSITIVE);
        let width = span / buckets as f64;
        let mut counts = vec![0usize; buckets];
        for &x in samples {
            let idx = (((x - min) / width) as usize).min(buckets - 1);
            counts[idx] += 1;
        }
        Histogram { min, width, counts }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Index of the fullest bucket.
    pub fn mode_bucket(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("a histogram always has at least one bucket")
    }

    /// Render as a compact ASCII sparkline-style bar chart.
    pub fn render(&self, bar_width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = self.min + self.width * i as f64;
            let hi = lo + self.width;
            let bar = "#".repeat(c * bar_width / max);
            out.push_str(&format!("[{lo:>10.1}, {hi:>10.1})  {c:>6}  {bar}\n"));
        }
        out
    }
}

/// Percentile bootstrap confidence interval for the mean: resample the
/// sample with replacement `resamples` times and take the (α/2, 1-α/2)
/// quantiles of the resampled means. Deterministic for a fixed seed.
pub fn bootstrap_mean_ci(samples: &[f64], resamples: usize, alpha: f64, seed: u64) -> (f64, f64) {
    assert!(!samples.is_empty());
    assert!(resamples >= 10);
    assert!(alpha > 0.0 && alpha < 1.0);
    use rand::Rng;
    let mut rng = crate::splitmix_rng(seed);
    let n = samples.len();
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let sum: f64 = (0..n).map(|_| samples[rng.gen_range(0..n)]).sum();
            sum / n as f64
        })
        .collect();
    means.sort_by(f64::total_cmp);
    let lo_idx = ((alpha / 2.0) * resamples as f64) as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * resamples as f64) as usize).min(resamples - 1);
    (means[lo_idx], means[hi_idx])
}

/// Two-sided Mann–Whitney U test (normal approximation with tie
/// correction): returns `(U, approximate p-value)` for the hypothesis that
/// `a` and `b` come from the same distribution. Suitable for the sample
/// sizes experiments use (≥ 8 per side recommended).
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> (f64, f64) {
    assert!(!a.is_empty() && !b.is_empty());
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    // Rank the pooled sample, averaging ranks for ties.
    let mut pooled: Vec<(f64, usize)> =
        a.iter().map(|&x| (x, 0usize)).chain(b.iter().map(|&x| (x, 1usize))).collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));
    let total = pooled.len();
    let mut ranks = vec![0.0f64; total];
    let mut tie_term = 0.0f64;
    let mut i = 0;
    while i < total {
        let mut j = i;
        while j + 1 < total && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for slot in ranks.iter_mut().take(j + 1).skip(i) {
            *slot = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let r1: f64 =
        pooled.iter().zip(&ranks).filter(|((_, side), _)| *side == 0).map(|(_, &r)| r).sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let u = u1.min(n1 * n2 - u1);
    // Normal approximation with tie-corrected variance.
    let mean_u = n1 * n2 / 2.0;
    let n = n1 + n2;
    let var_u = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if var_u <= 0.0 {
        return (u, 1.0); // all values identical
    }
    let z = (u - mean_u + 0.5) / var_u.sqrt(); // continuity correction
    let p = 2.0 * normal_cdf(z);
    (u, p.min(1.0))
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ≈ 1.5e-7 — ample for significance screening).
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic() {
        let h = Histogram::of(&[0.0, 1.0, 2.0, 3.0, 4.0, 4.0], 5);
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts.len(), 5);
        assert_eq!(h.counts[4], 2, "both 4.0s land in the last bucket");
        assert_eq!(h.mode_bucket(), 4);
    }

    #[test]
    fn histogram_constant_sample() {
        let h = Histogram::of(&[7.0; 10], 4);
        assert_eq!(h.total(), 10);
        assert_eq!(h.counts[0], 10);
    }

    #[test]
    fn histogram_render_has_line_per_bucket() {
        let h = Histogram::of(&[1.0, 2.0, 3.0], 3);
        assert_eq!(h.render(10).lines().count(), 3);
    }

    #[test]
    fn bootstrap_ci_contains_mean_and_shrinks() {
        let tight: Vec<f64> = (0..200).map(|i| 10.0 + (i % 3) as f64).collect();
        let (lo, hi) = bootstrap_mean_ci(&tight, 500, 0.05, 1);
        let mean = tight.iter().sum::<f64>() / tight.len() as f64;
        assert!(lo <= mean && mean <= hi, "CI [{lo}, {hi}] misses mean {mean}");
        assert!(hi - lo < 0.5, "CI too wide for a tight sample: [{lo}, {hi}]");
    }

    #[test]
    fn bootstrap_deterministic() {
        let s = [1.0, 5.0, 9.0, 2.0, 8.0];
        assert_eq!(bootstrap_mean_ci(&s, 200, 0.1, 7), bootstrap_mean_ci(&s, 200, 0.1, 7));
    }

    #[test]
    fn mann_whitney_detects_shift() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 + 50.0).collect();
        let (_, p) = mann_whitney_u(&a, &b);
        assert!(p < 0.001, "clear shift should be significant: p = {p}");
    }

    #[test]
    fn mann_whitney_accepts_same_distribution() {
        let a: Vec<f64> = (0..40).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| ((i + 3) % 10) as f64).collect();
        let (_, p) = mann_whitney_u(&a, &b);
        assert!(p > 0.2, "identical distributions should not be significant: p = {p}");
    }

    #[test]
    fn mann_whitney_all_ties() {
        let (_, p) = mann_whitney_u(&[3.0; 10], &[3.0; 10]);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(6.0) > 0.999);
    }
}
