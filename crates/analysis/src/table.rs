//! Aligned-text and CSV table rendering for experiment output.
//!
//! Experiments print the same rows the paper's claims describe; these
//! helpers keep that output consistent across the harness binaries, the
//! CLI, and EXPERIMENTS.md regeneration.

/// A simple column-oriented table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row; must match the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as an aligned monospace table (the harness' stdout format).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", cell, w = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with sensible precision for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["n", "rounds"]);
        t.push_row(vec!["8", "120"]);
        t.push_row(vec!["1024", "9"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("rounds"));
        assert!(lines[2].ends_with("120"));
        // Each data line has the same width as the header line.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1"]);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new(vec!["name", "value"]);
        t.push_row(vec!["plain", "1"]);
        t.push_row(vec!["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"with\"\"quote\"");
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.42), "42.4");
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(0.00042), "4.20e-4");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.push_row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
