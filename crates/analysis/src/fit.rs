//! Least-squares fits used to check the *shape* of measured growth curves
//! against the paper's asymptotic claims.
//!
//! The standard instrument is the log–log slope: if
//! `rounds(n) ≈ c · n^k · polylog(n)`, then a least-squares line through
//! `(ln n, ln rounds)` has slope ≈ `k` (slightly above, due to the polylog
//! term). Experiments assert measured slopes fall in generous bands around
//! each theorem's exponent.

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 for a perfect fit; 0 when the
    /// fit explains nothing; can be negative for terrible fits).
    pub r_squared: f64,
}

/// Ordinary least squares on `(x, y)` pairs. Panics with fewer than 2
/// points or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need ≥ 2 points to fit a line");
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    assert!(sxx > 0.0, "x values are all identical");
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_res: f64 = points.iter().map(|p| (p.1 - (slope * p.0 + intercept)).powi(2)).sum();
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    LinearFit { slope, intercept, r_squared }
}

/// Fit `y ≈ c·x^k` by regressing `ln y` on `ln x`; returns the fit in log
/// space (slope = exponent `k`). All coordinates must be positive.
pub fn log_log_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(
        points.iter().all(|p| p.0 > 0.0 && p.1 > 0.0),
        "log–log fit needs positive coordinates"
    );
    let logged: Vec<(f64, f64)> = points.iter().map(|p| (p.0.ln(), p.1.ln())).collect();
    linear_fit(&logged)
}

/// Fit `y ≈ c·(ln x)^k` by regressing `ln y` on `ln ln x`: the instrument
/// for "is this polylogarithmic?" claims. Requires `x > e` so `ln ln x` is
/// defined and positive.
pub fn log_polylog_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(
        points.iter().all(|p| p.0 > std::f64::consts::E && p.1 > 0.0),
        "polylog fit needs x > e and positive y"
    );
    let logged: Vec<(f64, f64)> = points.iter().map(|p| (p.0.ln().ln(), p.1.ln())).collect();
    linear_fit(&logged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let f = linear_fit(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_reasonable() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 3.0 * x + 1.0 + noise)
            })
            .collect();
        let f = linear_fit(&pts);
        assert!((f.slope - 3.0).abs() < 0.01, "slope {}", f.slope);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn log_log_recovers_exponent() {
        // y = 5 x^2
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 5.0 * (i as f64).powi(2))).collect();
        let f = log_log_fit(&pts);
        assert!((f.slope - 2.0).abs() < 1e-9, "slope {}", f.slope);
        assert!((f.intercept - 5.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn log_log_polylog_contamination_small() {
        // y = x^2 · ln(x): slope should land slightly above 2.
        let pts: Vec<(f64, f64)> =
            (8..64).map(|i| (i as f64, (i as f64).powi(2) * (i as f64).ln())).collect();
        let f = log_log_fit(&pts);
        assert!(f.slope > 2.0 && f.slope < 2.6, "slope {}", f.slope);
    }

    #[test]
    fn polylog_fit_recovers_power() {
        // y = (ln x)^3
        let pts: Vec<(f64, f64)> = (4..40)
            .map(|i| {
                let x = (i as f64).exp2(); // large x
                (x, x.ln().powi(3))
            })
            .collect();
        let f = log_polylog_fit(&pts);
        assert!((f.slope - 3.0).abs() < 1e-6, "slope {}", f.slope);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_log_rejects_nonpositive() {
        log_log_fit(&[(0.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        linear_fit(&[(1.0, 1.0), (1.0, 2.0)]);
    }
}
