//! Statistics, curve fitting and table rendering for experiments.
//!
//! * [`stats`] — sample summaries (mean/median/percentiles/CI).
//! * [`fit`] — least-squares fits in linear, log-log, and log-polylog
//!   space, the instruments for checking asymptotic *shapes*.
//! * [`compare`] — histograms, bootstrap confidence intervals, and the
//!   Mann-Whitney U test for "A reliably beats B" claims.
//! * [`table`] — aligned-text and CSV table rendering.
//! * [`json`] — minimal JSON value, parser, and renderer (the offline
//!   build has no serde; shared by the bench harness and the results
//!   provenance manifest).

pub mod compare;
pub mod fit;
pub mod json;
pub mod stats;
pub mod table;

/// A small deterministic RNG for resampling utilities.
pub(crate) fn splitmix_rng(seed: u64) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    // bootstrap-resampling stream from an explicit seed. mtm-lint: allow(smallrng-outside-engine)
    rand::rngs::SmallRng::seed_from_u64(seed)
}
