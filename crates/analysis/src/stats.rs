//! Summary statistics over trial samples.

/// Summary of a sample of trial measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (average of middle two for even counts).
    pub median: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Panics on an empty slice.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count < 2 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median,
            p90: percentile_sorted(&sorted, 0.90),
            max: sorted[count - 1],
        }
    }

    /// Summarize integer samples (convenience for round counts).
    pub fn of_u64(samples: &[u64]) -> Summary {
        let as_f: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&as_f)
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice, `q ∈ [0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Geometric mean of strictly positive samples.
pub fn geometric_mean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty());
    assert!(samples.iter().all(|&x| x > 0.0), "geometric mean needs positive samples");
    let log_sum: f64 = samples.iter().map(|x| x.ln()).sum();
    (log_sum / samples.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_even_median() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_unsorted_input() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0];
        assert_eq!(percentile_sorted(&sorted, 0.90), 90.0);
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 100.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 50.0);
    }

    #[test]
    fn of_u64_converts() {
        let s = Summary::of_u64(&[2, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_examples() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let narrow = Summary::of(&[3.0, 4.0, 5.0].repeat(100));
        let wide = Summary::of(&[3.0, 4.0, 5.0]);
        assert!(narrow.ci95_half_width() < wide.ci95_half_width());
    }
}
