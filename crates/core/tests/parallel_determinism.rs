//! Same-seed determinism of the sharded executor through the real protocol
//! stacks: a full election and a full service run must be identical at any
//! thread count (the executor's thread count is a pure throughput knob —
//! see the engine-semantics contract in `mtm_engine::engine`).

use mtm_core::{BlindGossip, MaintainedGossip, MaintenanceConfig, UidPool};
use mtm_engine::{ActivationSchedule, Engine, ModelParams, ServiceConfig, ServiceOutcome};
use mtm_graph::rng::derive_seed;
use mtm_graph::{gen, StaticTopology};

const SEED: u64 = 0x0DE7_EB21;

fn election_engine(seed: u64) -> Engine<BlindGossip, StaticTopology> {
    let n = 600;
    let graph = gen::random_regular(n, 8, derive_seed(seed, 0));
    let uids = UidPool::random(n, derive_seed(seed, 10));
    let nodes = BlindGossip::spawn(&uids);
    Engine::new(
        StaticTopology::new(graph),
        ModelParams::mobile(0),
        ActivationSchedule::staggered_uniform(n, 40, derive_seed(seed, 7)),
        nodes,
        derive_seed(seed, 11),
    )
}

fn service_outcome(seed: u64, threads: usize) -> ServiceOutcome {
    let n = 256;
    let graph = gen::random_regular(n, 8, derive_seed(seed, 0));
    let uids = UidPool::random(n, derive_seed(seed, 10));
    let nodes = MaintainedGossip::spawn(&uids, MaintenanceConfig::new(64));
    let mut e = Engine::new(
        StaticTopology::new(graph),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        nodes,
        derive_seed(seed, 11),
    );
    e.set_threads(threads);
    e.set_proposal_loss(0.1);
    e.run_service(&ServiceConfig::rounds(500).with_wedge_window(128))
}

/// A full staggered-activation election (with loss) reaches the same winner
/// in the same round with identical metrics at every thread count.
#[test]
fn election_is_thread_count_invariant() {
    let mut reference = election_engine(SEED);
    reference.set_proposal_loss(0.2);
    let want = reference.run_to_stabilization(100_000);
    assert!(want.winner.is_some(), "reference election failed to stabilize");
    for threads in [2usize, 4, 8] {
        let mut e = election_engine(SEED);
        e.set_threads(threads);
        e.set_proposal_loss(0.2);
        let got = e.run_to_stabilization(100_000);
        assert_eq!(got, want, "{threads}-thread election diverged");
    }
}

/// A full `run_service` execution — epochs, agreement rounds, service and
/// engine metrics — is identical at threads = 4 and threads = 1.
#[test]
fn run_service_is_deterministic_at_four_threads() {
    let want = service_outcome(SEED, 1);
    let got = service_outcome(SEED, 4);
    assert_eq!(got, want, "4-thread service run diverged from sequential");
    // And re-running at the same thread count replays exactly.
    assert_eq!(service_outcome(SEED, 4), got, "same-seed service replay diverged");
}
