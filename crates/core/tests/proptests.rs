//! Property tests for protocol-level invariants.

use mtm_core::config::{ceil_log2, TagConfig};
use mtm_core::{BitConvergence, IdPair, NonSyncBitConvergence, UidPool};
use mtm_engine::{Protocol, Tag};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn id_pair_ordering_is_total_and_lexicographic(
        a_tag in any::<u64>(), a_uid in any::<u64>(),
        b_tag in any::<u64>(), b_uid in any::<u64>(),
    ) {
        let a = IdPair { tag: a_tag, uid: a_uid };
        let b = IdPair { tag: b_tag, uid: b_uid };
        // Lexicographic law.
        if a_tag != b_tag {
            prop_assert_eq!(a < b, a_tag < b_tag);
        } else {
            prop_assert_eq!(a < b, a_uid < b_uid);
        }
        // min is commutative and idempotent.
        prop_assert_eq!(a.min(b), b.min(a));
        prop_assert_eq!(a.min(a), a);
    }

    #[test]
    fn tag_bit_reconstructs_tag(tag in 0u64..(1 << 16), k in 16u32..20) {
        let p = IdPair { tag, uid: 0 };
        let mut rebuilt = 0u64;
        for i in 0..k {
            rebuilt = (rebuilt << 1) | p.tag_bit(i, k) as u64;
        }
        prop_assert_eq!(rebuilt, tag, "MSB-first bits must reconstruct the tag");
    }

    #[test]
    fn ceil_log2_is_inverse_of_pow2(x in 1usize..100_000) {
        let k = ceil_log2(x);
        prop_assert!(1usize << k >= x);
        if k > 0 {
            prop_assert!(1usize << (k - 1) < x);
        }
    }

    #[test]
    fn tag_config_round_partition_is_consistent(
        k in 1u32..40,
        group_len in 2u64..20,
        round in 1u64..10_000,
    ) {
        let c = TagConfig { k, group_len };
        let group = c.group_of_round(round);
        prop_assert!(group < k, "group index out of range");
        // Phase starts are also group starts.
        if c.is_phase_start(round) {
            prop_assert!(c.is_group_start(round));
            prop_assert_eq!(c.group_of_round(round), 0);
        }
        // Within a group the index is constant.
        if !c.is_group_start(round + 1) {
            prop_assert_eq!(c.group_of_round(round + 1), group);
        }
    }

    #[test]
    fn uid_pool_always_distinct(n in 1usize..200, seed in any::<u64>()) {
        let pool = UidPool::random(n, seed);
        let mut v = pool.as_slice().to_vec();
        v.sort_unstable();
        v.dedup();
        prop_assert_eq!(v.len(), n);
        prop_assert_eq!(pool.uid(pool.min_uid_node()), pool.min_uid());
    }

    #[test]
    fn bit_convergence_advertises_bits_of_active_tag(
        tag in 0u64..(1 << 12),
        seed in any::<u64>(),
    ) {
        let config = TagConfig { k: 12, group_len: 3 };
        let mut node = BitConvergence::new(1, tag, config);
        let mut rng = mtm_graph::rng::stream_rng(seed, 0);
        // Over one full phase, the advertised bit sequence must spell the
        // tag MSB-first, each bit repeated group_len times.
        let mut bits = Vec::new();
        for r in 1..=config.phase_len() {
            let t = node.advertise(r, &mut rng);
            prop_assert!(t == Tag(0) || t == Tag(1));
            bits.push(t.0 as u64);
        }
        for (i, chunk) in bits.chunks(config.group_len as usize).enumerate() {
            let expect = (tag >> (config.k - 1 - i as u32)) & 1;
            prop_assert!(chunk.iter().all(|&b| b == expect),
                "group {} advertised {:?}, tag bit is {}", i, chunk, expect);
        }
    }

    #[test]
    fn nonsync_tag_always_fits_budget(
        tag in 0u64..(1 << 10),
        seed in any::<u64>(),
        rounds in 1u64..100,
    ) {
        let config = TagConfig { k: 10, group_len: 4 };
        let b = config.nonsync_tag_bits();
        let mut node = NonSyncBitConvergence::new(1, tag, config);
        let mut rng = mtm_graph::rng::stream_rng(seed, 1);
        for r in 1..=rounds {
            let t = node.advertise(r, &mut rng);
            prop_assert!(t.fits(b), "tag {:?} exceeds b = {}", t, b);
            let (pos, bit) = NonSyncBitConvergence::decode(t);
            prop_assert!(pos < config.k);
            prop_assert!(bit <= 1);
        }
    }

    #[test]
    fn pending_pair_is_min_of_received(
        tags in proptest::collection::vec(0u64..(1 << 10), 1..20),
        seed in any::<u64>(),
    ) {
        let config = TagConfig { k: 10, group_len: 2 };
        let mut node = BitConvergence::new(999, (1 << 10) - 1, config);
        let mut rng = mtm_graph::rng::stream_rng(seed, 2);
        let mut expect = node.pending_pair();
        for (i, &t) in tags.iter().enumerate() {
            let pair = IdPair { tag: t, uid: i as u64 };
            node.on_connect(&pair, &mut rng);
            expect = expect.min(pair);
        }
        prop_assert_eq!(node.pending_pair(), expect);
    }
}
