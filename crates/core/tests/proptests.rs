//! Property tests for protocol-level invariants.
//!
//! Cases are generated deterministically by `mtm-testkit` (the offline
//! replacement for proptest).

use mtm_core::config::{ceil_log2, TagConfig};
use mtm_core::{BitConvergence, IdPair, NonSyncBitConvergence, UidPool};
use mtm_engine::{Protocol, Tag};
use mtm_testkit::{run_cases, Rng};

#[test]
fn id_pair_ordering_is_total_and_lexicographic() {
    run_cases(0xC701, 128, |_case, rng| {
        let a = IdPair { tag: rng.gen(), uid: rng.gen() };
        let b = IdPair { tag: rng.gen(), uid: rng.gen() };
        // Lexicographic law.
        if a.tag != b.tag {
            assert_eq!(a < b, a.tag < b.tag);
        } else {
            assert_eq!(a < b, a.uid < b.uid);
        }
        // min is commutative and idempotent.
        assert_eq!(a.min(b), b.min(a));
        assert_eq!(a.min(a), a);
    });
}

#[test]
fn tag_bit_reconstructs_tag() {
    run_cases(0xC702, 128, |_case, rng| {
        let tag = rng.gen_range(0..1u64 << 16);
        let k = rng.gen_range(16..20u32);
        let p = IdPair { tag, uid: 0 };
        let mut rebuilt = 0u64;
        for i in 0..k {
            rebuilt = (rebuilt << 1) | p.tag_bit(i, k) as u64;
        }
        assert_eq!(rebuilt, tag, "MSB-first bits must reconstruct the tag");
    });
}

#[test]
fn ceil_log2_is_inverse_of_pow2() {
    run_cases(0xC703, 128, |_case, rng| {
        let x = rng.gen_range(1..100_000usize);
        let k = ceil_log2(x);
        assert!(1usize << k >= x);
        if k > 0 {
            assert!(1usize << (k - 1) < x);
        }
    });
}

#[test]
fn tag_config_round_partition_is_consistent() {
    run_cases(0xC704, 128, |_case, rng| {
        let c = TagConfig { k: rng.gen_range(1..40u32), group_len: rng.gen_range(2..20u64) };
        let round = rng.gen_range(1..10_000u64);
        let group = c.group_of_round(round);
        assert!(group < c.k, "group index out of range");
        // Phase starts are also group starts.
        if c.is_phase_start(round) {
            assert!(c.is_group_start(round));
            assert_eq!(c.group_of_round(round), 0);
        }
        // Within a group the index is constant.
        if !c.is_group_start(round + 1) {
            assert_eq!(c.group_of_round(round + 1), group);
        }
    });
}

#[test]
fn uid_pool_always_distinct() {
    run_cases(0xC705, 64, |_case, rng| {
        let n = rng.gen_range(1..200usize);
        let pool = UidPool::random(n, rng.gen());
        let mut v = pool.as_slice().to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), n);
        assert_eq!(pool.uid(pool.min_uid_node()), pool.min_uid());
    });
}

#[test]
fn bit_convergence_advertises_bits_of_active_tag() {
    run_cases(0xC706, 64, |_case, rng| {
        let tag = rng.gen_range(0..1u64 << 12);
        let config = TagConfig { k: 12, group_len: 3 };
        let mut node = BitConvergence::new(1, tag, config);
        let mut stream = mtm_graph::rng::stream_rng(rng.gen(), 0);
        // Over one full phase, the advertised bit sequence must spell the
        // tag MSB-first, each bit repeated group_len times.
        let mut bits = Vec::new();
        for r in 1..=config.phase_len() {
            let t = node.advertise(r, &mut stream);
            assert!(t == Tag(0) || t == Tag(1));
            bits.push(t.0 as u64);
        }
        for (i, chunk) in bits.chunks(config.group_len as usize).enumerate() {
            let expect = (tag >> (config.k - 1 - i as u32)) & 1;
            assert!(
                chunk.iter().all(|&b| b == expect),
                "group {i} advertised {chunk:?}, tag bit is {expect}"
            );
        }
    });
}

#[test]
fn nonsync_tag_always_fits_budget() {
    run_cases(0xC707, 64, |_case, rng| {
        let tag = rng.gen_range(0..1u64 << 10);
        let rounds = rng.gen_range(1..100u64);
        let config = TagConfig { k: 10, group_len: 4 };
        let b = config.nonsync_tag_bits();
        let mut node = NonSyncBitConvergence::new(1, tag, config);
        let mut stream = mtm_graph::rng::stream_rng(rng.gen(), 1);
        for r in 1..=rounds {
            let t = node.advertise(r, &mut stream);
            assert!(t.fits(b), "tag {t:?} exceeds b = {b}");
            let (pos, bit) = NonSyncBitConvergence::decode(t);
            assert!(pos < config.k);
            assert!(bit <= 1);
        }
    });
}

#[test]
fn pending_pair_is_min_of_received() {
    run_cases(0xC708, 64, |_case, rng| {
        let tags: Vec<u64> =
            (0..rng.gen_range(1..20usize)).map(|_| rng.gen_range(0..1u64 << 10)).collect();
        let config = TagConfig { k: 10, group_len: 2 };
        let mut node = BitConvergence::new(999, (1 << 10) - 1, config);
        let mut stream = mtm_graph::rng::stream_rng(rng.gen(), 2);
        let mut expect = node.pending_pair();
        for (i, &t) in tags.iter().enumerate() {
            let pair = IdPair { tag: t, uid: i as u64 };
            node.on_connect(&pair, &mut stream);
            expect = expect.min(pair);
        }
        assert_eq!(node.pending_pair(), expect);
    });
}
