//! Leadership maintenance: epoch-numbered terms, heartbeats, failure
//! detection, re-election — blind gossip promoted from a one-shot election
//! into a long-running service.
//!
//! The paper elects once and stops; a smartphone swarm needs the leader
//! *kept*. [`MaintainedGossip`] layers three mechanisms over the §VI blind
//! gossip skeleton (same `b = 0` advertising, same coin-flip send/receive,
//! same `O(1)`-UID payloads), following the shape of CloudP2P's modified
//! bully election (heartbeats + staleness detection + term bump):
//!
//! 1. **Epoch-numbered terms.** Every node carries `(epoch, cand, age)`:
//!    the leadership term it participates in, the smallest UID it has seen
//!    *within* that term (its leader candidate — `leader()` reports this),
//!    and the staleness of its freshest evidence that `cand` is alive. A
//!    higher epoch always supersedes a lower one; within an epoch the
//!    ordinary min-UID rule applies. Both rules are monotone, so the
//!    network converges inside every term it settles on.
//! 2. **Heartbeats.** A node whose `cand` is itself is a *claimant* and is
//!    its own liveness evidence: it pins `age = 0` every round. Everyone
//!    else's `age` grows by one per connected round, and every connection
//!    merges ages (`min`) for equal candidates — so `age` at a node is
//!    exactly the gossip delay of the freshest heartbeat that has reached
//!    it. No extra messages exist: heartbeats ride the same connections
//!    the election uses, inside the model's payload budget (1 UID + 128
//!    extra bits ≤ the 256-bit cap).
//! 3. **Failure detection and re-election.** When `age` reaches the
//!    configured `timeout`, the node declares its leader dead and starts
//!    term `epoch + 1` with itself as initial candidate. Concurrent
//!    detectors merge (same new epoch, min UID wins); a false positive
//!    (slow heartbeat, live leader) costs one extra term — the deposed
//!    leader simply joins the new epoch like everyone else.
//!
//! **Isolation disarms the detector but never falsifies the evidence.**
//! A node with no visible neighbors (crashed radio, or cut off by churn)
//! learns nothing from the network, so letting it call elections would
//! make every long crash manufacture a runaway epoch: a node down for
//! `10·timeout` rounds would return carrying `epoch + 10` and depose a
//! perfectly healthy leader (the classic bully/Raft rejoin disruption).
//! The protection is purely *local*: an isolated node may not fire its
//! detector, and after rejoining it holds fire for a grace period of one
//! full `timeout` of connected rounds — long enough for the network to
//! deliver fresh evidence if the leader is alive. Crucially, the *gossiped*
//! `age` keeps ticking through isolation (saturating at `timeout`): a
//! rejoiner advertises its evidence as exactly as stale as it is. An
//! earlier design instead reset `age` on rejoin, which poisoned the
//! network — the min-merge spread each rejoiner's fake-fresh heartbeat,
//! and under any background churn the global staleness clock never reached
//! the threshold, so a genuinely dead leader was never detected.
//!
//! **Choosing `timeout`.** The detector trades false-positive re-elections
//! against leaderless downtime: `timeout` must exceed the steady-state
//! heartbeat gossip delay to the farthest node (same order as the §VI
//! rumor spread time, `O((1/α)·Δ²·log²n)` worst case) or live leaders get
//! deposed in a churn loop, while every extra round of margin is an extra
//! round of undetected-death downtime after a real crash. Service-mode
//! wedge windows should exceed `timeout` — a frozen `(epoch, cand)` state
//! only proves a dead end once every pending detector would have fired.
//!
//! Everything is a pure function of `(seed, config)`: the only coin flips
//! are the engine-supplied per-node streams, in the same draw pattern as
//! [`BlindGossip`](crate::BlindGossip).

use mtm_engine::{Action, EpochView, LeaderView, PayloadCost, Protocol, Scan, Tag};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::id::UidPool;

/// Tuning knobs for [`MaintainedGossip`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaintenanceConfig {
    /// Heartbeat-staleness threshold, in connected rounds: a node whose
    /// freshest evidence of its leader is `timeout` rounds old declares the
    /// leader dead and starts a new epoch.
    pub timeout: u64,
}

impl MaintenanceConfig {
    /// A detector with the given staleness threshold (≥ 2: a threshold of
    /// 1 would depose a leader on every single missed heartbeat).
    pub fn new(timeout: u64) -> MaintenanceConfig {
        assert!(timeout >= 2, "timeout must be ≥ 2 rounds, got {timeout}");
        MaintenanceConfig { timeout }
    }
}

/// Connection payload: the sender's full maintenance view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sender's leadership term.
    pub epoch: u64,
    /// Smallest UID the sender has seen within `epoch`.
    pub cand: u64,
    /// Staleness of the sender's freshest evidence that `cand` is alive.
    pub age: u64,
}

impl PayloadCost for Heartbeat {
    fn uid_count(&self) -> u32 {
        1 // cand
    }
    fn extra_bits(&self) -> u32 {
        128 // epoch + age
    }
}

/// Per-node state of the maintenance protocol. See the module docs.
#[derive(Clone, Debug)]
pub struct MaintainedGossip {
    uid: u64,
    epoch: u64,
    /// Smallest UID seen within `epoch`; invariant `cand ≤ uid` (a node
    /// entering any epoch competes with its own UID first).
    cand: u64,
    /// Rounds since the freshest heartbeat evidence for `cand`, ticking
    /// every round (isolated or not) and saturated at `timeout`. This is
    /// the gossiped value: it must stay honest or min-merging spreads
    /// fake-fresh evidence (see the module docs).
    age: u64,
    timeout: u64,
    /// Connected rounds the detector must still hold fire after isolation
    /// (rejoin grace); an isolated round re-arms it to `timeout`.
    grace: u64,
    /// Scratch: did this round's scan show any neighbor? (Set in `act`,
    /// consumed in `end_round`; not part of the durable state.)
    saw_neighbors: bool,
}

impl MaintainedGossip {
    /// A node with the given UID, starting in epoch 0 as its own candidate.
    pub fn new(uid: u64, cfg: MaintenanceConfig) -> MaintainedGossip {
        MaintainedGossip {
            uid,
            epoch: 0,
            cand: uid,
            age: 0,
            timeout: cfg.timeout,
            grace: 0,
            saw_neighbors: false,
        }
    }

    /// One node per UID in the pool (the standard trial setup).
    pub fn spawn(uids: &UidPool, cfg: MaintenanceConfig) -> Vec<MaintainedGossip> {
        uids.as_slice().iter().map(|&u| MaintainedGossip::new(u, cfg)).collect()
    }

    /// Staleness of this node's current leader evidence.
    pub fn age(&self) -> u64 {
        self.age
    }

    /// True iff this node currently believes it is the leader.
    pub fn claims_leadership(&self) -> bool {
        self.cand == self.uid
    }

    /// Merge a peer view into this node's state: higher epoch supersedes,
    /// min UID wins within an epoch, equal candidates keep the freshest
    /// evidence.
    fn merge(&mut self, peer: &Heartbeat) {
        if peer.epoch > self.epoch {
            self.epoch = peer.epoch;
            // Every node is implicitly a candidate in a term it has not
            // participated in yet, preserving min-UID semantics.
            if self.uid <= peer.cand {
                self.cand = self.uid;
                self.age = 0;
            } else {
                self.cand = peer.cand;
                self.age = peer.age;
            }
        } else if peer.epoch == self.epoch {
            match peer.cand.cmp(&self.cand) {
                std::cmp::Ordering::Less => {
                    self.cand = peer.cand;
                    self.age = peer.age;
                }
                std::cmp::Ordering::Equal => self.age = self.age.min(peer.age),
                std::cmp::Ordering::Greater => {}
            }
        }
    }
}

impl Protocol for MaintainedGossip {
    type Payload = Heartbeat;

    fn advertise(&mut self, _local_round: u64, _rng: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        self.saw_neighbors = !scan.is_empty();
        // Blind-gossip skeleton: fair coin to send or receive; a node with
        // no visible neighbors can only listen.
        if scan.is_empty() || !rng.gen_bool(0.5) {
            return Action::Listen;
        }
        let i = rng.gen_range(0..scan.len());
        Action::Propose(scan.neighbors[i])
    }

    fn payload(&self) -> Heartbeat {
        Heartbeat { epoch: self.epoch, cand: self.cand, age: self.age }
    }

    fn on_connect(&mut self, peer: &Heartbeat, _rng: &mut SmallRng) {
        self.merge(peer);
    }

    fn end_round(&mut self, _local_round: u64, _rng: &mut SmallRng) {
        if self.cand == self.uid {
            // A claimant is its own liveness evidence — this is the
            // heartbeat generation step.
            self.age = 0;
            self.grace = 0;
            return;
        }
        // The gossiped evidence ages honestly whether or not we were
        // connected; only the *detector* is gated below.
        self.age = (self.age + 1).min(self.timeout);
        if !self.saw_neighbors {
            // Isolated: we cannot distinguish a dead leader from our own
            // dead radio, so re-arm the rejoin grace instead of firing.
            self.grace = self.timeout;
        } else if self.grace > 0 {
            // Rejoin grace: give the network a full timeout of connected
            // rounds to deliver fresh evidence before we may call an
            // election on evidence that aged while we were gone.
            self.grace -= 1;
        } else if self.age >= self.timeout {
            // Failure detected: start the next term with ourselves as the
            // initial candidate.
            self.epoch += 1;
            self.cand = self.uid;
            self.age = 0;
        }
    }

    /// Durable state only: `(epoch, cand)`. `age` is deliberately excluded
    /// — it ticks every connected round, so including it would make any
    /// network look permanently busy and blind both the engine's stuck
    /// detector and service-mode wedge diagnosis. The price is that a
    /// frozen fingerprint only proves a fixed point over windows longer
    /// than `timeout` (a pending detector is a ticking state change);
    /// wedge windows must be sized accordingly.
    fn state_fingerprint(&self) -> Option<u64> {
        Some(mtm_engine::fingerprint::of_words(&[self.epoch, self.cand]))
    }

    fn supports_check(&self) -> bool {
        true
    }

    fn enumerate_actions(&self, scan: &Scan<'_>) -> Vec<Action> {
        let mut actions = Vec::with_capacity(scan.len() + 1);
        actions.push(Action::Listen);
        actions.extend(scan.neighbors.iter().map(|&v| Action::Propose(v)));
        actions
    }

    fn apply_action(&mut self, scan: &Scan<'_>, _action: Action) {
        // Mirror `act`'s side effect: latch visibility for `end_round`'s
        // isolation gate.
        self.saw_neighbors = !scan.is_empty();
    }

    fn state_words(&self, out: &mut Vec<u64>) {
        // The exact-state key needs the full detector state: `age` and
        // `grace` are durable counters (deliberately excluded from the
        // fingerprint) that determine when the detector may fire.
        // `saw_neighbors` is per-round scratch rewritten by every act.
        out.extend_from_slice(&[self.epoch, self.cand, self.age, self.grace]);
    }
}

impl LeaderView for MaintainedGossip {
    fn leader(&self) -> u64 {
        self.cand
    }
    fn uid(&self) -> u64 {
        self.uid
    }
}

impl EpochView for MaintainedGossip {
    fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::service::ServiceConfig;
    use mtm_engine::{ActivationSchedule, Engine, ModelParams};
    use mtm_graph::{gen, NodeId, ScheduledCrashes, StaticTopology};

    fn cfg(timeout: u64) -> MaintenanceConfig {
        MaintenanceConfig::new(timeout)
    }

    fn rng() -> SmallRng {
        mtm_graph::rng::stream_rng(0, 0)
    }

    /// Run `end_round` as a connected (non-isolated) round.
    fn tick_connected(node: &mut MaintainedGossip) {
        node.saw_neighbors = true;
        node.end_round(1, &mut rng());
    }

    #[test]
    fn higher_epoch_supersedes_lower() {
        let mut node = MaintainedGossip::new(5, cfg(10));
        node.merge(&Heartbeat { epoch: 3, cand: 40, age: 2 });
        // Epoch 3 is new to us and our UID beats the peer's candidate.
        assert_eq!((node.epoch, node.cand, node.age), (3, 5, 0));
        node.merge(&Heartbeat { epoch: 4, cand: 1, age: 7 });
        assert_eq!((node.epoch, node.cand, node.age), (4, 1, 7));
        // Stale epochs are ignored entirely.
        node.merge(&Heartbeat { epoch: 2, cand: 0, age: 0 });
        assert_eq!((node.epoch, node.cand, node.age), (4, 1, 7));
    }

    #[test]
    fn min_uid_wins_within_epoch_and_ages_merge() {
        let mut node = MaintainedGossip::new(50, cfg(10));
        node.merge(&Heartbeat { epoch: 0, cand: 10, age: 4 });
        assert_eq!((node.cand, node.age), (10, 4));
        // Same candidate, fresher evidence: keep the min age.
        node.merge(&Heartbeat { epoch: 0, cand: 10, age: 1 });
        assert_eq!((node.cand, node.age), (10, 1));
        // Same candidate, staler evidence: no regression.
        node.merge(&Heartbeat { epoch: 0, cand: 10, age: 9 });
        assert_eq!((node.cand, node.age), (10, 1));
        // Worse candidate: ignored.
        node.merge(&Heartbeat { epoch: 0, cand: 30, age: 0 });
        assert_eq!((node.cand, node.age), (10, 1));
    }

    #[test]
    fn staleness_timeout_starts_new_epoch() {
        let mut node = MaintainedGossip::new(7, cfg(3));
        node.merge(&Heartbeat { epoch: 0, cand: 1, age: 0 });
        tick_connected(&mut node); // age 1
        tick_connected(&mut node); // age 2
        assert_eq!((node.epoch, node.cand), (0, 1));
        tick_connected(&mut node); // age 3 = timeout → re-elect
        assert_eq!((node.epoch, node.cand, node.age), (1, 7, 0));
        assert!(node.claims_leadership());
    }

    #[test]
    fn claimant_age_pinned_to_zero() {
        let mut node = MaintainedGossip::new(1, cfg(3));
        for _ in 0..10 {
            tick_connected(&mut node);
        }
        assert_eq!((node.epoch, node.cand, node.age), (0, 1, 0));
    }

    #[test]
    fn isolation_never_fires_but_keeps_evidence_honest() {
        let mut node = MaintainedGossip::new(9, cfg(3));
        node.merge(&Heartbeat { epoch: 0, cand: 2, age: 0 });
        tick_connected(&mut node);
        assert_eq!(node.age, 1);
        // Radio off for far longer than the timeout: no epoch bump, but the
        // gossiped age keeps ticking (saturating at the timeout) — a
        // rejoiner must not advertise fake-fresh evidence.
        for _ in 0..20 {
            node.saw_neighbors = false;
            node.end_round(1, &mut rng());
        }
        assert_eq!((node.epoch, node.cand, node.age), (0, 2, 3));
        // Rejoin grace: one full timeout of connected rounds without fresh
        // evidence still does not fire...
        for _ in 0..3 {
            tick_connected(&mut node);
            assert_eq!((node.epoch, node.cand), (0, 2));
        }
        // ...but once the grace is spent, stale evidence means a genuinely
        // dead leader: the detector finally fires.
        tick_connected(&mut node);
        assert_eq!((node.epoch, node.cand, node.age), (1, 9, 0));
    }

    #[test]
    fn rejoin_with_fresh_evidence_keeps_the_leader() {
        let mut node = MaintainedGossip::new(9, cfg(3));
        node.merge(&Heartbeat { epoch: 0, cand: 2, age: 0 });
        for _ in 0..20 {
            node.saw_neighbors = false;
            node.end_round(1, &mut rng());
        }
        // Back online: the network delivers a fresh heartbeat during the
        // grace period, so no election is ever called.
        node.merge(&Heartbeat { epoch: 0, cand: 2, age: 1 });
        for _ in 0..10 {
            node.merge(&Heartbeat { epoch: 0, cand: 2, age: 1 });
            tick_connected(&mut node);
        }
        assert_eq!((node.epoch, node.cand), (0, 2));
    }

    #[test]
    fn rejoiner_gossips_stale_age_not_fresh() {
        // Regression for the evidence-poisoning bug: an earlier design
        // reset `age` on the first connected round after isolation, and the
        // min-merge spread that fake-fresh heartbeat network-wide — under
        // background churn a dead leader was never detected.
        let mut node = MaintainedGossip::new(9, cfg(8));
        node.merge(&Heartbeat { epoch: 0, cand: 2, age: 0 });
        for _ in 0..5 {
            node.saw_neighbors = false;
            node.end_round(1, &mut rng());
        }
        tick_connected(&mut node);
        let hb = node.payload();
        assert_eq!(hb.cand, 2);
        assert!(hb.age >= 6, "rejoiner must advertise honest staleness, got {}", hb.age);
    }

    #[test]
    fn payload_fits_mobile_budget() {
        let node = MaintainedGossip::new(3, cfg(8));
        let hb = node.payload();
        let params = ModelParams::mobile(0);
        assert!(hb.uid_count() <= params.max_payload_uids);
        assert!(hb.extra_bits() <= params.max_payload_bits);
    }

    #[test]
    fn fingerprint_covers_epoch_and_cand_but_not_age() {
        let mut a = MaintainedGossip::new(4, cfg(9));
        let mut b = MaintainedGossip::new(4, cfg(9));
        a.merge(&Heartbeat { epoch: 0, cand: 2, age: 1 });
        b.merge(&Heartbeat { epoch: 0, cand: 2, age: 7 });
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        b.merge(&Heartbeat { epoch: 1, cand: 2, age: 0 });
        assert_ne!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn healthy_clique_elects_and_keeps_min_uid() {
        let uids = UidPool::random(16, 0xBEEF);
        let mut e = Engine::new(
            StaticTopology::new(gen::clique(16)),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(16),
            MaintainedGossip::spawn(&uids, cfg(64)),
            7,
        );
        let out = e.run_service(&ServiceConfig::rounds(600));
        assert_eq!(out.service.re_elections, 0, "healthy run must not churn terms");
        assert_eq!(out.service.leaderless_rounds, 0, "initial claimants cover round 1");
        assert_eq!(out.final_epoch, 0);
        assert_eq!(out.final_leader, Some(uids.min_uid()));
        assert_eq!(out.epochs.len(), 1);
        assert!(out.epochs[0].agreed_round.is_some());
    }

    #[test]
    fn leader_crash_triggers_re_election_of_next_uid() {
        let n = 16;
        let uids = UidPool::random(n, 0xD00D);
        let leader = uids.min_uid_node() as NodeId;
        // Second-smallest UID: the expected successor.
        let mut sorted: Vec<u64> = uids.as_slice().to_vec();
        sorted.sort_unstable();
        let successor = sorted[1];
        let topo = ScheduledCrashes::new(
            StaticTopology::new(gen::clique(n)),
            vec![(leader, 200, u64::MAX)],
        );
        let mut e = Engine::new(
            topo,
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            MaintainedGossip::spawn(&uids, cfg(64)),
            11,
        );
        let out = e.run_service(&ServiceConfig::rounds(1200));
        assert!(out.service.re_elections >= 1, "crash must be detected: {out:?}");
        assert!(out.final_epoch >= 1);
        assert_eq!(out.final_leader, Some(successor), "survivors must elect the next UID");
        assert!(
            out.service.leaderless_rounds >= 1,
            "detection latency must show up as leaderless downtime"
        );
        let last = out.epochs.last().expect("a service run records at least the initial epoch");
        assert_eq!(last.leader, Some(successor));
    }
}
