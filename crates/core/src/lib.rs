//! The paper's algorithms: leader election and rumor spreading in the
//! mobile telephone model.
//!
//! Three leader election algorithms (Newport, IPDPS 2017):
//!
//! * [`BlindGossip`] (§VI) — `b = 0`, any `τ ≥ 1`, synchronization-free.
//!   Flip a coin to send or receive; trade smallest UIDs over every
//!   connection. Stabilizes in `O((1/α)·Δ²·log²n)` rounds (Theorem VI.1);
//!   `Ω(Δ²/√α)` on the line-of-stars network.
//! * [`BitConvergence`] (§VII) — `b = 1`, synchronized starts. Rounds are
//!   partitioned into groups of `2·log Δ`, groups into phases of `k`
//!   (one group per ID-tag bit); each group runs PPUSH keyed on one bit of
//!   the node's current candidate tag. Stabilizes in
//!   `O((1/α)·Δ^(1/τ̂)·τ̂·log⁵n)` rounds where `τ̂ = min{τ, log Δ}`
//!   (Theorem VII.2).
//! * [`NonSyncBitConvergence`] (§VIII) — `b = ⌈log k⌉ + 1 = log log n +
//!   O(1)`, asynchronous activations, self-stabilizing. Each node picks a
//!   uniformly random tag bit position per local group and advertises
//!   `(position, bit)`. Stabilizes in `O((1/α)·Δ^(1/τ̂)·τ̂·log⁸n)` rounds
//!   after the last activation (Theorem VIII.2).
//!
//! Two rumor-spreading strategies (§V, used as subroutines and baselines):
//!
//! * [`PushPull`] — `b = 0`; identical round structure to blind gossip. In
//!   the mobile model it achieves `O((1/α)·Δ²·log²n)` (Corollary VI.6); in
//!   the classical model ([`mtm_engine::ConnectionPolicy::AcceptAll`]) it
//!   is the textbook PUSH-PULL baseline.
//! * [`Ppush`] — `b = 1`; informed nodes advertise 0 and propose to
//!   neighbors advertising 1 (productive push).
//!
//! All protocols treat UIDs as opaque comparable values ([`u64`]s here),
//! exchange at most one UID + `O(polylog N)` bits per connection, and need
//! no knowledge of the stability factor `τ`.

pub mod bit_convergence;
pub mod blind_gossip;
pub mod config;
pub mod id;
pub mod maintenance;
pub mod nonsync;
pub mod rumor;
pub mod rumor_ablation;

pub use bit_convergence::BitConvergence;
pub use blind_gossip::BlindGossip;
pub use config::TagConfig;
pub use id::{IdPair, UidPool};
pub use maintenance::{Heartbeat, MaintainedGossip, MaintenanceConfig};
pub use nonsync::NonSyncBitConvergence;
pub use rumor::{Ppush, PushPull};
pub use rumor_ablation::{PullOnly, PushOnly};
