//! Rumor spreading strategies (Section V).
//!
//! * [`PushPull`] — the classical strategy, `b = 0`: coin-flip send/receive,
//!   uniform neighbor choice, both directions trade the rumor. Run under the
//!   mobile policy it is the subject of Corollary VI.6
//!   (`O((1/α)·Δ²·log²n)`); run under the classical
//!   [`mtm_engine::ConnectionPolicy::AcceptAll`] policy it is the textbook
//!   baseline for the model-gap experiment.
//! * [`Ppush`] — *productive push*, `b = 1` (from [1], Theorem V.2):
//!   informed nodes advertise `0`, uninformed advertise `1`; an informed
//!   node proposes to a uniformly random neighbor advertising `1` (if any),
//!   an uninformed node listens. The bit makes every connection productive.

use mtm_engine::{Action, PayloadCost, Protocol, RumorView, Scan, Tag};
use rand::rngs::SmallRng;
use rand::Rng;

/// One-bit payload: whether the sender knows the rumor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RumorBit(pub bool);

impl PayloadCost for RumorBit {
    fn uid_count(&self) -> u32 {
        0
    }
    fn extra_bits(&self) -> u32 {
        1
    }
}

/// Classical PUSH-PULL, `b = 0`.
#[derive(Clone, Debug)]
pub struct PushPull {
    informed: bool,
}

impl PushPull {
    /// A node that starts informed or not.
    pub fn new(informed: bool) -> PushPull {
        PushPull { informed }
    }

    /// `n` nodes with exactly `sources` informed (nodes `0..sources`).
    pub fn spawn(n: usize, sources: usize) -> Vec<PushPull> {
        assert!(sources >= 1 && sources <= n);
        (0..n).map(|u| PushPull::new(u < sources)).collect()
    }
}

impl Protocol for PushPull {
    type Payload = RumorBit;

    fn advertise(&mut self, _local_round: u64, _rng: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        if scan.is_empty() || !rng.gen_bool(0.5) {
            return Action::Listen;
        }
        let i = rng.gen_range(0..scan.len());
        Action::Propose(scan.neighbors[i])
    }

    fn payload(&self) -> RumorBit {
        RumorBit(self.informed)
    }

    fn on_connect(&mut self, peer: &RumorBit, _rng: &mut SmallRng) {
        self.informed |= peer.0;
    }

    fn state_fingerprint(&self) -> Option<u64> {
        Some(self.informed as u64)
    }

    fn supports_check(&self) -> bool {
        true
    }

    fn enumerate_actions(&self, scan: &Scan<'_>) -> Vec<Action> {
        let mut actions = Vec::with_capacity(scan.len() + 1);
        actions.push(Action::Listen);
        actions.extend(scan.neighbors.iter().map(|&v| Action::Propose(v)));
        actions
    }

    fn state_words(&self, out: &mut Vec<u64>) {
        out.push(self.informed as u64);
    }
}

impl RumorView for PushPull {
    fn informed(&self) -> bool {
        self.informed
    }
}

/// Productive push (PPUSH), `b = 1`.
#[derive(Clone, Debug)]
pub struct Ppush {
    informed: bool,
}

impl Ppush {
    /// A node that starts informed or not.
    pub fn new(informed: bool) -> Ppush {
        Ppush { informed }
    }

    /// `n` nodes with exactly `sources` informed (nodes `0..sources`).
    pub fn spawn(n: usize, sources: usize) -> Vec<Ppush> {
        assert!(sources >= 1 && sources <= n);
        (0..n).map(|u| Ppush::new(u < sources)).collect()
    }

    /// PPUSH tag convention: informed → 0, uninformed → 1.
    fn my_tag(&self) -> Tag {
        if self.informed {
            Tag(0)
        } else {
            Tag(1)
        }
    }
}

impl Protocol for Ppush {
    type Payload = RumorBit;

    fn advertise(&mut self, _local_round: u64, _rng: &mut SmallRng) -> Tag {
        self.my_tag()
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        if !self.informed {
            // Advertising 1: receive only.
            return Action::Listen;
        }
        // Informed: propose to a uniformly random neighbor advertising 1.
        let uninformed =
            u32::try_from((0..scan.len()).filter(|&i| scan.tag_of(i) == Tag(1)).count())
                .expect("scan size fits u32");
        if uninformed == 0 {
            return Action::Listen;
        }
        let pick = rng.gen_range(0..uninformed);
        let mut seen = 0u32;
        for i in 0..scan.len() {
            if scan.tag_of(i) == Tag(1) {
                if seen == pick {
                    return Action::Propose(scan.neighbors[i]);
                }
                seen += 1;
            }
        }
        unreachable!("uninformed count matched no neighbor");
    }

    fn payload(&self) -> RumorBit {
        RumorBit(self.informed)
    }

    fn on_connect(&mut self, peer: &RumorBit, _rng: &mut SmallRng) {
        self.informed |= peer.0;
    }

    fn state_fingerprint(&self) -> Option<u64> {
        Some(self.informed as u64)
    }

    fn supports_check(&self) -> bool {
        true
    }

    fn enumerate_actions(&self, scan: &Scan<'_>) -> Vec<Action> {
        // Forced-propose shape: an informed node with uninformed (tag 1)
        // neighbors MUST propose to one of them; Listen is only available
        // when no neighbor is eligible.
        if !self.informed {
            return vec![Action::Listen];
        }
        let eligible: Vec<Action> = (0..scan.len())
            .filter(|&i| scan.tag_of(i) == Tag(1))
            .map(|i| Action::Propose(scan.neighbors[i]))
            .collect();
        if eligible.is_empty() {
            vec![Action::Listen]
        } else {
            eligible
        }
    }

    fn state_words(&self, out: &mut Vec<u64>) {
        out.push(self.informed as u64);
    }
}

impl RumorView for Ppush {
    fn informed(&self) -> bool {
        self.informed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::{ActivationSchedule, Engine, ModelParams};
    use mtm_graph::{gen, StaticTopology};

    fn spread_push_pull(g: mtm_graph::Graph, seed: u64, max: u64) -> Option<u64> {
        let n = g.node_count();
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            PushPull::spawn(n, 1),
            seed,
        );
        e.run_to_full_information(max).stabilized_round
    }

    fn spread_ppush(g: mtm_graph::Graph, seed: u64, max: u64) -> Option<u64> {
        let n = g.node_count();
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            Ppush::spawn(n, 1),
            seed,
        );
        e.run_to_full_information(max).stabilized_round
    }

    #[test]
    fn push_pull_informs_clique() {
        assert!(spread_push_pull(gen::clique(64), 1, 100_000).is_some());
    }

    #[test]
    fn push_pull_informs_path() {
        assert!(spread_push_pull(gen::path(20), 2, 1_000_000).is_some());
    }

    #[test]
    fn ppush_informs_clique() {
        assert!(spread_ppush(gen::clique(64), 3, 100_000).is_some());
    }

    #[test]
    fn ppush_faster_than_push_pull_on_star_like_graph() {
        // On a line of stars the hub degree punishes blind proposals;
        // PPUSH focuses connections on uninformed nodes. Compare medians
        // over a few seeds.
        let rounds = |f: &dyn Fn(u64) -> Option<u64>| -> u64 {
            let mut xs: Vec<u64> = (0..5).map(|s| f(s).expect("must finish")).collect();
            xs.sort_unstable();
            xs[2]
        };
        let pp = rounds(&|s| spread_push_pull(gen::line_of_stars(4, 16), s, 5_000_000));
        let pr = rounds(&|s| spread_ppush(gen::line_of_stars(4, 16), s, 5_000_000));
        assert!(
            pr < pp,
            "PPUSH (median {pr}) should beat PUSH-PULL (median {pp}) on the line of stars"
        );
    }

    #[test]
    fn informed_flag_monotone() {
        let mut rng = mtm_graph::rng::stream_rng(0, 0);
        let mut n = PushPull::new(true);
        n.on_connect(&RumorBit(false), &mut rng);
        assert!(n.informed(), "rumor must never be forgotten");
        let mut m = Ppush::new(false);
        m.on_connect(&RumorBit(true), &mut rng);
        assert!(m.informed());
    }

    #[test]
    fn ppush_informed_with_no_uninformed_neighbors_listens() {
        let mut node = Ppush::new(true);
        let neighbors = [1u32, 2];
        let tags = [Tag(0), Tag(0)];
        let scan = Scan { neighbors: &neighbors, tags: &tags, round: 1, local_round: 1 };
        let mut rng = mtm_graph::rng::stream_rng(0, 1);
        assert_eq!(node.act(&scan, &mut rng), Action::Listen);
    }

    #[test]
    fn ppush_targets_only_uninformed() {
        let mut node = Ppush::new(true);
        let neighbors = [1u32, 2, 3];
        let tags = [Tag(0), Tag(1), Tag(0)];
        let scan = Scan { neighbors: &neighbors, tags: &tags, round: 1, local_round: 1 };
        let mut rng = mtm_graph::rng::stream_rng(0, 2);
        for _ in 0..20 {
            assert_eq!(node.act(&scan, &mut rng), Action::Propose(2));
        }
    }

    #[test]
    fn classical_push_pull_beats_mobile_on_star() {
        // The Daum et al. observation: with unbounded acceptance the star
        // hub informs everyone almost immediately; with single-accept the
        // hub is a bottleneck.
        let g = gen::star(128);
        let n = g.node_count();
        let run = |params, seed| {
            let mut e = Engine::new(
                StaticTopology::new(g.clone()),
                params,
                ActivationSchedule::synchronized(n),
                PushPull::spawn(n, 1),
                seed,
            );
            e.run_to_full_information(10_000_000)
                .stabilized_round
                .expect("PUSH-PULL informs the clique within the round budget")
        };
        let classical: u64 = (0..3).map(|s| run(ModelParams::classical(), s)).sum();
        let mobile: u64 = (0..3).map(|s| run(ModelParams::mobile(0), s)).sum();
        assert!(
            classical * 4 < mobile,
            "classical ({classical}) should be ≫ faster than mobile ({mobile}) on a star"
        );
    }
}
