//! Bit convergence leader election (§VII): `b = 1`, synchronized starts.
//!
//! Each node pairs its UID with a random `k = ⌈β·log₂ N⌉`-bit *ID tag* and
//! maintains the smallest ID pair it has encountered (ordered by tag, ties
//! on UID). Rounds are partitioned into groups of `2·log Δ`; `k` consecutive
//! groups form a phase, group `i` of a phase mapped to tag-bit position `i`
//! (most significant first).
//!
//! At the start of each phase a node adopts the smallest pair it has stored
//! and sets `leader` to that pair's UID. During group `i` the node runs
//! PPUSH keyed on bit `i` of its adopted tag: it advertises the bit; nodes
//! advertising `0` (holders of potentially smaller tags) propose to
//! uniformly random neighbors advertising `1`; connected pairs trade
//! smallest ID pairs, storing (not adopting) what they receive until the
//! next phase boundary.
//!
//! Theorem VII.2: stabilizes in `O((1/α)·Δ^(1/τ̂)·τ̂·log⁵n)` rounds where
//! `τ̂ = min{τ, log Δ}` — from a factor-`Δ` to a factor-`Δ²` improvement
//! over blind gossip as `τ` grows from 1 to `log Δ`.
//!
//! **Synchronization assumption**: all nodes activate in round 1 (global
//! and local round counters coincide). Use
//! [`crate::NonSyncBitConvergence`] when activations are staggered.

use mtm_engine::{Action, LeaderView, Protocol, Scan, Tag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::TagConfig;
use crate::id::{IdPair, UidPool};

/// Per-node state of the synchronized bit convergence algorithm.
#[derive(Clone, Debug)]
pub struct BitConvergence {
    uid: u64,
    config: TagConfig,
    /// The pair adopted at the current phase boundary (`(Î_u, t̂_u)`).
    active: IdPair,
    /// Smallest pair encountered so far (staged for the next boundary).
    pending: IdPair,
    /// The `leader` variable (UID of `active`).
    leader: u64,
    /// Bit advertised this round (cached between `advertise` and `act`).
    current_bit: u32,
}

impl BitConvergence {
    /// A node with the given UID and ID tag (tag must fit `config.k` bits).
    pub fn new(uid: u64, tag: u64, config: TagConfig) -> BitConvergence {
        assert!(config.k == 63 || tag < (1u64 << config.k), "tag wider than k bits");
        let own = IdPair { tag, uid };
        BitConvergence { uid, config, active: own, pending: own, leader: uid, current_bit: 0 }
    }

    /// One node per UID, with independent uniform `k`-bit tags derived from
    /// `tag_seed`.
    pub fn spawn(uids: &UidPool, config: TagConfig, tag_seed: u64) -> Vec<BitConvergence> {
        // spawn-time tag sampling from an explicit seed. mtm-lint: allow(smallrng-outside-engine)
        let mut rng = SmallRng::seed_from_u64(tag_seed);
        uids.as_slice()
            .iter()
            .map(|&uid| {
                let tag = if config.k == 63 {
                    rng.gen::<u64>() >> 1
                } else {
                    rng.gen_range(0..(1u64 << config.k))
                };
                BitConvergence::new(uid, tag, config)
            })
            .collect()
    }

    /// The currently adopted smallest ID pair.
    pub fn active_pair(&self) -> IdPair {
        self.active
    }

    /// The staged (pending) smallest ID pair.
    pub fn pending_pair(&self) -> IdPair {
        self.pending
    }
}

impl Protocol for BitConvergence {
    type Payload = IdPair;

    fn advertise(&mut self, local_round: u64, _rng: &mut SmallRng) -> Tag {
        // Synchronized starts: local_round == global round.
        if self.config.is_phase_start(local_round) {
            self.active = self.pending;
            self.leader = self.active.uid;
        }
        let group = self.config.group_of_round(local_round);
        self.current_bit = self.active.tag_bit(group, self.config.k);
        Tag(self.current_bit)
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        if self.current_bit == 1 {
            // Potentially larger tag: receive only this group.
            return Action::Listen;
        }
        // Bit 0: propose to a uniformly random neighbor advertising 1.
        let ones = u32::try_from((0..scan.len()).filter(|&i| scan.tag_of(i) == Tag(1)).count())
            .expect("scan size fits u32");
        if ones == 0 {
            return Action::Listen;
        }
        let pick = rng.gen_range(0..ones);
        let mut seen = 0u32;
        for i in 0..scan.len() {
            if scan.tag_of(i) == Tag(1) {
                if seen == pick {
                    return Action::Propose(scan.neighbors[i]);
                }
                seen += 1;
            }
        }
        unreachable!("counted 1-advertisers not found");
    }

    fn payload(&self) -> IdPair {
        self.active
    }

    fn on_connect(&mut self, peer: &IdPair, _rng: &mut SmallRng) {
        // Store for the next phase boundary; do not adopt mid-phase (§VII:
        // "nodes only update their smallest ID pairs at the beginning of
        // each phase").
        self.pending = self.pending.min(*peer);
    }

    fn state_fingerprint(&self) -> Option<u64> {
        // Durable state only: active + pending pairs and the derived
        // leader. `current_bit` is per-round scratch recomputed from
        // `active` each advertise — at a fixed point it cycles through the
        // same sequence and must not register as progress.
        Some(mtm_engine::fingerprint::of_words(&[
            self.active.tag,
            self.active.uid,
            self.pending.tag,
            self.pending.uid,
            self.leader,
        ]))
    }

    fn supports_check(&self) -> bool {
        true
    }

    fn enumerate_actions(&self, scan: &Scan<'_>) -> Vec<Action> {
        // Forced-propose shape: a 0-bit advertiser with 1-advertising
        // neighbors MUST propose to one of them.
        if self.current_bit == 1 {
            return vec![Action::Listen];
        }
        let eligible: Vec<Action> = (0..scan.len())
            .filter(|&i| scan.tag_of(i) == Tag(1))
            .map(|i| Action::Propose(scan.neighbors[i]))
            .collect();
        if eligible.is_empty() {
            vec![Action::Listen]
        } else {
            eligible
        }
    }

    fn state_words(&self, out: &mut Vec<u64>) {
        // Same words as the fingerprint, unhashed: `current_bit` is scratch
        // recomputed from `active` by every advertise.
        out.extend_from_slice(&[
            self.active.tag,
            self.active.uid,
            self.pending.tag,
            self.pending.uid,
            self.leader,
        ]);
    }
}

impl LeaderView for BitConvergence {
    fn leader(&self) -> u64 {
        self.leader
    }
    fn uid(&self) -> u64 {
        self.uid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::{ActivationSchedule, Engine, ModelParams};
    use mtm_graph::{gen, StaticTopology};

    fn winner_pair(nodes: &[BitConvergence]) -> IdPair {
        nodes
            .iter()
            .map(|n| IdPair { tag: n.pending.tag, uid: n.pending.uid })
            .min()
            .expect("test network has nodes")
    }

    fn run(g: mtm_graph::Graph, seed: u64, max_rounds: u64) -> (mtm_engine::RunOutcome, IdPair) {
        let n = g.node_count();
        let config = TagConfig::for_network(n, g.max_degree());
        let uids = UidPool::random(n, seed ^ 0xBEEF);
        let nodes = BitConvergence::spawn(&uids, config, seed ^ 0xCAFE);
        let expect = nodes.iter().map(|x| x.active).min().expect("test network has nodes");
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            nodes,
            seed,
        );
        let out = e.run_to_stabilization(max_rounds);
        (out, expect)
    }

    #[test]
    fn elects_smallest_pair_on_clique() {
        let (out, expect) = run(gen::clique(32), 1, 1_000_000);
        assert_eq!(out.winner, Some(expect.uid));
    }

    #[test]
    fn elects_smallest_pair_on_line_of_stars() {
        let (out, expect) = run(gen::line_of_stars(4, 4), 2, 2_000_000);
        assert_eq!(out.winner, Some(expect.uid));
    }

    #[test]
    fn elects_smallest_pair_on_expander() {
        let (out, expect) = run(gen::random_regular(32, 4, 7), 3, 1_000_000);
        assert_eq!(out.winner, Some(expect.uid));
    }

    #[test]
    fn works_under_full_churn() {
        use mtm_graph::dynamic::RelabelingAdversary;
        let base = gen::line_of_stars(3, 3);
        let n = base.node_count();
        let config = TagConfig::for_network(n, base.max_degree());
        let uids = UidPool::random(n, 5);
        let nodes = BitConvergence::spawn(&uids, config, 6);
        let expect = nodes.iter().map(|x| x.active).min().expect("test network has nodes");
        let mut e = Engine::new(
            RelabelingAdversary::new(base, 1, 8),
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            nodes,
            9,
        );
        let out = e.run_to_stabilization(5_000_000);
        assert_eq!(out.winner, Some(expect.uid));
    }

    #[test]
    fn mid_phase_adoption_deferred() {
        let config = TagConfig { k: 4, group_len: 2 };
        let mut node = BitConvergence::new(10, 0b1111, config);
        let mut rng = mtm_graph::rng::stream_rng(0, 0);
        // Round 1 (phase start): adopt own pair.
        let _ = node.advertise(1, &mut rng);
        assert_eq!(node.leader(), 10);
        // Receive a smaller pair mid-phase: leader unchanged until the
        // next phase boundary.
        node.on_connect(&IdPair { tag: 0b0001, uid: 3 }, &mut rng);
        let _ = node.advertise(2, &mut rng);
        assert_eq!(node.leader(), 10, "must not adopt mid-phase");
        assert_eq!(node.active_pair().uid, 10);
        assert_eq!(node.pending_pair().uid, 3);
        // Next phase boundary: phase_len = 8 → round 9.
        let _ = node.advertise(9, &mut rng);
        assert_eq!(node.leader(), 3);
        assert_eq!(node.active_pair().uid, 3);
    }

    #[test]
    fn advertised_bit_tracks_group_position() {
        let config = TagConfig { k: 4, group_len: 3 };
        let mut node = BitConvergence::new(1, 0b1010, config);
        let mut rng = mtm_graph::rng::stream_rng(0, 1);
        // Groups: rounds 1-3 → bit 0 (MSB = 1), 4-6 → bit 1 (0),
        // 7-9 → bit 2 (1), 10-12 → bit 3 (0).
        let expect = [1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0];
        for (r, &want) in expect.iter().enumerate() {
            let t = node.advertise(r as u64 + 1, &mut rng);
            assert_eq!(t, Tag(want), "round {}", r + 1);
        }
    }

    #[test]
    fn one_bit_node_listens() {
        let config = TagConfig { k: 2, group_len: 2 };
        let mut node = BitConvergence::new(1, 0b10, config);
        let mut rng = mtm_graph::rng::stream_rng(0, 2);
        let _ = node.advertise(1, &mut rng); // group 0, bit 1
        let neighbors = [2u32];
        let tags = [Tag(0)];
        let scan = Scan { neighbors: &neighbors, tags: &tags, round: 1, local_round: 1 };
        assert_eq!(node.act(&scan, &mut rng), Action::Listen);
    }

    #[test]
    fn zero_bit_node_targets_one_advertisers() {
        let config = TagConfig { k: 2, group_len: 2 };
        let mut node = BitConvergence::new(1, 0b01, config);
        let mut rng = mtm_graph::rng::stream_rng(0, 3);
        let _ = node.advertise(1, &mut rng); // group 0, bit 0
        let neighbors = [5u32, 6, 7];
        let tags = [Tag(0), Tag(1), Tag(0)];
        let scan = Scan { neighbors: &neighbors, tags: &tags, round: 1, local_round: 1 };
        for _ in 0..10 {
            assert_eq!(node.act(&scan, &mut rng), Action::Propose(6));
        }
    }

    #[test]
    fn winner_is_min_pair_not_min_uid() {
        // Construct tags so the min-UID node has the largest tag: the
        // winner must be the min-(tag, uid) holder.
        let config = TagConfig { k: 8, group_len: 2 };
        let nodes = vec![
            BitConvergence::new(1, 0xFF, config), // smallest uid, biggest tag
            BitConvergence::new(2, 0x01, config), // winner
            BitConvergence::new(3, 0x80, config),
        ];
        let mut e = Engine::new(
            StaticTopology::new(gen::clique(3)),
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(3),
            nodes,
            4,
        );
        let out = e.run_to_stabilization(100_000);
        assert_eq!(out.winner, Some(2));
        let _ = winner_pair(e.nodes());
    }

    #[test]
    #[should_panic(expected = "wider than k")]
    fn tag_width_checked() {
        let config = TagConfig { k: 4, group_len: 2 };
        BitConvergence::new(1, 0x10, config);
    }
}
