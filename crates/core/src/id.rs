//! UIDs and ID pairs.
//!
//! The leader election problem (Section IV) gives every node a unique id
//! treated as an opaque comparable value. The bit-convergence algorithms
//! additionally pair each UID with a random *ID tag* of `k = ⌈β·log₂ N⌉`
//! bits (Section VII); pairs are ordered by tag first, breaking ties on the
//! UID, and the eventual leader is the node holding the globally smallest
//! pair.

use mtm_engine::PayloadCost;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A `(UID, ID tag)` pair, ordered by `(tag, uid)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdPair {
    /// The random `k`-bit ID tag (compared first).
    pub tag: u64,
    /// The node's UID (tie-breaker).
    pub uid: u64,
}

impl IdPair {
    /// Bit `i` of the tag, **most significant first** and 0-based: position
    /// 0 is the top bit of the `k`-bit tag. This matches the paper's
    /// convention `t[1] … t[k]` from most to least significant.
    #[inline]
    pub fn tag_bit(&self, i: u32, k: u32) -> u32 {
        debug_assert!(i < k);
        // single-bit extraction: the value is 0 or 1. mtm-lint: allow(truncating-cast)
        ((self.tag >> (k - 1 - i)) & 1) as u32
    }
}

impl PayloadCost for IdPair {
    fn uid_count(&self) -> u32 {
        1
    }
    fn extra_bits(&self) -> u32 {
        64 // the k-bit tag (k ≤ 63 enforced by TagConfig) — O(polylog N)
    }
}

/// Deterministic pool of distinct UIDs for a trial.
///
/// UIDs are random 64-bit values (shuffled, then deduplicated against each
/// other), so the minimum UID lands on a uniformly random node — no
/// accidental correlation between node index, topology position, and
/// leadership.
#[derive(Clone, Debug)]
pub struct UidPool {
    uids: Vec<u64>,
}

impl UidPool {
    /// `n` distinct random UIDs derived from `seed`.
    pub fn random(n: usize, seed: u64) -> UidPool {
        // spawn-time uid sampling from an explicit seed. mtm-lint: allow(smallrng-outside-engine)
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        let mut uids = Vec::with_capacity(n);
        while uids.len() < n {
            let u: u64 = rng.gen();
            if set.insert(u) {
                uids.push(u);
            }
        }
        UidPool { uids }
    }

    /// Sequential UIDs `0..n` (useful in tests where the winner must be a
    /// known node).
    pub fn sequential(n: usize) -> UidPool {
        UidPool { uids: (0..n as u64).collect() }
    }

    /// UID of node `u`.
    #[inline]
    pub fn uid(&self, u: usize) -> u64 {
        self.uids[u]
    }

    /// All UIDs in node order.
    pub fn as_slice(&self) -> &[u64] {
        &self.uids
    }

    /// The smallest UID in the pool (blind gossip's eventual winner).
    pub fn min_uid(&self) -> u64 {
        *self.uids.iter().min().expect("empty pool")
    }

    /// Node index holding the smallest UID.
    pub fn min_uid_node(&self) -> usize {
        self.uids.iter().enumerate().min_by_key(|(_, &u)| u).map(|(i, _)| i).expect("empty pool")
    }

    /// Number of UIDs.
    pub fn len(&self) -> usize {
        self.uids.len()
    }

    /// True iff the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.uids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_pair_orders_by_tag_then_uid() {
        let a = IdPair { tag: 1, uid: 99 };
        let b = IdPair { tag: 2, uid: 1 };
        let c = IdPair { tag: 1, uid: 100 };
        assert!(a < b, "smaller tag wins regardless of uid");
        assert!(a < c, "uid breaks tag ties");
        assert_eq!(a.min(b).min(c), a);
    }

    #[test]
    fn tag_bit_msb_first() {
        // k = 4, tag = 0b1010.
        let p = IdPair { tag: 0b1010, uid: 0 };
        assert_eq!(p.tag_bit(0, 4), 1);
        assert_eq!(p.tag_bit(1, 4), 0);
        assert_eq!(p.tag_bit(2, 4), 1);
        assert_eq!(p.tag_bit(3, 4), 0);
    }

    #[test]
    fn uid_pool_distinct_and_deterministic() {
        let a = UidPool::random(100, 5);
        let b = UidPool::random(100, 5);
        assert_eq!(a.as_slice(), b.as_slice());
        let mut sorted = a.as_slice().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn uid_pool_min_tracking() {
        let p = UidPool::sequential(10);
        assert_eq!(p.min_uid(), 0);
        assert_eq!(p.min_uid_node(), 0);
        let r = UidPool::random(50, 9);
        let node = r.min_uid_node();
        assert_eq!(r.uid(node), r.min_uid());
    }

    #[test]
    fn different_seeds_differ() {
        let a = UidPool::random(10, 1);
        let b = UidPool::random(10, 2);
        assert_ne!(a.as_slice(), b.as_slice());
    }
}
