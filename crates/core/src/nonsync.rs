//! Non-synchronized bit convergence leader election (§VIII):
//! `b = ⌈log k⌉ + 1 = log log n + O(1)`, asynchronous activations,
//! self-stabilizing.
//!
//! Nodes cannot rely on a global round counter, so group boundaries are
//! local (every `2·log Δ` *local* rounds). At each local group start a node
//! picks a tag-bit position `i ∈ [k]` uniformly at random; for the whole
//! group it advertises `(i, bit)` where `bit` is position `i` of its current
//! smallest ID tag. A node advertising `(i, 0)` proposes to a uniformly
//! random neighbor advertising `(i, 1)` — nodes interact only when they
//! happen to be working on the same bit position. Connected pairs trade
//! smallest ID pairs and adopt improvements **immediately** (no phase
//! staging — this is what makes the algorithm self-stabilizing: state is
//! just the smallest pair seen, so joining long-running components behaves
//! like a fresh execution).
//!
//! Theorem VIII.2: stabilizes in `O((1/α)·Δ^(1/τ̂)·τ̂·log⁸n)` rounds after
//! the last activation — a `log³n` factor slower than the synchronized
//! algorithm.

use mtm_engine::{Action, LeaderView, Protocol, Scan, Tag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::TagConfig;
use crate::id::{IdPair, UidPool};

/// Per-node state of the non-synchronized bit convergence algorithm.
#[derive(Clone, Debug)]
pub struct NonSyncBitConvergence {
    uid: u64,
    config: TagConfig,
    /// Smallest ID pair seen so far (adopted immediately on receipt).
    best: IdPair,
    /// Bit position selected for the current local group.
    position: u32,
    /// Bit advertised this round (cached between `advertise` and `act`).
    current_bit: u32,
}

impl NonSyncBitConvergence {
    /// A node with the given UID and ID tag.
    pub fn new(uid: u64, tag: u64, config: TagConfig) -> NonSyncBitConvergence {
        assert!(config.k == 63 || tag < (1u64 << config.k), "tag wider than k bits");
        NonSyncBitConvergence {
            uid,
            config,
            best: IdPair { tag, uid },
            position: 0,
            current_bit: 0,
        }
    }

    /// One node per UID with independent uniform `k`-bit tags.
    pub fn spawn(uids: &UidPool, config: TagConfig, tag_seed: u64) -> Vec<NonSyncBitConvergence> {
        // spawn-time tag sampling from an explicit seed. mtm-lint: allow(smallrng-outside-engine)
        let mut rng = SmallRng::seed_from_u64(tag_seed);
        uids.as_slice()
            .iter()
            .map(|&uid| {
                let tag = if config.k == 63 {
                    rng.gen::<u64>() >> 1
                } else {
                    rng.gen_range(0..(1u64 << config.k))
                };
                NonSyncBitConvergence::new(uid, tag, config)
            })
            .collect()
    }

    /// The smallest pair this node currently holds.
    pub fn best_pair(&self) -> IdPair {
        self.best
    }

    /// Encode the `(position, bit)` advertisement.
    fn encode(position: u32, bit: u32) -> Tag {
        Tag((position << 1) | bit)
    }

    /// Decode a neighbor's advertisement into `(position, bit)`.
    pub fn decode(tag: Tag) -> (u32, u32) {
        (tag.0 >> 1, tag.0 & 1)
    }
}

impl Protocol for NonSyncBitConvergence {
    type Payload = IdPair;

    fn advertise(&mut self, local_round: u64, rng: &mut SmallRng) -> Tag {
        if self.config.is_group_start(local_round) {
            self.position = rng.gen_range(0..self.config.k);
        }
        // The advertised bit reflects the *current* smallest pair, which
        // may have improved mid-group.
        self.current_bit = self.best.tag_bit(self.position, self.config.k);
        Self::encode(self.position, self.current_bit)
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        if self.current_bit == 1 {
            return Action::Listen;
        }
        // Advertising (i, 0): propose to a uniformly random neighbor
        // advertising (i, 1).
        let target = Self::encode(self.position, 1);
        let count = u32::try_from((0..scan.len()).filter(|&i| scan.tag_of(i) == target).count())
            .expect("scan size fits u32");
        if count == 0 {
            return Action::Listen;
        }
        let pick = rng.gen_range(0..count);
        let mut seen = 0u32;
        for i in 0..scan.len() {
            if scan.tag_of(i) == target {
                if seen == pick {
                    return Action::Propose(scan.neighbors[i]);
                }
                seen += 1;
            }
        }
        unreachable!("counted (i,1)-advertisers not found");
    }

    fn payload(&self) -> IdPair {
        self.best
    }

    fn on_connect(&mut self, peer: &IdPair, _rng: &mut SmallRng) {
        // Immediate adoption (§VIII: "update their locally stored smallest
        // ID pair if the pair they received is smaller").
        self.best = self.best.min(*peer);
    }

    fn state_fingerprint(&self) -> Option<u64> {
        // Only `best` is durable. `position` is re-randomized at every
        // group start and `current_bit` follows it — both keep changing at
        // a fixed point and would mask a deadlock if digested.
        Some(mtm_engine::fingerprint::of_words(&[self.best.tag, self.best.uid]))
    }

    fn supports_check(&self) -> bool {
        true
    }

    fn enumerate_choices(&self, local_round: u64) -> Vec<u32> {
        // The only advertise-phase randomness in the workspace: a fresh
        // uniform bit position at every local group start. Mid-group the
        // position is pinned, so there is a single choice (its value is
        // ignored by `apply_choice`).
        if self.config.is_group_start(local_round) {
            (0..self.config.k).collect()
        } else {
            vec![0]
        }
    }

    fn apply_choice(&mut self, local_round: u64, choice: u32) -> Tag {
        if self.config.is_group_start(local_round) {
            debug_assert!(choice < self.config.k, "choice out of range");
            self.position = choice;
        }
        self.current_bit = self.best.tag_bit(self.position, self.config.k);
        Self::encode(self.position, self.current_bit)
    }

    fn enumerate_actions(&self, scan: &Scan<'_>) -> Vec<Action> {
        // Forced-propose shape on (position, 0): any (position, 1)
        // advertiser is an eligible target.
        if self.current_bit == 1 {
            return vec![Action::Listen];
        }
        let target = Self::encode(self.position, 1);
        let eligible: Vec<Action> = (0..scan.len())
            .filter(|&i| scan.tag_of(i) == target)
            .map(|i| Action::Propose(scan.neighbors[i]))
            .collect();
        if eligible.is_empty() {
            vec![Action::Listen]
        } else {
            eligible
        }
    }

    fn state_words(&self, out: &mut Vec<u64>) {
        // Unlike the fingerprint, the exact-state key must include
        // `position`: it is durable across the rounds of a group and
        // shapes which connections can form mid-group.
        out.extend_from_slice(&[self.best.tag, self.best.uid, self.position as u64]);
    }
}

impl LeaderView for NonSyncBitConvergence {
    fn leader(&self) -> u64 {
        self.best.uid
    }
    fn uid(&self) -> u64 {
        self.uid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::{ActivationSchedule, Engine, ModelParams};
    use mtm_graph::{gen, StaticTopology};

    fn run_with_schedule(
        g: mtm_graph::Graph,
        schedule: ActivationSchedule,
        seed: u64,
        max_rounds: u64,
    ) -> (mtm_engine::RunOutcome, u64) {
        let n = g.node_count();
        let config = TagConfig::for_network(n, g.max_degree());
        let uids = UidPool::random(n, seed ^ 0x1234);
        let nodes = NonSyncBitConvergence::spawn(&uids, config, seed ^ 0x5678);
        let expect = nodes.iter().map(|x| x.best).min().expect("test network has nodes").uid;
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(config.nonsync_tag_bits()),
            schedule,
            nodes,
            seed,
        );
        (e.run_to_stabilization(max_rounds), expect)
    }

    #[test]
    fn synchronized_starts_still_work() {
        let g = gen::clique(24);
        let n = g.node_count();
        let (out, expect) = run_with_schedule(g, ActivationSchedule::synchronized(n), 1, 2_000_000);
        assert_eq!(out.winner, Some(expect));
    }

    #[test]
    fn staggered_activations_converge() {
        let g = gen::random_regular(24, 4, 3);
        let n = g.node_count();
        let sched = ActivationSchedule::staggered_uniform(n, 200, 9);
        let (out, expect) = run_with_schedule(g, sched, 2, 2_000_000);
        assert_eq!(out.winner, Some(expect));
        assert!(out.rounds_after_activation.is_some());
    }

    #[test]
    fn two_wave_join_converges() {
        let g = gen::clique(16);
        let sched = ActivationSchedule::two_wave(16, 8, 500);
        let (out, expect) = run_with_schedule(g, sched, 3, 2_000_000);
        assert_eq!(out.winner, Some(expect));
        let r = out.stabilized_round.expect("a stabilized run records its round");
        assert!(r >= 500, "cannot stabilize before the last activation");
    }

    #[test]
    fn encode_decode_roundtrip() {
        for pos in 0..30 {
            for bit in 0..2 {
                let t = NonSyncBitConvergence::encode(pos, bit);
                assert_eq!(NonSyncBitConvergence::decode(t), (pos, bit));
            }
        }
    }

    #[test]
    fn tag_fits_announced_budget() {
        let config = TagConfig::for_network(1024, 32);
        let uids = UidPool::random(16, 1);
        let mut nodes = NonSyncBitConvergence::spawn(&uids, config, 2);
        let b = config.nonsync_tag_bits();
        let mut rng = mtm_graph::rng::stream_rng(0, 0);
        for node in &mut nodes {
            for r in 1..=2 * config.group_len {
                let t = node.advertise(r, &mut rng);
                assert!(t.fits(b), "tag {t:?} exceeds b = {b}");
            }
        }
    }

    #[test]
    fn position_constant_within_group() {
        let config = TagConfig { k: 16, group_len: 6 };
        let mut node = NonSyncBitConvergence::new(1, 0x1234 & 0xFFFF, config);
        let mut rng = mtm_graph::rng::stream_rng(0, 1);
        let mut positions = Vec::new();
        for r in 1..=18 {
            let t = node.advertise(r, &mut rng);
            positions.push(NonSyncBitConvergence::decode(t).0);
        }
        // Constant within each group of 6.
        for g in 0..3 {
            let window = &positions[g * 6..(g + 1) * 6];
            assert!(window.iter().all(|&p| p == window[0]), "group {g}: {window:?}");
        }
    }

    #[test]
    fn immediate_adoption() {
        let config = TagConfig { k: 4, group_len: 2 };
        let mut node = NonSyncBitConvergence::new(9, 0b1111, config);
        let mut rng = mtm_graph::rng::stream_rng(0, 2);
        node.on_connect(&IdPair { tag: 0b0001, uid: 2 }, &mut rng);
        assert_eq!(node.leader(), 2, "nonsync adopts immediately");
        node.on_connect(&IdPair { tag: 0b0011, uid: 1 }, &mut rng);
        assert_eq!(node.leader(), 2, "larger tag rejected even with smaller uid");
    }

    #[test]
    fn acts_only_on_matching_position() {
        let config = TagConfig { k: 8, group_len: 4 };
        // Tag 0: every bit is 0, so the node always proposes when possible.
        let mut node = NonSyncBitConvergence::new(1, 0, config);
        let mut rng = mtm_graph::rng::stream_rng(0, 3);
        let t = node.advertise(1, &mut rng);
        let (pos, bit) = NonSyncBitConvergence::decode(t);
        assert_eq!(bit, 0);
        // Neighbors: one advertising (pos, 1), one advertising (pos+1, 1).
        let other_pos = (pos + 1) % config.k;
        let neighbors = [10u32, 11];
        let tags =
            [NonSyncBitConvergence::encode(pos, 1), NonSyncBitConvergence::encode(other_pos, 1)];
        let scan = Scan { neighbors: &neighbors, tags: &tags, round: 1, local_round: 1 };
        for _ in 0..10 {
            assert_eq!(node.act(&scan, &mut rng), Action::Propose(10));
        }
    }
}
