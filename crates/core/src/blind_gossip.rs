//! Blind gossip leader election (§VI): `b = 0`, any `τ ≥ 1`.
//!
//! Every round each node flips a fair coin to send or receive. A sender
//! proposes to a uniformly random neighbor; a connected pair trades the
//! smallest UIDs each has seen, and both adopt the minimum as their
//! `leader`. Theorem VI.1: stabilizes in `O((1/α)·Δ²·log²n)` rounds with
//! high probability; the line-of-stars construction shows the strategy
//! needs `Ω(Δ²/√α)` rounds on some stable networks.
//!
//! The algorithm uses no tags, no round synchronization, and no knowledge
//! of `n`, `Δ`, `α` or `τ`, so its analysis carries over unchanged to the
//! asynchronous-activation setting (footnote 2 of the paper).

use mtm_engine::{Action, LeaderView, PayloadCost, Protocol, Scan, Tag};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::id::UidPool;

/// Smallest-UID payload: exactly one UID, no extra bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinUid(pub u64);

impl PayloadCost for MinUid {
    fn uid_count(&self) -> u32 {
        1
    }
    fn extra_bits(&self) -> u32 {
        0
    }
}

/// Per-node state of the blind gossip algorithm.
#[derive(Clone, Debug)]
pub struct BlindGossip {
    uid: u64,
    /// Smallest UID received so far (`Î_u(r)`), which is also `leader`.
    best: u64,
}

impl BlindGossip {
    /// A node with the given UID.
    pub fn new(uid: u64) -> BlindGossip {
        BlindGossip { uid, best: uid }
    }

    /// One node per UID in the pool (the standard trial setup).
    pub fn spawn(uids: &UidPool) -> Vec<BlindGossip> {
        uids.as_slice().iter().map(|&u| BlindGossip::new(u)).collect()
    }

    /// The smallest UID this node has seen.
    pub fn best(&self) -> u64 {
        self.best
    }
}

impl Protocol for BlindGossip {
    type Payload = MinUid;

    fn advertise(&mut self, _local_round: u64, _rng: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        // Fair coin: heads = send, tails = receive. A node with no visible
        // neighbors can only listen.
        if scan.is_empty() || !rng.gen_bool(0.5) {
            return Action::Listen;
        }
        let i = rng.gen_range(0..scan.len());
        Action::Propose(scan.neighbors[i])
    }

    fn payload(&self) -> MinUid {
        MinUid(self.best)
    }

    fn on_connect(&mut self, peer: &MinUid, _rng: &mut SmallRng) {
        self.best = self.best.min(peer.0);
    }

    fn state_fingerprint(&self) -> Option<u64> {
        Some(mtm_engine::fingerprint::of_words(&[self.best]))
    }

    fn supports_check(&self) -> bool {
        true
    }

    fn enumerate_actions(&self, scan: &Scan<'_>) -> Vec<Action> {
        // The coin and the neighbor pick together allow Listen or a
        // proposal to any visible neighbor.
        let mut actions = Vec::with_capacity(scan.len() + 1);
        actions.push(Action::Listen);
        actions.extend(scan.neighbors.iter().map(|&v| Action::Propose(v)));
        actions
    }

    fn state_words(&self, out: &mut Vec<u64>) {
        out.push(self.best);
    }
}

impl LeaderView for BlindGossip {
    fn leader(&self) -> u64 {
        self.best
    }
    fn uid(&self) -> u64 {
        self.uid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::{ActivationSchedule, Engine, ModelParams};
    use mtm_graph::{gen, StaticTopology};

    fn run(g: mtm_graph::Graph, seed: u64, max_rounds: u64) -> mtm_engine::RunOutcome {
        let n = g.node_count();
        let uids = UidPool::random(n, seed ^ 0xFACE);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            BlindGossip::spawn(&uids),
            seed,
        );
        let out = e.run_to_stabilization(max_rounds);
        if let Some(w) = out.winner {
            assert_eq!(w, uids.min_uid(), "winner must be the minimum UID");
        }
        out
    }

    #[test]
    fn elects_min_uid_on_clique() {
        let out = run(gen::clique(32), 1, 100_000);
        assert!(out.stabilized_round.is_some());
    }

    #[test]
    fn elects_min_uid_on_path() {
        let out = run(gen::path(16), 2, 1_000_000);
        assert!(out.stabilized_round.is_some());
    }

    #[test]
    fn elects_min_uid_on_line_of_stars() {
        let out = run(gen::line_of_stars(4, 4), 3, 1_000_000);
        assert!(out.stabilized_round.is_some());
    }

    #[test]
    fn best_is_monotone_nonincreasing() {
        let mut node = BlindGossip::new(50);
        let mut rng = mtm_graph::rng::stream_rng(0, 0);
        node.on_connect(&MinUid(60), &mut rng);
        assert_eq!(node.best(), 50, "larger UID must not displace best");
        node.on_connect(&MinUid(10), &mut rng);
        assert_eq!(node.best(), 10);
        node.on_connect(&MinUid(30), &mut rng);
        assert_eq!(node.best(), 10);
        assert_eq!(node.leader(), 10);
        assert_eq!(node.uid(), 50);
    }

    #[test]
    fn works_under_churn() {
        use mtm_graph::dynamic::RelabelingAdversary;
        let base = gen::line_of_stars(3, 3);
        let n = base.node_count();
        let uids = UidPool::random(n, 77);
        let mut e = Engine::new(
            RelabelingAdversary::new(base, 1, 5), // τ = 1: change every round
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            BlindGossip::spawn(&uids),
            6,
        );
        let out = e.run_to_stabilization(2_000_000);
        assert_eq!(out.winner, Some(uids.min_uid()));
    }

    #[test]
    fn two_nodes_stabilize_quickly() {
        let out = run(gen::clique(2), 9, 10_000);
        // Each round: P(connect) = 1/2 (one sends, other receives).
        assert!(out.stabilized_round.expect("blind gossip stabilizes on the clique") < 200);
    }
}
