//! Rumor-spreading ablations: PUSH-only and PULL-only baselines.
//!
//! The paper's strategies are symmetric (PUSH-PULL) or advertisement-driven
//! (PPUSH). Classical rumor-spreading theory also studies the two
//! directions separately; these baselines quantify how much each direction
//! contributes in the *mobile* telephone model, where the single-accept
//! constraint changes the classical trade-offs:
//!
//! * [`PushOnly`] (`b = 0`) — only informed nodes send proposals; a formed
//!   connection transfers the rumor proposer → receiver only.
//! * [`PullOnly`] (`b = 0`) — only uninformed nodes send proposals; a
//!   formed connection transfers receiver → proposer only.
//!
//! Both are strictly weaker than PUSH-PULL on general graphs and serve as
//! ablation arms in the rumor-spreading benchmarks.

use mtm_engine::{Action, Protocol, RumorView, Scan, Tag};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::rumor::RumorBit;

/// PUSH-only: informed nodes propose to uniform neighbors; the rumor moves
/// only along proposer → receiver.
#[derive(Clone, Debug)]
pub struct PushOnly {
    informed: bool,
    /// Set when this node proposed this round: its outgoing payload carries
    /// the rumor, but an incoming payload is ignored (push direction only).
    absorbing: bool,
}

impl PushOnly {
    /// A node that starts informed or not.
    pub fn new(informed: bool) -> PushOnly {
        PushOnly { informed, absorbing: !informed }
    }

    /// `n` nodes, nodes `0..sources` informed.
    pub fn spawn(n: usize, sources: usize) -> Vec<PushOnly> {
        assert!(sources >= 1 && sources <= n);
        (0..n).map(|u| PushOnly::new(u < sources)).collect()
    }
}

impl Protocol for PushOnly {
    type Payload = RumorBit;

    fn advertise(&mut self, _local_round: u64, _rng: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        // Uninformed nodes only listen; informed nodes flip a coin (the
        // standard lazy variant keeps rounds comparable to PUSH-PULL).
        self.absorbing = !self.informed;
        if !self.informed || scan.is_empty() || !rng.gen_bool(0.5) {
            return Action::Listen;
        }
        let i = rng.gen_range(0..scan.len());
        Action::Propose(scan.neighbors[i])
    }

    fn payload(&self) -> RumorBit {
        RumorBit(self.informed)
    }

    fn on_connect(&mut self, peer: &RumorBit, _rng: &mut SmallRng) {
        // Receive the rumor only while listening (push direction).
        if self.absorbing {
            self.informed |= peer.0;
        }
    }

    fn supports_check(&self) -> bool {
        true
    }

    fn enumerate_actions(&self, scan: &Scan<'_>) -> Vec<Action> {
        if !self.informed || scan.is_empty() {
            return vec![Action::Listen];
        }
        let mut actions = Vec::with_capacity(scan.len() + 1);
        actions.push(Action::Listen);
        actions.extend(scan.neighbors.iter().map(|&v| Action::Propose(v)));
        actions
    }

    fn apply_action(&mut self, _scan: &Scan<'_>, _action: Action) {
        // Mirror `act`'s side effect: only a listener absorbs this round.
        self.absorbing = !self.informed;
    }

    fn state_words(&self, out: &mut Vec<u64>) {
        // `absorbing` is per-round scratch rewritten by every act.
        out.push(self.informed as u64);
    }
}

impl RumorView for PushOnly {
    fn informed(&self) -> bool {
        self.informed
    }
}

/// PULL-only: uninformed nodes propose to uniform neighbors; the rumor
/// moves only along receiver → proposer.
#[derive(Clone, Debug)]
pub struct PullOnly {
    informed: bool,
    /// Set when this node proposed this round (it is pulling): it absorbs
    /// the peer's payload. Listeners do not absorb.
    pulling: bool,
}

impl PullOnly {
    /// A node that starts informed or not.
    pub fn new(informed: bool) -> PullOnly {
        PullOnly { informed, pulling: false }
    }

    /// `n` nodes, nodes `0..sources` informed.
    pub fn spawn(n: usize, sources: usize) -> Vec<PullOnly> {
        assert!(sources >= 1 && sources <= n);
        (0..n).map(|u| PullOnly::new(u < sources)).collect()
    }
}

impl Protocol for PullOnly {
    type Payload = RumorBit;

    fn advertise(&mut self, _local_round: u64, _rng: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        self.pulling = false;
        if self.informed || scan.is_empty() || !rng.gen_bool(0.5) {
            return Action::Listen;
        }
        self.pulling = true;
        let i = rng.gen_range(0..scan.len());
        Action::Propose(scan.neighbors[i])
    }

    fn payload(&self) -> RumorBit {
        RumorBit(self.informed)
    }

    fn on_connect(&mut self, peer: &RumorBit, _rng: &mut SmallRng) {
        if self.pulling {
            self.informed |= peer.0;
        }
    }

    fn supports_check(&self) -> bool {
        true
    }

    fn enumerate_actions(&self, scan: &Scan<'_>) -> Vec<Action> {
        if self.informed || scan.is_empty() {
            return vec![Action::Listen];
        }
        let mut actions = Vec::with_capacity(scan.len() + 1);
        actions.push(Action::Listen);
        actions.extend(scan.neighbors.iter().map(|&v| Action::Propose(v)));
        actions
    }

    fn apply_action(&mut self, _scan: &Scan<'_>, action: Action) {
        // Mirror `act`'s side effect: absorb only while pulling.
        self.pulling = matches!(action, Action::Propose(_));
    }

    fn state_words(&self, out: &mut Vec<u64>) {
        // `pulling` is per-round scratch rewritten by every act.
        out.push(self.informed as u64);
    }
}

impl RumorView for PullOnly {
    fn informed(&self) -> bool {
        self.informed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::{ActivationSchedule, Engine, ModelParams};
    use mtm_graph::{gen, StaticTopology};

    fn run_push(g: mtm_graph::Graph, seed: u64, max: u64) -> Option<u64> {
        let n = g.node_count();
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            PushOnly::spawn(n, 1),
            seed,
        );
        e.run_to_full_information(max).stabilized_round
    }

    fn run_pull(g: mtm_graph::Graph, seed: u64, max: u64) -> Option<u64> {
        let n = g.node_count();
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            PullOnly::spawn(n, 1),
            seed,
        );
        e.run_to_full_information(max).stabilized_round
    }

    #[test]
    fn push_only_informs_clique() {
        assert!(run_push(gen::clique(24), 1, 200_000).is_some());
    }

    #[test]
    fn pull_only_informs_clique() {
        assert!(run_pull(gen::clique(24), 2, 200_000).is_some());
    }

    #[test]
    fn push_only_informs_path() {
        assert!(run_push(gen::path(12), 3, 2_000_000).is_some());
    }

    #[test]
    fn pull_only_informs_path() {
        assert!(run_pull(gen::path(12), 4, 2_000_000).is_some());
    }

    #[test]
    fn push_direction_is_one_way() {
        // An informed listener never "pulls": if an uninformed node
        // proposes to an informed PushOnly node, the proposer stays
        // uninformed... but uninformed PushOnly nodes never propose, so
        // check the absorbing flag directly instead.
        let mut rng = mtm_graph::rng::stream_rng(0, 0);
        let mut node = PushOnly::new(false);
        // While listening (absorbing), it learns:
        node.absorbing = true;
        node.on_connect(&RumorBit(true), &mut rng);
        assert!(node.informed());
        // A fresh uninformed node that somehow connected while proposing
        // would not learn:
        let mut node = PushOnly::new(false);
        node.absorbing = false;
        node.on_connect(&RumorBit(true), &mut rng);
        assert!(!node.informed());
    }

    #[test]
    fn pull_direction_is_one_way() {
        let mut rng = mtm_graph::rng::stream_rng(0, 1);
        // A listener (not pulling) does not learn:
        let mut node = PullOnly::new(false);
        node.pulling = false;
        node.on_connect(&RumorBit(true), &mut rng);
        assert!(!node.informed());
        // A puller learns:
        let mut node = PullOnly::new(false);
        node.pulling = true;
        node.on_connect(&RumorBit(true), &mut rng);
        assert!(node.informed());
    }

    #[test]
    fn push_pull_beats_push_only_on_star_pulls() {
        // On a star with the source at a leaf, PUSH alone must wait for the
        // source to push to the hub and the hub to push n-1 times; PULL
        // lets uninformed leaves fetch from the hub concurrently with the
        // hub's own pushes. PUSH-PULL ≤ PUSH-only in rounds (medians).
        use crate::rumor::PushPull;
        let g = gen::star(48);
        let n = g.node_count();
        let median = |f: &dyn Fn(u64) -> u64| {
            let mut xs: Vec<u64> = (0..5).map(f).collect();
            xs.sort_unstable();
            xs[2]
        };
        let push_only = median(&|s| {
            run_push(g.clone(), s, 10_000_000).expect("PUSH-only completes on this instance")
        });
        let push_pull = median(&|s| {
            let mut e = Engine::new(
                StaticTopology::new(g.clone()),
                ModelParams::mobile(0),
                ActivationSchedule::synchronized(n),
                PushPull::spawn(n, 1),
                s,
            );
            e.run_to_full_information(10_000_000)
                .stabilized_round
                .expect("PUSH-PULL completes on this instance")
        });
        assert!(
            push_pull <= push_only,
            "PUSH-PULL ({push_pull}) should not lose to PUSH-only ({push_only})"
        );
    }
}
