//! Shared configuration for the bit-convergence algorithms.

/// Parameters every bit-convergence node needs: the tag width `k`, the
/// group length `2·⌈log₂ Δ⌉`, and derived quantities.
///
/// Per the problem statement (Section IV) nodes know a polynomial upper
/// bound `N` on the network size; per the algorithm (Section VII) they use
/// groups of `2·log Δ` rounds, so they are also given the maximum degree
/// `Δ` (the paper assumes `Δ` is known, taking it to be a power of two for
/// analysis convenience — we use `⌈log₂ Δ⌉`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagConfig {
    /// Number of bits in an ID tag: `k = ⌈β·log₂ N⌉`, clamped to `[1, 63]`.
    pub k: u32,
    /// Rounds per group: `2·⌈log₂ Δ⌉`, at least 2.
    pub group_len: u64,
}

impl TagConfig {
    /// Build from the network-size bound `N`, the tag-length multiplier
    /// `β ≥ 1`, and the maximum degree `Δ`.
    pub fn new(n_bound: usize, beta: f64, max_degree: usize) -> TagConfig {
        assert!(n_bound >= 2, "N must be ≥ 2");
        assert!(beta >= 1.0, "β must be ≥ 1 for w.h.p. tag uniqueness");
        // intended float->int conversion, clamped to [1, 63] right here. mtm-lint: allow(truncating-cast)
        let k = ((beta * (n_bound as f64).log2()).ceil() as u32).clamp(1, 63);
        let log_delta = ceil_log2(max_degree.max(2));
        TagConfig { k, group_len: (2 * log_delta as u64).max(2) }
    }

    /// Default configuration for a concrete network: `N = n`, `β = 3`.
    pub fn for_network(n: usize, max_degree: usize) -> TagConfig {
        TagConfig::new(n, 3.0, max_degree)
    }

    /// Rounds per phase: `k` groups (synchronized algorithm, §VII).
    pub fn phase_len(&self) -> u64 {
        self.k as u64 * self.group_len
    }

    /// Group index (0-based bit position) within the phase for a 1-based
    /// round counter.
    pub fn group_of_round(&self, round: u64) -> u32 {
        debug_assert!(round >= 1);
        u32::try_from(((round - 1) % self.phase_len()) / self.group_len)
            .expect("group index fits u32")
    }

    /// True iff `round` (1-based) is the first round of a phase.
    pub fn is_phase_start(&self, round: u64) -> bool {
        (round - 1).is_multiple_of(self.phase_len())
    }

    /// True iff `round` (1-based) is the first round of a (local) group.
    pub fn is_group_start(&self, round: u64) -> bool {
        (round - 1).is_multiple_of(self.group_len)
    }

    /// Tag bits required by the non-synchronized algorithm:
    /// `⌈log₂ k⌉ + 1` (position + bit value), the paper's
    /// `b = log log n + O(1)`.
    pub fn nonsync_tag_bits(&self) -> u32 {
        ceil_log2(self.k.max(2) as usize) + 1
    }
}

/// `⌈log₂ x⌉` for `x ≥ 1`.
pub fn ceil_log2(x: usize) -> u32 {
    assert!(x >= 1);
    (usize::BITS - (x - 1).leading_zeros()).min(63)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn config_dimensions() {
        let c = TagConfig::new(256, 3.0, 16);
        assert_eq!(c.k, 24); // 3 · log2(256)
        assert_eq!(c.group_len, 8); // 2 · log2(16)
        assert_eq!(c.phase_len(), 192);
    }

    #[test]
    fn group_of_round_cycles() {
        let c = TagConfig { k: 3, group_len: 4 };
        assert_eq!(c.phase_len(), 12);
        assert_eq!(c.group_of_round(1), 0);
        assert_eq!(c.group_of_round(4), 0);
        assert_eq!(c.group_of_round(5), 1);
        assert_eq!(c.group_of_round(9), 2);
        assert_eq!(c.group_of_round(12), 2);
        assert_eq!(c.group_of_round(13), 0); // next phase
    }

    #[test]
    fn phase_and_group_starts() {
        let c = TagConfig { k: 2, group_len: 3 };
        assert!(c.is_phase_start(1));
        assert!(!c.is_phase_start(2));
        assert!(c.is_phase_start(7));
        assert!(c.is_group_start(1));
        assert!(c.is_group_start(4));
        assert!(!c.is_group_start(5));
    }

    #[test]
    fn k_clamped_to_63() {
        let c = TagConfig::new(usize::MAX / 2, 3.0, 4);
        assert_eq!(c.k, 63);
    }

    #[test]
    fn nonsync_tag_bits_is_loglog() {
        let c = TagConfig::new(1 << 20, 3.0, 64);
        assert_eq!(c.k, 60);
        assert_eq!(c.nonsync_tag_bits(), 7); // ⌈log2 60⌉ = 6, +1
    }

    #[test]
    fn small_degree_group_len_floor() {
        let c = TagConfig::new(16, 3.0, 2);
        assert_eq!(c.group_len, 2);
    }
}
