//! Engine and substrate microbenchmarks: per-round simulation throughput
//! across topology shapes, matching computation, and expansion search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mtm_core::{BlindGossip, Ppush, UidPool};
use mtm_engine::{ActivationSchedule, Engine, ModelParams};
use mtm_graph::{gen, GraphFamily, StaticTopology};

/// Rounds of blind gossip per topology (the hot path of most experiments).
fn round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_rounds");
    for (name, graph) in [
        ("clique-256", gen::clique(256)),
        ("expander8-1024", gen::random_regular(1024, 8, 1)),
        ("line-of-stars-16", gen::line_of_stars(16, 16)),
        ("cycle-1024", gen::cycle(1024)),
    ] {
        let n = graph.node_count();
        const ROUNDS: u64 = 100;
        group.throughput(Throughput::Elements(ROUNDS * n as u64));
        group.bench_with_input(BenchmarkId::new("blind_gossip", name), &graph, |b, g| {
            b.iter(|| {
                let uids = UidPool::random(n, 7);
                let mut e = Engine::new(
                    StaticTopology::new(g.clone()),
                    ModelParams::mobile(0),
                    ActivationSchedule::synchronized(n),
                    BlindGossip::spawn(&uids),
                    3,
                );
                e.run_rounds(ROUNDS);
                e.metrics().connections
            })
        });
    }
    group.finish();
}

/// PPUSH rounds (tag handling adds per-neighbor work).
fn ppush_throughput(c: &mut Criterion) {
    let graph = gen::random_regular(1024, 8, 2);
    let n = graph.node_count();
    c.bench_function("engine_rounds/ppush/expander8-1024", |b| {
        b.iter(|| {
            let mut e = Engine::new(
                StaticTopology::new(graph.clone()),
                ModelParams::mobile(1),
                ActivationSchedule::synchronized(n),
                Ppush::spawn(n, 1),
                5,
            );
            e.run_rounds(100);
            e.informed_count()
        })
    });
}

/// Hopcroft–Karp cut matchings (T5's inner loop).
fn matching(c: &mut Criterion) {
    let g = GraphFamily::Expander8.build(512, 3);
    let in_s: Vec<bool> = (0..g.node_count()).map(|u| u % 2 == 0).collect();
    c.bench_function("matching/hopcroft_karp/expander8-512", |b| {
        b.iter(|| mtm_graph::matching::cut_matching(&g, &in_s))
    });
}

/// Exact vertex expansion by subset enumeration (test-scale graphs).
fn expansion(c: &mut Criterion) {
    let g = gen::erdos_renyi_connected(16, 0.3, 9);
    c.bench_function("expansion/alpha_exact/n16", |b| {
        b.iter(|| mtm_graph::expansion::alpha_exact(&g))
    });
    let big = GraphFamily::Torus.build(400, 0);
    c.bench_function("expansion/sampled/torus-400", |b| {
        b.iter(|| mtm_graph::expansion::alpha_upper_bound_sampled(&big, 5, 1))
    });
}

/// Dynamic topology regeneration cost.
fn adversaries(c: &mut Criterion) {
    use mtm_graph::DynamicTopology;
    c.bench_function("dynamic/relabel/expander8-1024", |b| {
        let base = gen::random_regular(1024, 8, 4);
        let mut adv = mtm_graph::dynamic::RelabelingAdversary::new(base, 1, 8);
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            adv.graph_at(round).edge_count()
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(3));
    targets = round_throughput, ppush_throughput, matching, expansion, adversaries
}
criterion_main!(micro);
