//! Engine and substrate microbenchmarks: per-round simulation throughput
//! across topology shapes, matching computation, and expansion search.
//! Timing uses the in-tree [`mtm_bench::harness`] (the offline Criterion
//! replacement).

use mtm_bench::harness::Bench;
use mtm_core::{BlindGossip, Ppush, UidPool};
use mtm_engine::{ActivationSchedule, Engine, ModelParams};
use mtm_graph::{gen, GraphFamily, StaticTopology};

/// Rounds of blind gossip per topology (the hot path of most experiments).
fn round_throughput(bench: &mut Bench) {
    for (name, graph) in [
        ("clique-256", gen::clique(256)),
        ("expander8-1024", gen::random_regular(1024, 8, 1)),
        ("line-of-stars-16", gen::line_of_stars(16, 16)),
        ("cycle-1024", gen::cycle(1024)),
    ] {
        let n = graph.node_count();
        const ROUNDS: u64 = 100;
        bench.run(&format!("engine_rounds/blind_gossip/{name}"), || {
            let uids = UidPool::random(n, 7);
            let mut e = Engine::new(
                StaticTopology::new(graph.clone()),
                ModelParams::mobile(0),
                ActivationSchedule::synchronized(n),
                BlindGossip::spawn(&uids),
                3,
            );
            e.run_rounds(ROUNDS);
            e.metrics().connections
        });
    }
}

/// PPUSH rounds (tag handling adds per-neighbor work).
fn ppush_throughput(bench: &mut Bench) {
    let graph = gen::random_regular(1024, 8, 2);
    let n = graph.node_count();
    bench.run("engine_rounds/ppush/expander8-1024", || {
        let mut e = Engine::new(
            StaticTopology::new(graph.clone()),
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            Ppush::spawn(n, 1),
            5,
        );
        e.run_rounds(100);
        e.informed_count()
    });
}

/// Hopcroft–Karp cut matchings (T5's inner loop).
fn matching(bench: &mut Bench) {
    let g = GraphFamily::Expander8.build(512, 3);
    let in_s: Vec<bool> = (0..g.node_count()).map(|u| u % 2 == 0).collect();
    bench.run("matching/hopcroft_karp/expander8-512", || {
        mtm_graph::matching::cut_matching(&g, &in_s)
    });
}

/// Exact vertex expansion by subset enumeration (test-scale graphs).
fn expansion(bench: &mut Bench) {
    let g = gen::erdos_renyi_connected(16, 0.3, 9);
    bench.run("expansion/alpha_exact/n16", || mtm_graph::expansion::alpha_exact(&g));
    let big = GraphFamily::Torus.build(400, 0);
    bench.run("expansion/sampled/torus-400", || {
        mtm_graph::expansion::alpha_upper_bound_sampled(&big, 5, 1)
    });
}

/// Dynamic topology regeneration cost.
fn adversaries(bench: &mut Bench) {
    use mtm_graph::DynamicTopology;
    let base = gen::random_regular(1024, 8, 4);
    let mut adv = mtm_graph::dynamic::RelabelingAdversary::new(base, 1, 8);
    let mut round = 0u64;
    bench.run("dynamic/relabel/expander8-1024", || {
        round += 1;
        adv.graph_at(round).edge_count()
    });
}

fn main() {
    let mut bench = Bench::from_args();
    round_throughput(&mut bench);
    ppush_throughput(&mut bench);
    matching(&mut bench);
    expansion(&mut bench);
    adversaries(&mut bench);
    bench.finish();
}
