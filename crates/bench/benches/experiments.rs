//! One Criterion benchmark per reproduced table/figure.
//!
//! Each target regenerates its experiment at quick scale with one trial —
//! the same code path as the full-scale harness binary, parameterized down
//! so `cargo bench` finishes in minutes. Full-scale results for
//! EXPERIMENTS.md come from `cargo run --release -p mtm-experiments --bin
//! <id>_exp`.

use criterion::{criterion_group, criterion_main, Criterion};
use mtm_bench::bench_opts;

macro_rules! experiment_bench {
    ($fn_name:ident, $bench_name:literal, $module:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let opts = bench_opts();
            c.bench_function($bench_name, |b| {
                b.iter(|| {
                    let table = mtm_experiments::$module::run(&opts);
                    assert!(!table.is_empty());
                    table
                })
            });
        }
    };
}

experiment_bench!(t1, "bench_t1_blind_gossip", exp_t1);
experiment_bench!(f1, "bench_f1_lower_bound", exp_f1);
experiment_bench!(t2, "bench_t2_push_pull", exp_t2);
experiment_bench!(f2, "bench_f2_tau_sweep", exp_f2);
experiment_bench!(t3, "bench_t3_polylog", exp_t3);
experiment_bench!(f3, "bench_f3_b0_vs_b1", exp_f3);
experiment_bench!(t4, "bench_t4_nonsync", exp_t4);
experiment_bench!(f4, "bench_f4_self_stab", exp_f4);
experiment_bench!(t5, "bench_t5_matching_lemma", exp_t5);
experiment_bench!(f5, "bench_f5_ppush_matching", exp_f5);
experiment_bench!(t6, "bench_t6_tag_ablation", exp_t6);
experiment_bench!(f6, "bench_f6_model_gap", exp_f6);
experiment_bench!(f7, "bench_f7_trajectories", exp_f7);
// Ablation benches (design choices called out in DESIGN.md §3).
experiment_bench!(a1, "bench_a1_beta_ablation", exp_a1);
experiment_bench!(a2, "bench_a2_group_len_ablation", exp_a2);
experiment_bench!(a3, "bench_a3_push_pull_ablation", exp_a3);

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(3));
    targets = t1, f1, t2, f2, t3, f3, t4, f4, t5, f5, t6, f6, f7, a1, a2, a3
}
criterion_main!(experiments);
