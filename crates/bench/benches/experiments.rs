//! One benchmark per reproduced table/figure.
//!
//! Each target regenerates its experiment at quick scale with one trial —
//! the same code path as the full-scale harness binary, parameterized down
//! so `cargo bench` finishes in minutes. Full-scale results for
//! EXPERIMENTS.md come from `cargo run --release -p mtm-experiments --bin
//! <id>_exp`. Timing uses the in-tree [`mtm_bench::harness`] (the offline
//! Criterion replacement).

use mtm_bench::bench_opts;
use mtm_bench::harness::Bench;

macro_rules! experiment_bench {
    ($bench:expr, $opts:expr, $bench_name:literal, $module:ident) => {
        $bench.run($bench_name, || {
            let table = mtm_experiments::$module::run($opts);
            assert!(!table.is_empty());
            table
        });
    };
}

fn main() {
    let opts = bench_opts();
    let mut bench = Bench::from_args();
    experiment_bench!(bench, &opts, "bench_t1_blind_gossip", exp_t1);
    experiment_bench!(bench, &opts, "bench_f1_lower_bound", exp_f1);
    experiment_bench!(bench, &opts, "bench_t2_push_pull", exp_t2);
    experiment_bench!(bench, &opts, "bench_f2_tau_sweep", exp_f2);
    experiment_bench!(bench, &opts, "bench_t3_polylog", exp_t3);
    experiment_bench!(bench, &opts, "bench_f3_b0_vs_b1", exp_f3);
    experiment_bench!(bench, &opts, "bench_t4_nonsync", exp_t4);
    experiment_bench!(bench, &opts, "bench_f4_self_stab", exp_f4);
    experiment_bench!(bench, &opts, "bench_t5_matching_lemma", exp_t5);
    experiment_bench!(bench, &opts, "bench_f5_ppush_matching", exp_f5);
    experiment_bench!(bench, &opts, "bench_t6_tag_ablation", exp_t6);
    experiment_bench!(bench, &opts, "bench_f6_model_gap", exp_f6);
    experiment_bench!(bench, &opts, "bench_f7_trajectories", exp_f7);
    // Ablation benches (design choices called out in DESIGN.md §3).
    experiment_bench!(bench, &opts, "bench_a1_beta_ablation", exp_a1);
    experiment_bench!(bench, &opts, "bench_a2_group_len_ablation", exp_a2);
    experiment_bench!(bench, &opts, "bench_a3_push_pull_ablation", exp_a3);
    bench.finish();
}
