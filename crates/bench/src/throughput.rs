//! Engine throughput harness behind the `engine_throughput` binary.
//!
//! Measures steady-state `Engine::step` throughput (node-rounds/sec) per
//! topology × protocol workload and records the results as a labeled series
//! in `BENCH_engine.json` at the repo root. Engine construction (graph
//! clone, UID pool, protocol spawn) is excluded from the timed region — the
//! file tracks the round executor's hot path, which is what perf PRs
//! change. Labels let one file carry a trajectory: the convention is a
//! `before` and an `after` series per perf PR.

use mtm_core::{BitConvergence, BlindGossip, Ppush, TagConfig, UidPool};
use mtm_engine::protocol::Protocol;
use mtm_engine::{ActivationSchedule, Engine, ModelParams};
use mtm_experiments::perf::{RssSampler, Stopwatch};
use mtm_graph::dynamic::StaticTopology;
use mtm_graph::{gen, Graph};

use crate::json::{parse, Value};

/// Document format marker for `BENCH_engine.json`.
pub const SCHEMA: &str = "mtm-bench/engine-throughput/v1";

/// Bench names every series must contain (the quick set; full runs add
/// larger instances on top).
pub const EXPECTED_BENCHES: [&str; 6] = [
    "engine_rounds/blind_gossip/clique-256",
    "engine_rounds/blind_gossip/expander8-1024",
    "engine_rounds/blind_gossip/cycle-1024",
    "engine_rounds/blind_gossip/line-of-stars-16",
    "engine_rounds/ppush/expander8-1024",
    "engine_rounds/bit_convergence/expander8-1024",
];

/// One measured workload.
pub struct Entry {
    pub bench: String,
    pub nodes: usize,
    pub rounds: u64,
    pub reps: u32,
    /// Engine worker threads the workload ran with.
    pub threads: usize,
    /// Best (minimum) wall seconds for `rounds` rounds across reps.
    pub best_secs: f64,
    /// Peak RSS sampled while this workload ran (`VmRSS` max over the
    /// timed region, not the process-lifetime `VmHWM`).
    pub peak_rss_bytes: Option<u64>,
}

impl Entry {
    pub fn node_rounds_per_sec(&self) -> f64 {
        self.nodes as f64 * self.rounds as f64 / self.best_secs
    }

    pub fn ns_per_node_round(&self) -> f64 {
        self.best_secs * 1e9 / (self.nodes as f64 * self.rounds as f64)
    }

    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("bench".to_string(), Value::Str(self.bench.clone())),
            ("nodes".to_string(), Value::Num(self.nodes as f64)),
            ("rounds".to_string(), Value::Num(self.rounds as f64)),
            ("reps".to_string(), Value::Num(f64::from(self.reps))),
            ("threads".to_string(), Value::Num(self.threads as f64)),
            ("best_secs".to_string(), Value::Num(self.best_secs)),
            ("ns_per_node_round".to_string(), Value::Num(self.ns_per_node_round())),
            ("node_rounds_per_sec".to_string(), Value::Num(self.node_rounds_per_sec())),
            (
                "peak_rss_bytes".to_string(),
                self.peak_rss_bytes.map_or(Value::Null, |b| Value::Num(b as f64)),
            ),
        ])
    }
}

/// Time `run_rounds` on a freshly built engine, construction excluded from
/// the clock (the RSS sample covers everything — the engine's footprint is
/// what it is regardless of when it was built). Returns the best wall
/// seconds and the peak sampled RSS over the reps.
fn time_rounds<P: Protocol>(
    build: &dyn Fn() -> Engine<P, StaticTopology>,
    rounds: u64,
    reps: u32,
    threads: usize,
) -> (f64, Option<u64>) {
    let sampler = RssSampler::start(10);
    let mut best = f64::INFINITY;
    for _ in 0..=reps {
        let mut engine = build();
        engine.set_threads(threads);
        let sw = Stopwatch::start();
        engine.run_rounds(rounds);
        let secs = sw.elapsed_secs();
        std::hint::black_box(engine.metrics().connections);
        // The first iteration is an untimed warm-up.
        if best == f64::INFINITY || secs < best {
            best = secs.min(best);
        }
    }
    (best, sampler.stop())
}

fn blind_gossip_entry(name: &str, graph: &Graph, rounds: u64, reps: u32, threads: usize) -> Entry {
    let n = graph.node_count();
    let uids = UidPool::random(n, 7);
    let (best, rss) = time_rounds(
        &|| {
            Engine::new(
                StaticTopology::new(graph.clone()),
                ModelParams::mobile(0),
                ActivationSchedule::synchronized(n),
                BlindGossip::spawn(&uids),
                3,
            )
        },
        rounds,
        reps,
        threads,
    );
    Entry {
        bench: format!("engine_rounds/blind_gossip/{name}"),
        nodes: n,
        rounds,
        reps,
        threads,
        best_secs: best,
        peak_rss_bytes: rss,
    }
}

fn ppush_entry(name: &str, graph: &Graph, rounds: u64, reps: u32, threads: usize) -> Entry {
    let n = graph.node_count();
    let (best, rss) = time_rounds(
        &|| {
            Engine::new(
                StaticTopology::new(graph.clone()),
                ModelParams::mobile(1),
                ActivationSchedule::synchronized(n),
                Ppush::spawn(n, 1),
                5,
            )
        },
        rounds,
        reps,
        threads,
    );
    Entry {
        bench: format!("engine_rounds/ppush/{name}"),
        nodes: n,
        rounds,
        reps,
        threads,
        best_secs: best,
        peak_rss_bytes: rss,
    }
}

fn bit_convergence_entry(
    name: &str,
    graph: &Graph,
    rounds: u64,
    reps: u32,
    threads: usize,
) -> Entry {
    let n = graph.node_count();
    let config = TagConfig::for_network(n, graph.max_degree());
    let uids = UidPool::random(n, 7);
    let (best, rss) = time_rounds(
        &|| {
            Engine::new(
                StaticTopology::new(graph.clone()),
                ModelParams::mobile(1),
                ActivationSchedule::synchronized(n),
                BitConvergence::spawn(&uids, config, 11),
                5,
            )
        },
        rounds,
        reps,
        threads,
    );
    Entry {
        bench: format!("engine_rounds/bit_convergence/{name}"),
        nodes: n,
        rounds,
        reps,
        threads,
        best_secs: best,
        peak_rss_bytes: rss,
    }
}

/// Run every workload at `threads` engine workers; `quick` trims
/// rounds/reps and skips the big instances (CI smoke mode).
pub fn run_workloads(quick: bool, threads: usize) -> Vec<Entry> {
    let (rounds, reps) = if quick { (50, 1) } else { (500, 4) };
    let mut entries = Vec::new();
    for (name, graph) in [
        ("clique-256", gen::clique(256)),
        ("expander8-1024", gen::random_regular(1024, 8, 1)),
        ("cycle-1024", gen::cycle(1024)),
        ("line-of-stars-16", gen::line_of_stars(16, 16)),
    ] {
        entries.push(blind_gossip_entry(name, &graph, rounds, reps, threads));
    }
    if !quick {
        let big = gen::random_regular(65536, 8, 1);
        entries.push(blind_gossip_entry("expander8-65536", &big, 100, 2, threads));
    }
    let expander = gen::random_regular(1024, 8, 2);
    entries.push(ppush_entry("expander8-1024", &expander, rounds, reps, threads));
    entries.push(bit_convergence_entry("expander8-1024", &expander, rounds, reps, threads));
    entries
}

/// Load `path` if it exists, else a fresh skeleton document.
pub fn load_or_new(path: &str) -> Result<Value, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
            if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
                return Err(format!("{path}: unexpected schema"));
            }
            Ok(doc)
        }
        Err(_) => Ok(Value::Obj(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("series".to_string(), Value::Obj(vec![])),
        ])),
    }
}

/// Install `entries` as series `label` in `doc` (replacing any prior run).
pub fn set_series(doc: &mut Value, label: &str, quick: bool, entries: &[Entry]) {
    let series = Value::Obj(vec![
        ("quick".to_string(), Value::Bool(quick)),
        ("entries".to_string(), Value::Arr(entries.iter().map(Entry::to_json).collect())),
    ]);
    doc.get_mut("series").expect("schema guarantees a series object").set(label, series);
}

/// Validate a document: schema marker, and every series in `require` (or
/// all present series when `require` is empty) contains each expected bench
/// with a positive throughput. Returns the list of series checked.
pub fn check(doc: &Value, require: &[String]) -> Result<Vec<String>, String> {
    if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        return Err("schema marker missing or unexpected".to_string());
    }
    let series = doc.get("series").ok_or("no series object")?;
    let members = series.members().ok_or("series is not an object")?;
    let labels: Vec<String> = if require.is_empty() {
        members.iter().map(|(k, _)| k.clone()).collect()
    } else {
        require.to_vec()
    };
    if labels.is_empty() {
        return Err("no series present".to_string());
    }
    for label in &labels {
        let entries = series
            .get(label)
            .ok_or_else(|| format!("series '{label}' missing"))?
            .get("entries")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("series '{label}' has no entries array"))?;
        for expected in EXPECTED_BENCHES {
            let entry = entries
                .iter()
                .find(|e| e.get("bench").and_then(Value::as_str) == Some(expected))
                .ok_or_else(|| format!("series '{label}' missing bench '{expected}'"))?;
            let rate = entry
                .get("node_rounds_per_sec")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("'{expected}' in '{label}' has no throughput"))?;
            if !rate.is_finite() || rate <= 0.0 {
                return Err(format!("'{expected}' in '{label}' has non-positive throughput"));
            }
        }
    }
    Ok(labels)
}

/// Speedup of `after` over `before` on one bench, if both series exist.
pub fn speedup(doc: &Value, bench: &str) -> Option<f64> {
    let rate = |label: &str| -> Option<f64> {
        doc.get("series")?
            .get(label)?
            .get("entries")?
            .as_arr()?
            .iter()
            .find(|e| e.get("bench").and_then(Value::as_str) == Some(bench))?
            .get("node_rounds_per_sec")?
            .as_f64()
    };
    Some(rate("after")? / rate("before")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_entries() -> Vec<Entry> {
        EXPECTED_BENCHES
            .iter()
            .map(|b| Entry {
                bench: b.to_string(),
                nodes: 100,
                rounds: 10,
                reps: 1,
                threads: 1,
                best_secs: 0.5,
                peak_rss_bytes: Some(1 << 20),
            })
            .collect()
    }

    #[test]
    fn series_roundtrip_and_check() {
        let mut doc = load_or_new("/nonexistent/BENCH_engine.json").expect("skeleton");
        set_series(&mut doc, "before", true, &fake_entries());
        set_series(&mut doc, "after", true, &fake_entries());
        let text = doc.render();
        let back = parse(&text).expect("roundtrip");
        let labels = check(&back, &[]).expect("valid doc");
        assert_eq!(labels, vec!["before".to_string(), "after".to_string()]);
        assert_eq!(speedup(&back, EXPECTED_BENCHES[1]), Some(1.0));
    }

    #[test]
    fn check_flags_missing_bench() {
        let mut doc = load_or_new("/nonexistent/x.json").expect("skeleton");
        let mut entries = fake_entries();
        entries.pop();
        set_series(&mut doc, "before", true, &entries);
        assert!(check(&doc, &[]).is_err());
        assert!(check(&doc, &["absent".to_string()]).is_err());
    }

    #[test]
    fn entry_rates() {
        let e = &fake_entries()[0];
        assert!((e.node_rounds_per_sec() - 2000.0).abs() < 1e-9);
        assert!((e.ns_per_node_round() - 500_000.0).abs() < 1e-6);
    }
}
