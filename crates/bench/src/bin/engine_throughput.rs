//! Engine throughput harness: measures node-rounds/sec per topology ×
//! protocol workload and maintains labeled series in `BENCH_engine.json`.
//!
//! ```text
//! engine_throughput [--quick] [--threads N] [--label NAME] [--output PATH]
//! engine_throughput --check PATH [--require a,b,c]
//! ```
//!
//! The measure mode merges its series into the output file (other labels
//! are preserved), prints the table, and — when both `before` and `after`
//! series exist — reports the speedup on the headline expander workload.
//! The check mode validates that the file parses and that each required
//! series contains every expected bench with positive throughput.

use mtm_bench::throughput::{
    check, load_or_new, run_workloads, set_series, speedup, EXPECTED_BENCHES,
};

struct Args {
    quick: bool,
    threads: usize,
    label: String,
    output: String,
    check_path: Option<String>,
    require: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        threads: 1,
        label: "after".to_string(),
        output: "BENCH_engine.json".to_string(),
        check_path: None,
        require: Vec::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |argv: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = take(&argv, &mut i, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--label" => args.label = take(&argv, &mut i, "--label")?,
            "--output" => args.output = take(&argv, &mut i, "--output")?,
            "--check" => args.check_path = Some(take(&argv, &mut i, "--check")?),
            "--require" => {
                args.require =
                    take(&argv, &mut i, "--require")?.split(',').map(str::to_string).collect();
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: engine_throughput [--quick] [--threads N] [--label NAME] [--output PATH]\n       \
                 engine_throughput --check PATH [--require a,b,c]"
            );
            std::process::exit(2);
        }
    };

    if let Some(path) = &args.check_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        });
        match mtm_bench::json::parse(&text)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|doc| check(&doc, &args.require).map_err(|e| format!("{path}: {e}")))
        {
            Ok(labels) => {
                println!("{path}: ok ({} series: {})", labels.len(), labels.join(", "));
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let entries = run_workloads(args.quick, args.threads);
    println!("{:<48} {:>10} {:>16}", "bench", "ns/nr", "node-rounds/s");
    for e in &entries {
        println!(
            "{:<48} {:>10.2} {:>16.0}",
            e.bench,
            e.ns_per_node_round(),
            e.node_rounds_per_sec()
        );
    }

    let mut doc = load_or_new(&args.output).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    set_series(&mut doc, &args.label, args.quick, &entries);
    std::fs::write(&args.output, doc.render()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.output);
        std::process::exit(1);
    });
    println!("\nseries '{}' written to {}", args.label, args.output);

    let headline = EXPECTED_BENCHES[1]; // blind_gossip/expander8-1024
    if let Some(s) = speedup(&doc, headline) {
        println!("speedup after/before on {headline}: {s:.2}x");
    }
}
