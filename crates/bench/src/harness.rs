//! Minimal wall-clock benchmark harness (Criterion replacement).
//!
//! Each target is a closure run in a timing loop: one untimed warm-up
//! iteration, then repeated timed iterations until either
//! [`Bench::MEASUREMENT_BUDGET`] elapses or [`Bench::MAX_ITERS`] samples
//! are collected. Reported statistics are min / mean / max nanoseconds per
//! iteration. Wall-clock use is confined to this module by design — the
//! workspace's determinism lint forbids `Instant::now` in simulation code,
//! and benchmark timing is exactly the intended exception.

use std::time::{Duration, Instant};

/// A named-target benchmark runner with an optional substring filter.
pub struct Bench {
    filter: Option<String>,
    ran: usize,
}

impl Bench {
    /// Soft cap on the per-target measurement time.
    pub const MEASUREMENT_BUDGET: Duration = Duration::from_millis(1500);
    /// Hard cap on timed iterations per target.
    pub const MAX_ITERS: u32 = 25;

    /// Build from `std::env::args`: the first argument that is not a flag
    /// (Cargo passes `--bench`) is used as a substring filter on target
    /// names, mirroring `cargo bench <filter>`.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench { filter, ran: 0 }
    }

    /// Run one named target unless filtered out. The closure's return value
    /// is consumed through [`std::hint::black_box`] so the optimizer cannot
    /// delete the measured work.
    // Benchmark timing is the workspace's one sanctioned wall-clock use.
    #[allow(clippy::disallowed_methods)]
    pub fn run<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        std::hint::black_box(f()); // warm-up, untimed
        let budget_start = Instant::now();
        let mut samples: Vec<Duration> = Vec::new();
        while samples.len() < Self::MAX_ITERS as usize
            && (samples.is_empty() || budget_start.elapsed() < Self::MEASUREMENT_BUDGET)
        {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed());
        }
        let min = samples.iter().min().expect("at least one sample").as_nanos();
        let max = samples.iter().max().expect("at least one sample").as_nanos();
        let mean = samples.iter().map(|d| d.as_nanos()).sum::<u128>() / samples.len() as u128;
        println!(
            "{name:<44} {:>12} ns/iter (min {:>12}, max {:>12}, {} iters)",
            fmt_thousands(mean),
            fmt_thousands(min),
            fmt_thousands(max),
            samples.len()
        );
        self.ran += 1;
    }

    /// Print a trailing summary (number of targets executed).
    pub fn finish(self) {
        println!("\n{} benchmark target(s) executed", self.ran);
    }
}

fn fmt_thousands(mut v: u128) -> String {
    let mut groups = Vec::new();
    loop {
        let group = v % 1000;
        v /= 1000;
        if v == 0 {
            groups.push(group.to_string());
            break;
        }
        groups.push(format!("{group:03}"));
    }
    groups.reverse();
    groups.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_thousands(0), "0");
        assert_eq!(fmt_thousands(999), "999");
        assert_eq!(fmt_thousands(1_000), "1,000");
        assert_eq!(fmt_thousands(1_234_567), "1,234,567");
    }

    #[test]
    fn filter_skips_targets() {
        let mut b = Bench { filter: Some("match-me".to_string()), ran: 0 };
        b.run("other", || 1);
        assert_eq!(b.ran, 0);
        b.run("yes-match-me-yes", || 1);
        assert_eq!(b.ran, 1);
    }
}
