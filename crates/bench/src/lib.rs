//! Shared helpers for the benchmark targets.
//!
//! One benchmark per reproduced table/figure (see DESIGN.md §3) lives in
//! `benches/experiments.rs`; engine microbenchmarks live in
//! `benches/engine_micro.rs`. Benchmarks run every experiment at quick
//! scale with a single trial — they measure the *cost* of regenerating each
//! result; the full-scale numbers themselves are produced by the
//! `mtm-experiments` harness binaries.
//!
//! The offline build has no Criterion, so [`harness`] provides a small
//! wall-clock timing loop with the same ergonomics (named targets, optional
//! substring filter from the command line).

use mtm_experiments::ExpOpts;

pub mod harness;
pub use mtm_analysis::json;
pub mod throughput;

/// Quick-scale single-trial options used by every experiment benchmark.
pub fn bench_opts() -> ExpOpts {
    let mut opts = ExpOpts::quick();
    opts.trials = 1;
    opts.threads = 1; // measure single-threaded cost, not scheduler noise
    opts.seed = 0xBEBC;
    opts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_opts_are_quick_single_trial() {
        let o = bench_opts();
        assert_eq!(o.trials, 1);
        assert_eq!(o.threads, 1);
    }
}
