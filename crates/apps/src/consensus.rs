//! Binary consensus by leader election.
//!
//! Each node starts with an input bit. Nodes run blind-gossip leader
//! election with the input of the current best candidate piggybacked on
//! the payload (one UID + one bit — well within the model's connection
//! budget). When the election stabilizes, every node's `decision` is the
//! input bit of the elected leader, giving:
//!
//! * **Agreement** — all nodes track the same minimum UID, so they adopt
//!   the same bit;
//! * **Validity** — the decision is some node's actual input;
//! * **Termination** — inherited from Theorem VI.1's stabilization bound.

use mtm_engine::{Action, LeaderView, PayloadCost, Protocol, Scan, Tag};
use rand::rngs::SmallRng;
use rand::Rng;

/// Candidate payload: the smallest UID seen plus that node's input bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Smallest UID seen so far.
    pub uid: u64,
    /// The input bit of the node that owns `uid`.
    pub input: bool,
}

impl PayloadCost for Candidate {
    fn uid_count(&self) -> u32 {
        1
    }
    fn extra_bits(&self) -> u32 {
        1
    }
}

/// Per-node state for leader-based binary consensus.
#[derive(Clone, Debug)]
pub struct LeaderConsensus {
    uid: u64,
    input: bool,
    best: Candidate,
}

impl LeaderConsensus {
    /// A node with the given UID and input bit.
    pub fn new(uid: u64, input: bool) -> LeaderConsensus {
        LeaderConsensus { uid, input, best: Candidate { uid, input } }
    }

    /// One node per `(uid, input)` pair.
    pub fn spawn(inputs: &[(u64, bool)]) -> Vec<LeaderConsensus> {
        inputs.iter().map(|&(u, b)| LeaderConsensus::new(u, b)).collect()
    }

    /// The node's current decision candidate (final once the underlying
    /// election stabilizes).
    pub fn decision(&self) -> bool {
        self.best.input
    }

    /// This node's own input.
    pub fn input(&self) -> bool {
        self.input
    }
}

impl Protocol for LeaderConsensus {
    type Payload = Candidate;

    fn advertise(&mut self, _local_round: u64, _rng: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        if scan.is_empty() || !rng.gen_bool(0.5) {
            return Action::Listen;
        }
        let i = rng.gen_range(0..scan.len());
        Action::Propose(scan.neighbors[i])
    }

    fn payload(&self) -> Candidate {
        self.best
    }

    fn on_connect(&mut self, peer: &Candidate, _rng: &mut SmallRng) {
        if peer.uid < self.best.uid {
            self.best = *peer;
        }
    }
}

impl LeaderView for LeaderConsensus {
    fn leader(&self) -> u64 {
        self.best.uid
    }
    fn uid(&self) -> u64 {
        self.uid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::{ActivationSchedule, Engine, ModelParams};
    use mtm_graph::{gen, StaticTopology};

    fn run_consensus(inputs: Vec<(u64, bool)>, seed: u64) -> (bool, Vec<bool>) {
        let n = inputs.len();
        let expect = inputs.iter().min_by_key(|(u, _)| u).expect("test inputs are non-empty").1;
        let g = gen::random_regular(n, 3, seed);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            LeaderConsensus::spawn(&inputs),
            seed,
        );
        let out = e.run_to_stabilization(10_000_000);
        assert!(out.stabilized_round.is_some());
        (expect, e.nodes().iter().map(|p| p.decision()).collect())
    }

    #[test]
    fn agreement_and_validity() {
        let inputs: Vec<(u64, bool)> = (0..16).map(|i| (1000 - i as u64, i % 3 == 0)).collect();
        let (expect, decisions) = run_consensus(inputs, 4);
        assert!(decisions.iter().all(|&d| d == expect), "disagreement or invalid decision");
    }

    #[test]
    fn unanimous_input_decides_that_value() {
        for value in [false, true] {
            let inputs: Vec<(u64, bool)> = (0..12).map(|i| (i as u64 * 7 + 3, value)).collect();
            let (_, decisions) = run_consensus(inputs, 9);
            assert!(decisions.iter().all(|&d| d == value), "validity violated for {value}");
        }
    }

    #[test]
    fn decision_is_leaders_input_not_majority() {
        // Minority value held by the min-UID node must win: consensus here
        // is leader-based, not majority voting.
        let mut inputs: Vec<(u64, bool)> = (1..16).map(|i| (i as u64 + 10, false)).collect();
        inputs.push((1, true)); // min UID holds the minority value
        let (expect, decisions) = run_consensus(inputs, 5);
        assert!(expect);
        assert!(decisions.iter().all(|&d| d));
    }

    #[test]
    fn candidate_payload_within_budget() {
        let c = Candidate { uid: u64::MAX, input: true };
        assert_eq!(c.uid_count(), 1);
        assert_eq!(c.extra_bits(), 1);
    }
}
