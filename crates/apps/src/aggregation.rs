//! Gossip aggregation in the mobile telephone model.
//!
//! Two aggregates, both with constant-size connection payloads:
//!
//! * [`MinGossip`] — exact minimum (or, by negating inputs, maximum) of a
//!   `u64` value per node. Structurally identical to blind gossip, so
//!   Theorem VI.1's stabilization bound applies verbatim.
//! * [`SizeEstimator`] — network-size estimation by *extrema propagation*
//!   (Baquero et al.): each node draws `K` independent `Exp(1)` variables;
//!   the network gossips the pointwise minimum vector; since the minimum of
//!   `n` exponentials is `Exp(n)`, the unbiased estimator
//!   `n̂ = (K-1)/Σ_j m_j` concentrates around `n`. One vector of `K` floats
//!   per connection — constant-size for fixed `K`, satisfying the payload
//!   budget (`K·64` bits; default `K = 32` ⇒ 2048 bits, documented as the
//!   budget when constructing [`mtm_engine::ModelParams`] for this app).

use mtm_engine::{Action, PayloadCost, Protocol, Scan, Tag};
use rand::rngs::SmallRng;
use rand::Rng;

/// Number of exponential draws per node in [`SizeEstimator`].
pub const ESTIMATOR_WIDTH: usize = 32;

/// Exact-minimum gossip over `u64` values.
#[derive(Clone, Debug)]
pub struct MinGossip {
    value: u64,
    best: u64,
}

/// One `u64` payload (counted as a UID-sized item).
#[derive(Clone, Copy, Debug)]
pub struct MinPayload(pub u64);

impl PayloadCost for MinPayload {
    fn uid_count(&self) -> u32 {
        1
    }
    fn extra_bits(&self) -> u32 {
        0
    }
}

impl MinGossip {
    /// A node contributing `value` to the minimum.
    pub fn new(value: u64) -> MinGossip {
        MinGossip { value, best: value }
    }

    /// One node per value.
    pub fn spawn(values: &[u64]) -> Vec<MinGossip> {
        values.iter().map(|&v| MinGossip::new(v)).collect()
    }

    /// Smallest value seen so far.
    pub fn current_min(&self) -> u64 {
        self.best
    }

    /// This node's own contribution.
    pub fn own_value(&self) -> u64 {
        self.value
    }
}

impl Protocol for MinGossip {
    type Payload = MinPayload;

    fn advertise(&mut self, _local_round: u64, _rng: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        if scan.is_empty() || !rng.gen_bool(0.5) {
            return Action::Listen;
        }
        let i = rng.gen_range(0..scan.len());
        Action::Propose(scan.neighbors[i])
    }

    fn payload(&self) -> MinPayload {
        MinPayload(self.best)
    }

    fn on_connect(&mut self, peer: &MinPayload, _rng: &mut SmallRng) {
        self.best = self.best.min(peer.0);
    }
}

/// Vector of pointwise minima exchanged by [`SizeEstimator`].
#[derive(Clone, Debug)]
pub struct MinVector(pub [f64; ESTIMATOR_WIDTH]);

impl PayloadCost for MinVector {
    fn uid_count(&self) -> u32 {
        0
    }
    fn extra_bits(&self) -> u32 {
        u32::try_from(ESTIMATOR_WIDTH * 64).expect("estimator bit width fits u32")
    }
}

/// Network-size estimation by extrema propagation.
#[derive(Clone, Debug)]
pub struct SizeEstimator {
    minima: [f64; ESTIMATOR_WIDTH],
}

impl SizeEstimator {
    /// A node with its own `Exp(1)` draws, derived from `seed`.
    pub fn new(seed: u64) -> SizeEstimator {
        let mut rng = mtm_graph::rng::stream_rng(seed, 0);
        let mut minima = [0.0; ESTIMATOR_WIDTH];
        for slot in minima.iter_mut() {
            // Inverse-CDF sampling of Exp(1); `1 - gen::<f64>()` is in
            // (0, 1], avoiding ln(0).
            let u: f64 = 1.0 - rng.gen::<f64>();
            *slot = -u.ln();
        }
        SizeEstimator { minima }
    }

    /// One node per index, each with independent draws.
    pub fn spawn(n: usize, seed: u64) -> Vec<SizeEstimator> {
        (0..n).map(|u| SizeEstimator::new(mtm_graph::rng::derive_seed(seed, u as u64))).collect()
    }

    /// The current size estimate `n̂ = (K-1)/Σ minima` (unbiased for the
    /// fully-converged vector).
    pub fn estimate(&self) -> f64 {
        let sum: f64 = self.minima.iter().sum();
        (ESTIMATOR_WIDTH as f64 - 1.0) / sum
    }

    /// The raw minima vector (for convergence checks).
    pub fn minima(&self) -> &[f64; ESTIMATOR_WIDTH] {
        &self.minima
    }
}

impl Protocol for SizeEstimator {
    type Payload = MinVector;

    fn advertise(&mut self, _local_round: u64, _rng: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        if scan.is_empty() || !rng.gen_bool(0.5) {
            return Action::Listen;
        }
        let i = rng.gen_range(0..scan.len());
        Action::Propose(scan.neighbors[i])
    }

    fn payload(&self) -> MinVector {
        MinVector(self.minima)
    }

    fn on_connect(&mut self, peer: &MinVector, _rng: &mut SmallRng) {
        for (mine, theirs) in self.minima.iter_mut().zip(peer.0.iter()) {
            if *theirs < *mine {
                *mine = *theirs;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::{ActivationSchedule, Engine, ModelParams};
    use mtm_graph::{gen, StaticTopology};

    #[test]
    fn min_gossip_converges_to_true_min() {
        let values: Vec<u64> = (0..20).map(|i| (i * 37 + 11) % 100 + 5).collect();
        let true_min = *values.iter().min().expect("test values are non-empty");
        let g = gen::random_regular(20, 4, 1);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(20),
            MinGossip::spawn(&values),
            2,
        );
        let done =
            e.run_until(1_000_000, |e| e.nodes().iter().all(|p| p.current_min() == true_min));
        assert!(done.is_some());
    }

    #[test]
    fn min_gossip_is_monotone() {
        let mut rng = mtm_graph::rng::stream_rng(0, 0);
        let mut node = MinGossip::new(50);
        node.on_connect(&MinPayload(80), &mut rng);
        assert_eq!(node.current_min(), 50);
        node.on_connect(&MinPayload(20), &mut rng);
        assert_eq!(node.current_min(), 20);
        assert_eq!(node.own_value(), 50);
    }

    #[test]
    fn size_estimator_converges_and_is_accurate() {
        let n = 100;
        // Payload is K·64 bits; raise the budget accordingly.
        let mut params = ModelParams::mobile(0);
        params.max_payload_bits = (ESTIMATOR_WIDTH * 64) as u32;
        let g = gen::random_regular(n, 6, 3);
        let mut e = Engine::new(
            StaticTopology::new(g),
            params,
            ActivationSchedule::synchronized(n),
            SizeEstimator::spawn(n, 4),
            5,
        );
        // Converged when all vectors are identical.
        let done = e.run_until(1_000_000, |e| {
            let first = e.node(0).minima();
            e.nodes().iter().all(|p| p.minima() == first)
        });
        assert!(done.is_some(), "minima vectors must converge");
        let est = e.node(0).estimate();
        // K = 32 gives relative error ~1/√(K-2) ≈ 18%; accept a wide band.
        assert!(
            est > n as f64 * 0.5 && est < n as f64 * 2.0,
            "estimate {est} too far from n = {n}"
        );
    }

    #[test]
    fn size_estimates_scale_with_n() {
        // The converged estimate should grow with the true network size.
        let estimate_for = |n: usize, seed: u64| {
            let mut params = ModelParams::mobile(0);
            params.max_payload_bits = (ESTIMATOR_WIDTH * 64) as u32;
            let g = gen::random_regular(n, 4, seed);
            let mut e = Engine::new(
                StaticTopology::new(g),
                params,
                ActivationSchedule::synchronized(n),
                SizeEstimator::spawn(n, seed ^ 1),
                seed ^ 2,
            );
            e.run_until(1_000_000, |e| {
                let first = e.node(0).minima();
                e.nodes().iter().all(|p| p.minima() == first)
            })
            .expect("must converge");
            e.node(0).estimate()
        };
        // Average over a few seeds to tame estimator variance.
        let small: f64 = (0..5).map(|s| estimate_for(16, s)).sum::<f64>() / 5.0;
        let large: f64 = (0..5).map(|s| estimate_for(128, s)).sum::<f64>() / 5.0;
        assert!(
            large > small * 3.0,
            "estimates should scale with n: n=16 → {small}, n=128 → {large}"
        );
    }

    #[test]
    fn exponential_draws_are_positive() {
        let node = SizeEstimator::new(7);
        assert!(node.minima().iter().all(|&x| x > 0.0));
        assert!(node.estimate().is_finite());
    }
}
