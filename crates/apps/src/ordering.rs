//! Leader-based total-order event assignment.
//!
//! Every node starts with one event (identified by the node's UID). A
//! pre-elected *sequencer* (typically the leader chosen by one of the
//! paper's algorithms) assigns consecutive sequence numbers as it learns of
//! unassigned events; finished assignments gossip through the network one
//! per connection, so the per-connection payload stays within the model's
//! O(1)-UIDs budget.
//!
//! Payload (both directions): one still-unassigned event from the sender's
//! relay pool (nodes relay unassigned events they hear of, so events reach
//! the sequencer without a direct meeting), plus one known assignment
//! chosen round-robin. The sequencer assigns numbers in the order it first
//! hears of events; every node eventually holds the same `seq → event`
//! map, a total order consistent across the network.

use mtm_engine::{Action, PayloadCost, Protocol, Scan, Tag};
use rand::rngs::SmallRng;
use rand::Rng;

/// One assignment: event `event` has sequence number `seq`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Sequence number (0-based, dense).
    pub seq: u32,
    /// Event id (the origin node's UID).
    pub event: u64,
}

/// Connection payload: one unassigned event from the sender's relay pool
/// (if any) and one known assignment (rotated per send).
#[derive(Clone, Copy, Debug)]
pub struct OrderingMsg {
    /// An event the sender believes has no sequence number yet.
    pub unassigned: Option<u64>,
    /// One assignment from the sender's table.
    pub share: Option<Assignment>,
}

impl PayloadCost for OrderingMsg {
    fn uid_count(&self) -> u32 {
        u32::from(self.unassigned.is_some()) + u32::from(self.share.is_some())
    }
    fn extra_bits(&self) -> u32 {
        32 // the sequence number
    }
}

/// Per-node state of the total-order assignment protocol.
#[derive(Clone, Debug)]
pub struct EventOrdering {
    uid: u64,
    /// True iff this node is the sequencer.
    is_sequencer: bool,
    /// Next sequence number the sequencer will hand out.
    next_seq: u32,
    /// Known assignments, indexed by seq (dense from 0; `u64::MAX` = hole).
    known: Vec<u64>,
    /// Unassigned events this node relays (starts with its own event).
    pending: Vec<u64>,
    /// Round-robin cursor over `known` for the share slot.
    cursor: usize,
    /// Round-robin cursor over `pending` for the relay slot.
    pending_cursor: usize,
}

impl EventOrdering {
    /// A node with event id = `uid`; `is_sequencer` marks the pre-elected
    /// leader.
    pub fn new(uid: u64, is_sequencer: bool) -> EventOrdering {
        EventOrdering {
            uid,
            is_sequencer,
            next_seq: 0,
            known: Vec::new(),
            pending: vec![uid],
            cursor: 0,
            pending_cursor: 0,
        }
    }

    /// One node per UID, with the sequencer at `leader_index`.
    pub fn spawn(uids: &[u64], leader_index: usize) -> Vec<EventOrdering> {
        uids.iter().enumerate().map(|(i, &u)| EventOrdering::new(u, i == leader_index)).collect()
    }

    /// The assignments this node knows, as `(seq, event)` pairs in seq
    /// order (holes omitted).
    pub fn known_assignments(&self) -> Vec<Assignment> {
        self.known
            .iter()
            .enumerate()
            .filter(|(_, &e)| e != u64::MAX)
            .map(|(s, &e)| Assignment {
                seq: u32::try_from(s).expect("sequence number fits u32"),
                event: e,
            })
            .collect()
    }

    /// Number of assignments known (holes excluded).
    pub fn known_count(&self) -> usize {
        self.known.iter().filter(|&&e| e != u64::MAX).count()
    }

    /// Record an assignment into the local table and stop relaying the
    /// event as unassigned.
    fn learn(&mut self, a: Assignment) {
        let idx = a.seq as usize;
        if self.known.len() <= idx {
            self.known.resize(idx + 1, u64::MAX);
        }
        debug_assert!(
            self.known[idx] == u64::MAX || self.known[idx] == a.event,
            "conflicting assignment for seq {}",
            a.seq
        );
        self.known[idx] = a.event;
        self.pending.retain(|&e| e != a.event);
    }

    /// Add an event to the relay pool unless already assigned or pooled.
    fn relay(&mut self, event: u64) {
        if self.known.contains(&event) || self.pending.contains(&event) {
            return;
        }
        self.pending.push(event);
    }

    /// Sequencer-side: assign the next number to `event` if it is new.
    fn assign(&mut self, event: u64) {
        debug_assert!(self.is_sequencer);
        if self.known.contains(&event) {
            return;
        }
        let a = Assignment { seq: self.next_seq, event };
        self.next_seq += 1;
        self.learn(a);
    }
}

impl Protocol for EventOrdering {
    type Payload = OrderingMsg;

    fn advertise(&mut self, local_round: u64, _rng: &mut SmallRng) -> Tag {
        // The sequencer registers its own event at the start (seq 0).
        if self.is_sequencer && local_round == 1 {
            let own = self.uid;
            self.assign(own);
        }
        Tag::EMPTY
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        if scan.is_empty() || !rng.gen_bool(0.5) {
            return Action::Listen;
        }
        let i = rng.gen_range(0..scan.len());
        Action::Propose(scan.neighbors[i])
    }

    fn payload(&self) -> OrderingMsg {
        let share = if self.known.is_empty() {
            None
        } else {
            // Rotate through known slots, skipping holes (best effort: scan
            // forward from the cursor once around).
            let len = self.known.len();
            (0..len)
                .map(|off| (self.cursor + off) % len)
                .find(|&idx| self.known[idx] != u64::MAX)
                .map(|idx| Assignment {
                    seq: u32::try_from(idx).expect("sequence number fits u32"),
                    event: self.known[idx],
                })
        };
        let unassigned = if self.pending.is_empty() {
            None
        } else {
            Some(self.pending[self.pending_cursor % self.pending.len()])
        };
        OrderingMsg { unassigned, share }
    }

    fn on_connect(&mut self, peer: &OrderingMsg, _rng: &mut SmallRng) {
        if let Some(a) = peer.share {
            self.learn(a);
        }
        if let Some(event) = peer.unassigned {
            if self.is_sequencer {
                self.assign(event);
            } else {
                self.relay(event);
            }
        }
    }

    fn end_round(&mut self, _local_round: u64, _rng: &mut SmallRng) {
        if !self.known.is_empty() {
            self.cursor = (self.cursor + 1) % self.known.len();
        }
        if !self.pending.is_empty() {
            self.pending_cursor = (self.pending_cursor + 1) % self.pending.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::{ActivationSchedule, Engine, ModelParams};
    use mtm_graph::{gen, StaticTopology};

    fn run_ordering(n: usize, seed: u64) -> Engine<EventOrdering, StaticTopology> {
        let uids: Vec<u64> = (0..n as u64).map(|i| i * 13 + 7).collect();
        let g = gen::random_regular(n, 4, seed);
        let mut params = ModelParams::mobile(0);
        params.max_payload_bits = 64;
        let mut e = Engine::new(
            StaticTopology::new(g),
            params,
            ActivationSchedule::synchronized(n),
            EventOrdering::spawn(&uids, 0),
            seed,
        );
        let done = e.run_until(5_000_000, |e| e.nodes().iter().all(|p| p.known_count() == n));
        assert!(done.is_some(), "ordering must disseminate fully");
        e
    }

    #[test]
    fn all_nodes_learn_identical_total_order() {
        let e = run_ordering(16, 3);
        let reference = e.node(0).known_assignments();
        assert_eq!(reference.len(), 16);
        for u in 1..16 {
            assert_eq!(e.node(u).known_assignments(), reference, "node {u} diverged");
        }
    }

    #[test]
    fn sequence_numbers_are_dense_and_unique() {
        let e = run_ordering(12, 4);
        let assignments = e.node(5).known_assignments();
        let mut seqs: Vec<u32> = assignments.iter().map(|a| a.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..12).collect::<Vec<u32>>(), "non-dense sequence numbers");
        let mut events: Vec<u64> = assignments.iter().map(|a| a.event).collect();
        events.sort_unstable();
        events.dedup();
        assert_eq!(events.len(), 12, "duplicate event in the order");
    }

    #[test]
    fn sequencer_owns_seq_zero() {
        let e = run_ordering(10, 5);
        let a0 = e.node(3).known_assignments()[0];
        assert_eq!(a0.seq, 0);
        assert_eq!(a0.event, 7, "sequencer's own event (uid 7) must be first");
    }

    #[test]
    fn learn_is_idempotent_and_consistent() {
        let mut node = EventOrdering::new(1, false);
        node.learn(Assignment { seq: 2, event: 9 });
        node.learn(Assignment { seq: 0, event: 5 });
        node.learn(Assignment { seq: 2, event: 9 }); // repeat OK
        assert_eq!(node.known_count(), 2);
        let known = node.known_assignments();
        assert_eq!(known[0], Assignment { seq: 0, event: 5 });
        assert_eq!(known[1], Assignment { seq: 2, event: 9 });
    }

    #[test]
    fn payload_respects_budget() {
        let m = OrderingMsg { unassigned: Some(3), share: Some(Assignment { seq: 1, event: 2 }) };
        assert_eq!(m.uid_count(), 2);
        assert_eq!(m.extra_bits(), 32);
    }
}
