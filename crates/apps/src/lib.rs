//! Distributed applications built on the mobile telephone model.
//!
//! The paper's introduction positions leader election as "a key primitive
//! that supports the development of more sophisticated distributed systems
//! by simplifying tasks such as event ordering, agreement, and
//! synchronization." This crate demonstrates exactly those three, each
//! implemented *within the model* — every protocol respects the
//! one-connection-per-round limit and the O(1)-UIDs-per-connection payload
//! budget:
//!
//! * [`consensus::LeaderConsensus`] — binary consensus: piggyback each
//!   node's input on the blind-gossip leader race; the winner's input is
//!   the decision. Agreement, validity, and termination hold whenever
//!   leader election stabilizes.
//! * [`aggregation`] — gossip aggregation: exact min/max, and network-size
//!   estimation by extrema propagation (exchange `k` pointwise-minima of
//!   exponential draws; `n̂ = (k-1)/Σ minima`) — all with constant-size
//!   payloads.
//! * [`ordering::EventOrdering`] — leader-based total-order event
//!   assignment: an elected sequencer assigns consecutive sequence numbers
//!   as it meets unassigned events, and assignments gossip one per
//!   connection; every node converges to the same total order.
//! * [`gossip::AllToAllGossip`] — the all-to-all gossip problem the
//!   paper's conclusion lists as future work: n rumors, every node must
//!   learn all of them, one rumor per connection direction.

pub mod aggregation;
pub mod consensus;
pub mod gossip;
pub mod ordering;

pub use aggregation::{MinGossip, SizeEstimator};
pub use consensus::LeaderConsensus;
pub use gossip::AllToAllGossip;
pub use ordering::EventOrdering;
