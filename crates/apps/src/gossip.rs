//! All-to-all gossip: every node starts with one rumor; every node must
//! learn every rumor (the "gossip problem" the paper's conclusion lists as
//! future work for the model).
//!
//! The payload constraint (O(1) UIDs per connection) means a connection
//! can carry only one rumor each way, so completion requires Ω(n) rounds
//! even on a clique — unlike the classical model where a node could batch.
//! Strategy: blind-gossip round structure; each connection direction
//! carries the sender's *rotating* pick from the rumors it holds, biased
//! toward rumors it acquired most recently (newest-first is a standard
//! heuristic that beats uniform re-sending early on).

use mtm_engine::{Action, PayloadCost, Protocol, Scan, Tag};
use rand::rngs::SmallRng;
use rand::Rng;

/// One rumor id per connection direction.
#[derive(Clone, Copy, Debug)]
pub struct RumorId(pub u64);

impl PayloadCost for RumorId {
    fn uid_count(&self) -> u32 {
        1
    }
    fn extra_bits(&self) -> u32 {
        0
    }
}

/// Per-node state of the all-to-all gossip protocol.
#[derive(Clone, Debug)]
pub struct AllToAllGossip {
    /// Rumors held, in acquisition order (own rumor first).
    known: Vec<u64>,
    /// Rotating cursor over `known`, newest-first.
    cursor: usize,
}

impl AllToAllGossip {
    /// A node whose own rumor is `rumor`.
    pub fn new(rumor: u64) -> AllToAllGossip {
        AllToAllGossip { known: vec![rumor], cursor: 0 }
    }

    /// One node per rumor id.
    pub fn spawn(rumors: &[u64]) -> Vec<AllToAllGossip> {
        rumors.iter().map(|&r| AllToAllGossip::new(r)).collect()
    }

    /// Number of distinct rumors this node holds.
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    /// True iff this node holds `rumor`.
    pub fn knows(&self, rumor: u64) -> bool {
        self.known.contains(&rumor)
    }
}

impl Protocol for AllToAllGossip {
    type Payload = RumorId;

    fn advertise(&mut self, _local_round: u64, _rng: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        if scan.is_empty() || !rng.gen_bool(0.5) {
            return Action::Listen;
        }
        let i = rng.gen_range(0..scan.len());
        Action::Propose(scan.neighbors[i])
    }

    fn payload(&self) -> RumorId {
        // Newest-first rotation: cursor counts back from the end.
        let idx = self.known.len() - 1 - (self.cursor % self.known.len());
        RumorId(self.known[idx])
    }

    fn on_connect(&mut self, peer: &RumorId, _rng: &mut SmallRng) {
        if !self.known.contains(&peer.0) {
            self.known.push(peer.0);
        }
    }

    fn end_round(&mut self, _local_round: u64, _rng: &mut SmallRng) {
        self.cursor = self.cursor.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_engine::{ActivationSchedule, Engine, ModelParams};
    use mtm_graph::{gen, StaticTopology};

    fn run_gossip(g: mtm_graph::Graph, seed: u64, max: u64) -> Option<u64> {
        let n = g.node_count();
        let rumors: Vec<u64> = (0..n as u64).map(|i| i + 1000).collect();
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            AllToAllGossip::spawn(&rumors),
            seed,
        );
        e.run_until(max, |e| e.nodes().iter().all(|p| p.known_count() == n))
    }

    #[test]
    fn completes_on_clique() {
        assert!(run_gossip(gen::clique(16), 1, 1_000_000).is_some());
    }

    #[test]
    fn completes_on_expander() {
        assert!(run_gossip(gen::random_regular(16, 4, 2), 3, 1_000_000).is_some());
    }

    #[test]
    fn completes_on_line_of_stars() {
        assert!(run_gossip(gen::line_of_stars(3, 3), 4, 5_000_000).is_some());
    }

    #[test]
    fn needs_at_least_n_ish_rounds_even_on_clique() {
        // Each node can receive at most one rumor per round, so learning
        // n-1 foreign rumors takes ≥ n-1 rounds.
        let n = 24;
        let done = run_gossip(gen::clique(n), 5, 1_000_000)
            .expect("gossip must complete on a clique within the round budget");
        assert!(done >= (n - 1) as u64, "finished impossibly fast: {done}");
    }

    #[test]
    fn rumor_sets_grow_monotonically_and_no_phantoms() {
        let n = 10;
        let rumors: Vec<u64> = (0..n as u64).map(|i| i * 3 + 7).collect();
        let mut e = Engine::new(
            StaticTopology::new(gen::cycle(n)),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            AllToAllGossip::spawn(&rumors),
            6,
        );
        let mut last: Vec<usize> = e.nodes().iter().map(|p| p.known_count()).collect();
        for _ in 0..500 {
            e.step();
            for (u, p) in e.nodes().iter().enumerate() {
                let now = p.known_count();
                assert!(now >= last[u]);
                assert!(now <= n, "phantom rumor appeared");
                last[u] = now;
            }
        }
        // Every rumor a node holds is a real one.
        for p in e.nodes() {
            for &r in rumors.iter() {
                let _ = p.knows(r); // no panic; membership well-defined
            }
        }
    }

    #[test]
    fn payload_rotates_through_known_rumors() {
        let mut node = AllToAllGossip::new(1);
        let mut rng = mtm_graph::rng::stream_rng(0, 0);
        node.on_connect(&RumorId(2), &mut rng);
        node.on_connect(&RumorId(3), &mut rng);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 {
            seen.insert(node.payload().0);
            node.end_round(1, &mut rng);
        }
        assert_eq!(seen.len(), 3, "rotation must cycle all rumors: {seen:?}");
    }
}
