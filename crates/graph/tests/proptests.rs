//! Property-based tests for the graph substrate.
//!
//! The headline property is the paper's Lemma V.1: for every graph,
//! `γ = min_S ν(B(S))/|S| ≥ α/4`. We check it on arbitrary random connected
//! graphs, along with structural invariants of the CSR representation,
//! generators, and dynamic adversaries.
//!
//! Cases are generated deterministically by `mtm-testkit` (the offline
//! replacement for proptest): each test runs a fixed number of seeded
//! cases and reports the failing case seed on panic.

use mtm_graph::dynamic::{DynamicTopology, EdgeSwapAdversary, RelabelingAdversary};
use mtm_graph::expansion::{alpha_exact, alpha_of_set, boundary_size};
use mtm_graph::matching::{brute_force_matching, cut_matching, gamma_exact, hopcroft_karp};
use mtm_graph::static_graph::from_edges;
use mtm_graph::{gen, Graph, GraphBuilder};
use mtm_testkit::{run_cases, Rng, SmallRng};

/// An arbitrary connected graph on 2..=n_max nodes, built by a random
/// spanning tree plus random extra edges.
fn connected_graph(rng: &mut SmallRng, n_max: usize) -> Graph {
    let n = rng.gen_range(2..=n_max);
    let mut b = GraphBuilder::new(n);
    for child in 1..n as u32 {
        b.add_edge(child, rng.gen_range(0..child));
    }
    for _ in 0..rng.gen_range(0..n * 2) {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[test]
fn csr_symmetry_and_sorted() {
    run_cases(0x6701, 64, |_case, rng| {
        let g = connected_graph(rng, 40);
        for u in 0..g.node_count() as u32 {
            let nbrs = g.neighbors(u);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted or duplicate neighbors");
            for &v in nbrs {
                assert!(v != u, "self loop");
                assert!(g.has_edge(v, u), "asymmetric edge");
            }
        }
        assert_eq!(g.degree_sum(), 2 * g.edge_count());
    });
}

#[test]
fn connected_strategy_is_connected() {
    run_cases(0x6702, 64, |_case, rng| {
        let g = connected_graph(rng, 40);
        assert!(g.is_connected());
    });
}

#[test]
fn lemma_v1_gamma_ge_alpha_over_4() {
    run_cases(0x6703, 64, |_case, rng| {
        let g = connected_graph(rng, 12);
        let gamma = gamma_exact(&g);
        let alpha = alpha_exact(&g);
        assert!(gamma >= alpha / 4.0 - 1e-9, "γ = {gamma} < α/4 = {}", alpha / 4.0);
    });
}

#[test]
fn alpha_exact_bounded_and_positive() {
    run_cases(0x6704, 64, |_case, rng| {
        // Note: the paper's "α ≤ 1" claim presumes a balanced cut
        // |S| = n/2 exists; for odd n the best balanced cut has
        // |S| = ⌊n/2⌋, so the tight upper bound is ⌈n/2⌉/⌊n/2⌋
        // (e.g. α(K_3) = 2).
        let g = connected_graph(rng, 14);
        let n = g.node_count();
        let cap = (n - n / 2) as f64 / (n / 2) as f64;
        let a = alpha_exact(&g);
        assert!(a > 0.0 && a <= cap + 1e-12, "α = {a} > cap {cap}");
    });
}

#[test]
fn matching_le_boundary_any_cut() {
    run_cases(0x6705, 64, |_case, rng| {
        let g = connected_graph(rng, 14);
        let mask_bits = rng.gen::<u64>();
        let n = g.node_count();
        let mut in_s: Vec<bool> = (0..n).map(|u| mask_bits & (1 << u) != 0).collect();
        if in_s.iter().all(|&b| !b) {
            in_s[0] = true;
        }
        if in_s.iter().all(|&b| b) {
            in_s[n - 1] = false;
        }
        let m = cut_matching(&g, &in_s);
        let b = boundary_size(&g, &in_s);
        assert!(m <= b, "ν(B(S)) = {m} > |∂S| = {b}");
        // A connected graph with a proper nonempty cut always crosses it.
        assert!(m >= 1, "connected graph must have ≥1 crossing edge");
        let a = alpha_of_set(&g, &in_s);
        assert!(a > 0.0);
    });
}

#[test]
fn hopcroft_karp_matches_brute_force() {
    run_cases(0x6706, 64, |_case, rng| {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); 6];
        for _ in 0..rng.gen_range(0..18) {
            let l = rng.gen_range(0..6u32);
            let r = rng.gen_range(0..6u32);
            if !adj[l as usize].contains(&r) {
                adj[l as usize].push(r);
            }
        }
        assert_eq!(hopcroft_karp(&adj, 6), brute_force_matching(&adj, 6));
    });
}

#[test]
fn relabeling_adversary_iso_invariants() {
    run_cases(0x6707, 32, |_case, rng| {
        let seed = rng.gen::<u64>();
        let tau = rng.gen_range(1..5u64);
        let base = gen::line_of_stars(3, 3);
        let expect_deg = base.degree_sequence();
        let expect_edges = base.edge_count();
        let mut adv = RelabelingAdversary::new(base, tau, seed);
        let mut last: Option<Graph> = None;
        for round in 1..=3 * tau {
            let g = adv.graph_at(round).clone();
            assert_eq!(g.degree_sequence(), expect_deg);
            assert_eq!(g.edge_count(), expect_edges);
            assert!(g.is_connected());
            // Stability: within an epoch the graph must not change.
            if (round - 1) % tau != 0 {
                assert_eq!(
                    last.as_ref().expect("previous round recorded"),
                    &g,
                    "changed inside τ window"
                );
            }
            last = Some(g);
        }
    });
}

#[test]
fn edge_swap_adversary_preserves_degrees() {
    run_cases(0x6708, 32, |_case, rng| {
        let seed = rng.gen::<u64>();
        let base = gen::random_regular(16, 4, seed % 100);
        let expect = base.degree_sequence();
        let mut adv = EdgeSwapAdversary::new(base, 1, 6, seed);
        for round in 1..=6 {
            let g = adv.graph_at(round);
            assert_eq!(g.degree_sequence(), expect);
            assert!(g.is_connected());
        }
    });
}

#[test]
fn bfs_distances_are_metric_like() {
    run_cases(0x6709, 64, |_case, rng| {
        let g = connected_graph(rng, 24);
        let d0 = g.bfs_distances(0);
        for u in 0..g.node_count() as u32 {
            assert!(d0[u as usize] != u32::MAX, "unreachable in connected graph");
            for &v in g.neighbors(u) {
                let du = d0[u as usize] as i64;
                let dv = d0[v as usize] as i64;
                assert!((du - dv).abs() <= 1, "BFS distance jump across an edge");
            }
        }
    });
}

#[test]
fn from_edges_respects_input() {
    run_cases(0x670A, 64, |_case, rng| {
        let n = 12u32;
        let count = rng.gen_range(1..30);
        let edges: Vec<(u32, u32)> = (0..count)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .filter(|(a, b)| a != b)
            .collect();
        if edges.is_empty() {
            return;
        }
        let g = from_edges(n as usize, &edges);
        for &(u, v) in &edges {
            assert!(g.has_edge(u, v));
        }
    });
}
