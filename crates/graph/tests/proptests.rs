//! Property-based tests for the graph substrate.
//!
//! The headline property is the paper's Lemma V.1: for every graph,
//! `γ = min_S ν(B(S))/|S| ≥ α/4`. We check it on arbitrary random connected
//! graphs, along with structural invariants of the CSR representation,
//! generators, and dynamic adversaries.

use mtm_graph::dynamic::{DynamicTopology, EdgeSwapAdversary, RelabelingAdversary};
use mtm_graph::expansion::{alpha_exact, alpha_of_set, boundary_size};
use mtm_graph::matching::{brute_force_matching, cut_matching, gamma_exact, hopcroft_karp};
use mtm_graph::static_graph::from_edges;
use mtm_graph::{gen, Graph, GraphBuilder};
use proptest::prelude::*;

/// Strategy: an arbitrary connected graph on 2..=n_max nodes, built by a
/// random spanning tree plus random extra edges.
fn connected_graph(n_max: usize) -> impl Strategy<Value = Graph> {
    (2..=n_max).prop_flat_map(move |n| {
        let tree_parents = proptest::collection::vec(0u32..u32::MAX, n - 1);
        let extra = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2);
        (tree_parents, extra).prop_map(move |(parents, extra)| {
            let mut b = GraphBuilder::new(n);
            for (i, p) in parents.iter().enumerate() {
                let child = (i + 1) as u32;
                b.add_edge(child, p % child);
            }
            for (u, v) in extra {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_symmetry_and_sorted(g in connected_graph(40)) {
        for u in 0..g.node_count() as u32 {
            let nbrs = g.neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted or duplicate neighbors");
            for &v in nbrs {
                prop_assert!(v != u, "self loop");
                prop_assert!(g.has_edge(v, u), "asymmetric edge");
            }
        }
        prop_assert_eq!(g.degree_sum(), 2 * g.edge_count());
    }

    #[test]
    fn connected_strategy_is_connected(g in connected_graph(40)) {
        prop_assert!(g.is_connected());
    }

    #[test]
    fn lemma_v1_gamma_ge_alpha_over_4(g in connected_graph(12)) {
        let gamma = gamma_exact(&g);
        let alpha = alpha_exact(&g);
        prop_assert!(gamma >= alpha / 4.0 - 1e-9,
            "γ = {} < α/4 = {}", gamma, alpha / 4.0);
    }

    #[test]
    fn alpha_exact_bounded_and_positive(g in connected_graph(14)) {
        // Note: the paper's "α ≤ 1" claim presumes a balanced cut
        // |S| = n/2 exists; for odd n the best balanced cut has
        // |S| = ⌊n/2⌋, so the tight upper bound is ⌈n/2⌉/⌊n/2⌋
        // (e.g. α(K_3) = 2).
        let n = g.node_count();
        let cap = (n - n / 2) as f64 / (n / 2) as f64;
        let a = alpha_exact(&g);
        prop_assert!(a > 0.0 && a <= cap + 1e-12, "α = {} > cap {}", a, cap);
    }

    #[test]
    fn matching_le_boundary_any_cut(
        g in connected_graph(14),
        mask_bits in any::<u64>(),
    ) {
        let n = g.node_count();
        let mut in_s: Vec<bool> = (0..n).map(|u| mask_bits & (1 << u) != 0).collect();
        if in_s.iter().all(|&b| !b) {
            in_s[0] = true;
        }
        if in_s.iter().all(|&b| b) {
            in_s[n - 1] = false;
        }
        let m = cut_matching(&g, &in_s);
        let b = boundary_size(&g, &in_s);
        prop_assert!(m <= b, "ν(B(S)) = {} > |∂S| = {}", m, b);
        // A connected graph with a proper nonempty cut always crosses it.
        prop_assert!(m >= 1, "connected graph must have ≥1 crossing edge");
        let a = alpha_of_set(&g, &in_s);
        prop_assert!(a > 0.0);
    }

    #[test]
    fn hopcroft_karp_matches_brute_force(
        edges in proptest::collection::vec((0u32..6, 0u32..6), 0..18)
    ) {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); 6];
        for (l, r) in edges {
            if !adj[l as usize].contains(&r) {
                adj[l as usize].push(r);
            }
        }
        prop_assert_eq!(hopcroft_karp(&adj, 6), brute_force_matching(&adj, 6));
    }

    #[test]
    fn relabeling_adversary_iso_invariants(
        seed in any::<u64>(),
        tau in 1u64..5,
    ) {
        let base = gen::line_of_stars(3, 3);
        let expect_deg = base.degree_sequence();
        let expect_edges = base.edge_count();
        let mut adv = RelabelingAdversary::new(base, tau, seed);
        let mut last: Option<Graph> = None;
        for round in 1..=3 * tau {
            let g = adv.graph_at(round).clone();
            prop_assert_eq!(g.degree_sequence(), expect_deg.clone());
            prop_assert_eq!(g.edge_count(), expect_edges);
            prop_assert!(g.is_connected());
            // Stability: within an epoch the graph must not change.
            if (round - 1) % tau != 0 {
                prop_assert_eq!(last.as_ref().unwrap(), &g, "changed inside τ window");
            }
            last = Some(g);
        }
    }

    #[test]
    fn edge_swap_adversary_preserves_degrees(
        seed in any::<u64>(),
    ) {
        let base = gen::random_regular(16, 4, seed % 100);
        let expect = base.degree_sequence();
        let mut adv = EdgeSwapAdversary::new(base, 1, 6, seed);
        for round in 1..=6 {
            let g = adv.graph_at(round);
            prop_assert_eq!(g.degree_sequence(), expect.clone());
            prop_assert!(g.is_connected());
        }
    }

    #[test]
    fn bfs_distances_are_metric_like(g in connected_graph(24)) {
        let d0 = g.bfs_distances(0);
        for u in 0..g.node_count() as u32 {
            prop_assert!(d0[u as usize] != u32::MAX, "unreachable in connected graph");
            for &v in g.neighbors(u) {
                let du = d0[u as usize] as i64;
                let dv = d0[v as usize] as i64;
                prop_assert!((du - dv).abs() <= 1, "BFS distance jump across an edge");
            }
        }
    }

    #[test]
    fn from_edges_respects_input(edge_bits in proptest::collection::vec(any::<(u8, u8)>(), 1..30)) {
        let n = 12;
        let edges: Vec<(u32, u32)> = edge_bits
            .into_iter()
            .map(|(a, b)| ((a % n) as u32, (b % n) as u32))
            .filter(|(a, b)| a != b)
            .collect();
        prop_assume!(!edges.is_empty());
        let g = from_edges(n as usize, &edges);
        for &(u, v) in &edges {
            prop_assert!(g.has_edge(u, v));
        }
    }
}
