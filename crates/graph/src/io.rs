//! Graph serialization: a plain edge-list text format and JSON.
//!
//! The text format is one `u v` pair per line, `#` comments and blank
//! lines ignored, with an optional leading `n <count>` line for isolated
//! trailing nodes. It round-trips any [`Graph`] and lets the CLI run
//! experiments on user-supplied topologies (e.g. real contact traces).

use crate::static_graph::{Graph, GraphBuilder, NodeId};

/// Errors from parsing the edge-list format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line didn't contain two integers (or a valid `n` header).
    BadLine { line_no: usize, content: String },
    /// An endpoint exceeded the declared node count.
    OutOfRange { line_no: usize, node: u64 },
    /// A self loop was declared.
    SelfLoop { line_no: usize, node: NodeId },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine { line_no, content } => {
                write!(f, "line {line_no}: cannot parse {content:?} as `u v`")
            }
            ParseError::OutOfRange { line_no, node } => {
                write!(f, "line {line_no}: node {node} out of declared range")
            }
            ParseError::SelfLoop { line_no, node } => {
                write!(f, "line {line_no}: self loop at node {node}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a graph to the edge-list text format.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(g.edge_count() * 8 + 32);
    out.push_str(&format!("n {}\n", g.node_count()));
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Parse the edge-list text format.
pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_node: u64 = 0;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().expect("line is nonempty after the trim/skip above");
        if first == "n" {
            let n = parts
                .next()
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| ParseError::BadLine { line_no, content: raw.to_string() })?;
            declared_n = Some(n);
            continue;
        }
        let u: u64 =
            first.parse().map_err(|_| ParseError::BadLine { line_no, content: raw.to_string() })?;
        let v: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseError::BadLine { line_no, content: raw.to_string() })?;
        if parts.next().is_some() {
            return Err(ParseError::BadLine { line_no, content: raw.to_string() });
        }
        // Reject ids that do not fit a NodeId before converting — the old
        // `as` cast would have wrapped huge ids silently.
        let to_node =
            |x: u64| NodeId::try_from(x).map_err(|_| ParseError::OutOfRange { line_no, node: x });
        if u == v {
            return Err(ParseError::SelfLoop { line_no, node: to_node(u)? });
        }
        if let Some(n) = declared_n {
            if u >= n as u64 || v >= n as u64 {
                return Err(ParseError::OutOfRange { line_no, node: u.max(v) });
            }
        }
        max_node = max_node.max(u).max(v);
        edges.push((to_node(u)?, to_node(v)?));
    }
    let n = declared_n.unwrap_or(if edges.is_empty() { 0 } else { max_node as usize + 1 });
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Serialize a graph to JSON: `{"offsets":[…],"adjacency":[…]}` (the CSR
/// representation). Hand-rolled — the offline build has no serialization
/// framework available, and the format is two integer arrays.
pub fn to_json(g: &Graph) -> String {
    let (offsets, adjacency) = g.csr_parts();
    let mut out = String::with_capacity(16 + 8 * (offsets.len() + adjacency.len()));
    out.push_str("{\"offsets\":");
    push_u32_array(&mut out, offsets);
    out.push_str(",\"adjacency\":");
    push_u32_array(&mut out, adjacency);
    out.push('}');
    out
}

fn push_u32_array(out: &mut String, xs: &[u32]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
}

/// Parse a graph from its JSON representation, validating the CSR
/// invariants (the JSON may come from untrusted input).
pub fn from_json(text: &str) -> Result<Graph, String> {
    let mut p = JsonCursor { bytes: text.as_bytes(), pos: 0 };
    p.expect(b'{')?;
    let mut offsets: Option<Vec<u32>> = None;
    let mut adjacency: Option<Vec<u32>> = None;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        let arr = p.u32_array()?;
        match key.as_str() {
            "offsets" => offsets = Some(arr),
            "adjacency" => adjacency = Some(arr),
            other => return Err(format!("unknown key {other:?} in graph JSON")),
        }
        if !p.consume(b',') {
            break;
        }
    }
    p.expect(b'}')?;
    p.end()?;
    let offsets = offsets.ok_or("graph JSON missing \"offsets\"")?;
    let adjacency = adjacency.ok_or("graph JSON missing \"adjacency\"")?;
    if offsets.is_empty() {
        return Err("offset array must have n + 1 entries".to_string());
    }
    let g = Graph::from_csr_parts_unchecked(offsets, adjacency);
    g.validate()?;
    Ok(g)
}

/// Minimal cursor over the fixed JSON shape `{"key":[u32,…],…}`.
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonCursor<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, want: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.consume(want) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", want as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            // Keys in this format never contain escapes.
            if b == b'\\' {
                return Err(format!("unsupported escape at byte {}", self.pos));
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn u32_array(&mut self) -> Result<Vec<u32>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.consume(b']') {
            return Ok(out);
        }
        loop {
            out.push(self.u32_value()?);
            if self.consume(b']') {
                return Ok(out);
            }
            self.expect(b',')?;
        }
    }

    fn u32_value(&mut self) -> Result<u32, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse::<u32>()
            .map_err(|e| format!("integer at byte {start}: {e}"))
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing data at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_round_trip() {
        for g in [gen::clique(6), gen::path(5), gen::line_of_stars(3, 3), gen::star(8)] {
            let text = to_edge_list(&g);
            let back = from_edge_list(&text).expect("exported edge list parses back");
            assert_eq!(g, back);
        }
    }

    #[test]
    fn edge_list_with_comments_and_blanks() {
        let text = "# a triangle\nn 3\n\n0 1\n1 2\n# done\n2 0\n";
        let g = from_edge_list(text).expect("edge list with comments parses");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn edge_list_without_header_infers_n() {
        let g = from_edge_list("0 1\n1 4\n").expect("sparse ids parse");
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(2), 0); // isolated intermediate node
    }

    #[test]
    fn edge_list_errors() {
        assert!(matches!(from_edge_list("0 zebra"), Err(ParseError::BadLine { line_no: 1, .. })));
        assert!(matches!(
            from_edge_list("n 2\n0 5"),
            Err(ParseError::OutOfRange { line_no: 2, node: 5 })
        ));
        assert!(matches!(from_edge_list("3 3"), Err(ParseError::SelfLoop { line_no: 1, node: 3 })));
        assert!(matches!(from_edge_list("0 1 2"), Err(ParseError::BadLine { .. })));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = from_edge_list("").expect("an empty edge list is a valid empty graph");
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn json_round_trip() {
        let g = gen::hypercube(3);
        let back = from_json(&to_json(&g)).expect("JSON export parses back");
        assert_eq!(g, back);
    }

    #[test]
    fn parse_error_display() {
        let e = from_edge_list("oops").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
