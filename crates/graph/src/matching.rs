//! Maximum bipartite matchings across cuts.
//!
//! Section V of the paper connects vertex expansion to concurrent
//! information flow: for a cut `(S, V\S)`, the bipartite graph `B(S)`
//! contains exactly the edges crossing the cut, and its maximum matching
//! size `ν(B(S))` is the maximum number of concurrent connections the mobile
//! telephone model supports across the cut (each node joins ≤ 1 connection
//! per round). Lemma V.1 states `γ = min_{|S| ≤ n/2} ν(B(S))/|S| ≥ α/4`.
//!
//! We implement Hopcroft–Karp (`O(E·√V)`) for cut matchings, a brute-force
//! reference for tests, and the exhaustive `γ` computation used to validate
//! Lemma V.1 empirically (experiment T5).

use crate::nid;
use crate::static_graph::Graph;

/// Maximum matching size on an explicit bipartite graph given as adjacency
/// lists from left vertices (`0..adj.len()`) to right vertices
/// (`0..right_count`). Hopcroft–Karp.
pub fn hopcroft_karp(adj: &[Vec<u32>], right_count: usize) -> usize {
    const NIL: u32 = u32::MAX;
    let nl = adj.len();
    let mut match_l = vec![NIL; nl];
    let mut match_r = vec![NIL; right_count];
    let mut dist = vec![0u32; nl];
    let mut queue = std::collections::VecDeque::with_capacity(nl);
    let mut result = 0usize;

    loop {
        // BFS layering from free left vertices.
        queue.clear();
        let mut found_augmenting_layer = false;
        for u in 0..nl {
            if match_l[u] == NIL {
                dist[u] = 0;
                queue.push_back(nid(u));
            } else {
                dist[u] = u32::MAX;
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u as usize] {
                let w = match_r[v as usize];
                if w == NIL {
                    found_augmenting_layer = true;
                } else if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }
        // DFS augmentation along layered paths.
        for u in 0..nid(nl) {
            if match_l[u as usize] == NIL && dfs(u, adj, &mut match_l, &mut match_r, &mut dist) {
                result += 1;
            }
        }
    }
    result
}

fn dfs(
    u: u32,
    adj: &[Vec<u32>],
    match_l: &mut [u32],
    match_r: &mut [u32],
    dist: &mut [u32],
) -> bool {
    const NIL: u32 = u32::MAX;
    for i in 0..adj[u as usize].len() {
        let v = adj[u as usize][i];
        let w = match_r[v as usize];
        if w == NIL
            || (dist[w as usize] == dist[u as usize] + 1 && dfs(w, adj, match_l, match_r, dist))
        {
            match_l[u as usize] = v;
            match_r[v as usize] = u;
            return true;
        }
    }
    dist[u as usize] = u32::MAX;
    false
}

/// `ν(B(S))`: maximum matching size across the cut `(S, V\S)` of `g`.
///
/// `in_s[u]` marks membership of node `u` in `S`.
pub fn cut_matching(g: &Graph, in_s: &[bool]) -> usize {
    let n = g.node_count();
    debug_assert_eq!(in_s.len(), n);
    // Compact ids for each side.
    let mut right_id = vec![u32::MAX; n];
    let mut right_count = 0u32;
    for u in 0..n {
        if !in_s[u] {
            right_id[u] = right_count;
            right_count += 1;
        }
    }
    let mut adj: Vec<Vec<u32>> = Vec::new();
    for u in 0..nid(n) {
        if !in_s[u as usize] {
            continue;
        }
        let nbrs: Vec<u32> = g
            .neighbors(u)
            .iter()
            .filter(|&&v| !in_s[v as usize])
            .map(|&v| right_id[v as usize])
            .collect();
        adj.push(nbrs);
    }
    hopcroft_karp(&adj, right_count as usize)
}

/// Brute-force maximum matching over an explicit bipartite adjacency, by
/// recursion over left vertices. Exponential; reference for tests only.
pub fn brute_force_matching(adj: &[Vec<u32>], right_count: usize) -> usize {
    fn rec(i: usize, adj: &[Vec<u32>], used: &mut [bool]) -> usize {
        if i == adj.len() {
            return 0;
        }
        // Skip left vertex i.
        let mut best = rec(i + 1, adj, used);
        for &v in &adj[i] {
            if !used[v as usize] {
                used[v as usize] = true;
                best = best.max(1 + rec(i + 1, adj, used));
                used[v as usize] = false;
            }
        }
        best
    }
    let mut used = vec![false; right_count];
    rec(0, adj, &mut used)
}

/// Exhaustive `γ = min_{S ⊂ V, 0 < |S| ≤ n/2} ν(B(S))/|S|`.
///
/// Exponential in `n`; restricted to `n ≤ 18` (262k subsets, each with an
/// `O(E√V)` matching). Used to validate Lemma V.1 (`γ ≥ α/4`).
pub fn gamma_exact(g: &Graph) -> f64 {
    let n = g.node_count();
    assert!(n >= 2, "γ undefined for n < 2");
    assert!(n <= 18, "gamma_exact is exponential; n ≤ 18 required");
    let half = n / 2;
    let mut best = f64::INFINITY;
    let mut in_s = vec![false; n];
    let full: u32 = if n == 32 { !0 } else { (1u32 << n) - 1 };
    for s in 1u32..=full {
        let size = s.count_ones() as usize;
        if size > half {
            continue;
        }
        for (u, flag) in in_s.iter_mut().enumerate() {
            *flag = s & (1 << u) != 0;
        }
        let m = cut_matching(g, &in_s);
        let ratio = m as f64 / size as f64;
        if ratio < best {
            best = ratio;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::alpha_exact;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hk_simple_cases() {
        // Perfect matching on K_{3,3}.
        let adj = vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 2]];
        assert_eq!(hopcroft_karp(&adj, 3), 3);
        // A path L0-R0-L1: matching of size 1... actually L0-R0, L1-R0 → 1.
        let adj = vec![vec![0], vec![0]];
        assert_eq!(hopcroft_karp(&adj, 1), 1);
        // No edges.
        let adj: Vec<Vec<u32>> = vec![vec![], vec![]];
        assert_eq!(hopcroft_karp(&adj, 2), 0);
    }

    #[test]
    fn hk_matches_brute_force_random() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            let nl = rng.gen_range(0..7);
            let nr = rng.gen_range(0..7usize);
            let adj: Vec<Vec<u32>> =
                (0..nl).map(|_| (0..nid(nr)).filter(|_| rng.gen_bool(0.4)).collect()).collect();
            assert_eq!(
                hopcroft_karp(&adj, nr),
                brute_force_matching(&adj, nr),
                "mismatch on adj = {adj:?}"
            );
        }
    }

    #[test]
    fn cut_matching_star() {
        // Star hub 0: S = {0} → cut matching 1 (hub can match one leaf).
        let g = gen::star(6);
        let mut in_s = vec![false; 6];
        in_s[0] = true;
        assert_eq!(cut_matching(&g, &in_s), 1);
        // S = 2 leaves → both can only match the hub → 1.
        let in_s = [false, true, true, false, false, false];
        assert_eq!(cut_matching(&g, &in_s), 1);
    }

    #[test]
    fn cut_matching_clique_balanced() {
        let g = gen::clique(8);
        let in_s: Vec<bool> = (0..8).map(|u| u < 4).collect();
        assert_eq!(cut_matching(&g, &in_s), 4);
    }

    #[test]
    fn cut_matching_path_is_one() {
        // Prefix cut of a path crosses exactly one edge.
        let g = gen::path(9);
        let in_s: Vec<bool> = (0..9).map(|u| u < 4).collect();
        assert_eq!(cut_matching(&g, &in_s), 1);
    }

    #[test]
    fn lemma_v1_gamma_at_least_alpha_over_4_small_families() {
        for (name, g) in [
            ("clique", gen::clique(8)),
            ("path", gen::path(10)),
            ("cycle", gen::cycle(10)),
            ("star", gen::star(9)),
            ("hypercube", gen::hypercube(3)),
            ("bipartite", gen::complete_bipartite(4, 5)),
            ("tree", gen::dary_tree(11, 2)),
        ] {
            let gamma = gamma_exact(&g);
            let alpha = alpha_exact(&g);
            assert!(gamma >= alpha / 4.0 - 1e-9, "{name}: γ = {gamma} < α/4 = {}", alpha / 4.0);
        }
    }

    #[test]
    fn lemma_v1_on_random_graphs() {
        for seed in 0..10 {
            let g = gen::erdos_renyi_connected(12, 0.3, seed);
            let gamma = gamma_exact(&g);
            let alpha = alpha_exact(&g);
            assert!(
                gamma >= alpha / 4.0 - 1e-9,
                "seed {seed}: γ = {gamma} < α/4 = {}",
                alpha / 4.0
            );
        }
    }

    #[test]
    fn gamma_le_alpha_relationship() {
        // ν(B(S)) ≤ |∂S| always, hence γ ≤ α... not in general (min over
        // different S). But for each fixed S, matching ≤ boundary. Check that.
        let g = gen::erdos_renyi_connected(10, 0.4, 3);
        let mut in_s = vec![false; 10];
        for s in 1u32..(1 << 10) {
            if s.count_ones() as usize > 5 {
                continue;
            }
            for (u, flag) in in_s.iter_mut().enumerate() {
                *flag = s & (1 << u) != 0;
            }
            let m = cut_matching(&g, &in_s);
            let b = crate::expansion::boundary_size(&g, &in_s);
            assert!(m <= b, "matching {m} exceeds boundary {b}");
        }
    }
}
