//! Dynamic graphs with a stability factor `τ`.
//!
//! Section III of the paper: a dynamic graph is a sequence `G_1, G_2, …` over
//! a fixed node set, and for stability factor `τ` at least `τ` rounds must
//! pass between topology changes (`τ = 1` permits changes every round;
//! `τ = ∞` means the graph never changes). Algorithms receive no advance
//! knowledge of `τ`.
//!
//! Implementations here are *adversaries/environments* used by experiments:
//!
//! * [`StaticTopology`] — `τ = ∞`.
//! * [`RelabelingAdversary`] — every `τ` rounds applies a fresh uniformly
//!   random node permutation to a base graph. Preserves `Δ` and `α`
//!   *exactly* (the graph stays isomorphic) while scrambling who neighbors
//!   whom — the harshest structure-preserving adversary, used for `τ`
//!   sweeps.
//! * [`EdgeSwapAdversary`] — every `τ` rounds applies degree-preserving
//!   double edge swaps (keeps the degree sequence, approximately preserves
//!   expansion, guarantees connectivity by rejection).
//! * [`LineOfStarsShuffle`] — the §VI lower-bound graph with leaves
//!   re-dealt among spine stars at every change (isomorphic each time).
//! * [`WaypointMobility`] — smartphone-like proximity graphs: nodes move on
//!   the unit torus (random waypoint model) and connect within a radius;
//!   connectivity is patched by bridging nearest components (documented
//!   substitution: real deployments can disconnect, the model requires
//!   connectivity).
//! * [`JoinSchedule`] — two halves run disconnected until a join round, then
//!   bridge edges appear (self-stabilization experiment F4). Note the
//!   disconnected prefix intentionally violates the connectivity assumption;
//!   convergence is only claimed after the join.

use crate::nid;
use crate::static_graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A sequence of topology graphs, queried once per round in order.
///
/// `graph_at(round)` may be called with any non-decreasing round sequence
/// starting at 1. Implementations must return graphs over a fixed node set
/// and must keep the topology constant for at least `tau()` consecutive
/// rounds between changes.
pub trait DynamicTopology {
    /// Number of nodes (constant across rounds).
    fn node_count(&self) -> usize;

    /// Stability factor; `None` means `τ = ∞` (never changes).
    fn tau(&self) -> Option<u64>;

    /// The topology for round `round` (1-based).
    fn graph_at(&mut self, round: u64) -> &Graph;

    /// True iff the graph at `round` may differ from the graph at
    /// `round - 1`. Round 1 (the initial graph) always counts as a change.
    ///
    /// Consumed by the engine's stuck-run detector: a frozen protocol
    /// state only evidences a fixed point over rounds where the topology
    /// also held still. The default derives a conservative answer from
    /// [`tau`](DynamicTopology::tau) — epoch boundaries `1, τ+1, 2τ+1, …`
    /// may change, `τ = ∞` never changes after round 1. Implementations
    /// with sparser schedules (e.g. a single join round) should override
    /// for earlier detection; implementations that change off the epoch
    /// grid must override for correctness.
    fn may_change_at(&self, round: u64) -> bool {
        match self.tau() {
            None => round <= 1,
            Some(tau) => round <= 1 || (round - 1).is_multiple_of(tau),
        }
    }

    /// True iff node `u` is up (radio on) at `round`. Plain topologies have
    /// no notion of node failure and report every node up; fault wrappers
    /// ([`crate::FaultyTopology`], [`crate::ScheduledCrashes`]) override.
    ///
    /// Consumed by the engine's service mode to distinguish a claimant that
    /// can actually serve from a crashed node that merely still believes it
    /// leads. Callers must have built the graph for `round` (via
    /// [`graph_at`](DynamicTopology::graph_at)) before asking, so stateful
    /// fault chains are already advanced through `round`.
    fn is_node_up(&self, _u: NodeId, _round: u64) -> bool {
        true
    }
}

/// `τ = ∞`: one fixed graph forever.
pub struct StaticTopology {
    graph: Graph,
}

impl StaticTopology {
    pub fn new(graph: Graph) -> Self {
        StaticTopology { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

impl DynamicTopology for StaticTopology {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }
    fn tau(&self) -> Option<u64> {
        None
    }
    fn graph_at(&mut self, _round: u64) -> &Graph {
        &self.graph
    }
}

/// Shared epoch logic: change the graph when `(round - 1) / τ` advances.
struct EpochClock {
    tau: u64,
    current_epoch: Option<u64>,
}

impl EpochClock {
    fn new(tau: u64) -> Self {
        assert!(tau >= 1, "τ must be ≥ 1");
        EpochClock { tau, current_epoch: None }
    }

    /// Returns `Some(epoch)` when `round` enters a new epoch, else `None`.
    fn tick(&mut self, round: u64) -> Option<u64> {
        assert!(round >= 1, "rounds are 1-based");
        let epoch = (round - 1) / self.tau;
        if self.current_epoch != Some(epoch) {
            self.current_epoch = Some(epoch);
            Some(epoch)
        } else {
            None
        }
    }
}

/// Applies a fresh uniformly random node relabeling to `base` every `τ`
/// rounds. The round-`r` graph is always isomorphic to `base`, so `Δ` and
/// `α` are preserved exactly.
pub struct RelabelingAdversary {
    base: Graph,
    clock: EpochClock,
    seed: u64,
    current: Graph,
}

impl RelabelingAdversary {
    pub fn new(base: Graph, tau: u64, seed: u64) -> Self {
        let current = base.clone();
        RelabelingAdversary { base, clock: EpochClock::new(tau), seed, current }
    }

    fn relabel(&self, epoch: u64) -> Graph {
        let n = self.base.node_count();
        // per-epoch stream derived from the topology seed. mtm-lint: allow(smallrng-outside-engine)
        let mut rng = SmallRng::seed_from_u64(crate::rng::derive_seed(self.seed, epoch));
        let mut perm: Vec<NodeId> = (0..nid(n)).collect();
        perm.shuffle(&mut rng);
        let mut b = GraphBuilder::with_capacity(n, self.base.edge_count());
        for (u, v) in self.base.edges() {
            b.add_edge(perm[u as usize], perm[v as usize]);
        }
        b.build()
    }
}

impl DynamicTopology for RelabelingAdversary {
    fn node_count(&self) -> usize {
        self.base.node_count()
    }
    fn tau(&self) -> Option<u64> {
        Some(self.clock.tau)
    }
    fn graph_at(&mut self, round: u64) -> &Graph {
        if let Some(epoch) = self.clock.tick(round) {
            self.current = self.relabel(epoch);
        }
        &self.current
    }
}

/// Degree-preserving churn: every `τ` rounds, attempt `swaps` random double
/// edge swaps (`{a,b},{c,d} → {a,d},{c,b}`), rejecting any batch that
/// disconnects the graph (bounded retries, falling back to the previous
/// graph). The degree sequence is invariant.
pub struct EdgeSwapAdversary {
    clock: EpochClock,
    swaps: usize,
    seed: u64,
    current: Graph,
}

impl EdgeSwapAdversary {
    pub fn new(base: Graph, tau: u64, swaps: usize, seed: u64) -> Self {
        assert!(base.is_connected(), "EdgeSwapAdversary requires a connected base");
        EdgeSwapAdversary { clock: EpochClock::new(tau), swaps, seed, current: base }
    }

    fn swapped(&self, epoch: u64) -> Graph {
        // per-epoch stream derived from the topology seed. mtm-lint: allow(smallrng-outside-engine)
        let mut rng = SmallRng::seed_from_u64(crate::rng::derive_seed(self.seed, epoch));
        for _attempt in 0..8 {
            let mut edges: Vec<(NodeId, NodeId)> = self.current.edges().collect();
            let mut edge_set: std::collections::BTreeSet<(NodeId, NodeId)> =
                edges.iter().copied().collect();
            let mut done = 0usize;
            let mut tries = 0usize;
            while done < self.swaps && tries < self.swaps * 20 {
                tries += 1;
                if edges.len() < 2 {
                    break;
                }
                let i = rng.gen_range(0..edges.len());
                let j = rng.gen_range(0..edges.len());
                if i == j {
                    continue;
                }
                let (a, b) = edges[i];
                let (c, d) = edges[j];
                // Orientation choice: swap to (a,d),(c,b) or (a,c),(b,d).
                let (x1, y1, x2, y2) = if rng.gen_bool(0.5) { (a, d, c, b) } else { (a, c, b, d) };
                if x1 == y1 || x2 == y2 {
                    continue;
                }
                let e1 = if x1 < y1 { (x1, y1) } else { (y1, x1) };
                let e2 = if x2 < y2 { (x2, y2) } else { (y2, x2) };
                if edge_set.contains(&e1) || edge_set.contains(&e2) || e1 == e2 {
                    continue;
                }
                edge_set.remove(&edges[i]);
                edge_set.remove(&edges[j]);
                edge_set.insert(e1);
                edge_set.insert(e2);
                // Replace the higher index first so the lower stays valid.
                let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                edges[hi] = e1;
                edges[lo] = e2;
                done += 1;
            }
            let mut builder = GraphBuilder::with_capacity(self.current.node_count(), edges.len());
            for (u, v) in edge_set {
                builder.add_edge(u, v);
            }
            let g = builder.build();
            if g.is_connected() {
                return g;
            }
        }
        self.current.clone()
    }
}

impl DynamicTopology for EdgeSwapAdversary {
    fn node_count(&self) -> usize {
        self.current.node_count()
    }
    fn tau(&self) -> Option<u64> {
        Some(self.clock.tau)
    }
    fn graph_at(&mut self, round: u64) -> &Graph {
        if let Some(epoch) = self.clock.tick(round) {
            if epoch > 0 {
                self.current = self.swapped(epoch);
            }
        }
        &self.current
    }
}

/// The §VI line-of-stars with its leaves re-dealt uniformly among spine
/// stars at every change (counts per star preserved, so the graph is always
/// isomorphic to the static construction).
pub struct LineOfStarsShuffle {
    spine: usize,
    points: usize,
    clock: EpochClock,
    seed: u64,
    current: Graph,
}

impl LineOfStarsShuffle {
    pub fn new(spine: usize, points: usize, tau: u64, seed: u64) -> Self {
        let current = crate::gen::line_of_stars(spine, points);
        LineOfStarsShuffle { spine, points, clock: EpochClock::new(tau), seed, current }
    }

    fn shuffled(&self, epoch: u64) -> Graph {
        let n = self.spine + self.spine * self.points;
        // per-epoch stream derived from the topology seed. mtm-lint: allow(smallrng-outside-engine)
        let mut rng = SmallRng::seed_from_u64(crate::rng::derive_seed(self.seed, epoch));
        let mut leaves: Vec<NodeId> = (nid(self.spine)..nid(n)).collect();
        leaves.shuffle(&mut rng);
        let mut b = GraphBuilder::with_capacity(n, n - 1);
        for i in 1..nid(self.spine) {
            b.add_edge(i - 1, i);
        }
        for (idx, &leaf) in leaves.iter().enumerate() {
            let star = nid(idx / self.points);
            b.add_edge(star, leaf);
        }
        b.build()
    }
}

impl DynamicTopology for LineOfStarsShuffle {
    fn node_count(&self) -> usize {
        self.spine + self.spine * self.points
    }
    fn tau(&self) -> Option<u64> {
        Some(self.clock.tau)
    }
    fn graph_at(&mut self, round: u64) -> &Graph {
        if let Some(epoch) = self.clock.tick(round) {
            if epoch > 0 {
                self.current = self.shuffled(epoch);
            }
        }
        &self.current
    }
}

/// Random-waypoint proximity mobility on the unit torus.
///
/// Each node has a position and a waypoint; every epoch (`τ` rounds) each
/// node moves `speed` toward its waypoint (re-sampling the waypoint on
/// arrival), and the topology becomes the radius-`radius` proximity graph.
/// Because the model requires connected topologies, components beyond the
/// first are patched by an edge between the geometrically closest pair
/// (documented substitution; the patch edges are a vanishing fraction at the
/// densities we simulate).
pub struct WaypointMobility {
    positions: Vec<(f64, f64)>,
    waypoints: Vec<(f64, f64)>,
    speed: f64,
    radius: f64,
    clock: EpochClock,
    rng: SmallRng,
    current: Graph,
}

impl WaypointMobility {
    pub fn new(n: usize, radius: f64, speed: f64, tau: u64, seed: u64) -> Self {
        assert!(n >= 1);
        // generator stream from an explicit seed parameter. mtm-lint: allow(smallrng-outside-engine)
        let mut rng = SmallRng::seed_from_u64(seed);
        let positions: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let waypoints: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let current = Self::proximity_graph(&positions, radius);
        WaypointMobility {
            positions,
            waypoints,
            speed,
            radius,
            clock: EpochClock::new(tau),
            rng,
            current,
        }
    }

    /// Torus distance between two points.
    fn torus_dist(a: (f64, f64), b: (f64, f64)) -> f64 {
        let dx = (a.0 - b.0).abs().min(1.0 - (a.0 - b.0).abs());
        let dy = (a.1 - b.1).abs().min(1.0 - (a.1 - b.1).abs());
        (dx * dx + dy * dy).sqrt()
    }

    fn proximity_graph(pos: &[(f64, f64)], radius: f64) -> Graph {
        let n = pos.len();
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if Self::torus_dist(pos[u], pos[v]) <= radius {
                    b.add_edge(nid(u), nid(v));
                }
            }
        }
        let g = b.build();
        if g.is_connected() || n <= 1 {
            return g;
        }
        // Patch: bridge each non-main component to the main one via the
        // closest node pair.
        let labels = g.components();
        let ncomp =
            *labels.iter().max().expect("n > 1 past the early return, so labels is nonempty")
                as usize
                + 1;
        let mut extra = Vec::new();
        for comp in 1..nid(ncomp) {
            let mut best: (f64, NodeId, NodeId) = (f64::INFINITY, 0, 0);
            for u in 0..n {
                if labels[u] != comp {
                    continue;
                }
                for v in 0..n {
                    if labels[v] != 0 {
                        continue;
                    }
                    let d = Self::torus_dist(pos[u], pos[v]);
                    if d < best.0 {
                        best = (d, nid(u), nid(v));
                    }
                }
            }
            extra.push((best.1, best.2));
        }
        g.with_edges(&extra)
    }

    fn step(&mut self) {
        for i in 0..self.positions.len() {
            let (px, py) = self.positions[i];
            let (wx, wy) = self.waypoints[i];
            let dx = wx - px;
            let dy = wy - py;
            let dist = (dx * dx + dy * dy).sqrt();
            if dist <= self.speed {
                self.positions[i] = (wx, wy);
                self.waypoints[i] = (self.rng.gen(), self.rng.gen());
            } else {
                self.positions[i] = (px + self.speed * dx / dist, py + self.speed * dy / dist);
            }
        }
    }
}

impl DynamicTopology for WaypointMobility {
    fn node_count(&self) -> usize {
        self.positions.len()
    }
    fn tau(&self) -> Option<u64> {
        Some(self.clock.tau)
    }
    fn graph_at(&mut self, round: u64) -> &Graph {
        if let Some(epoch) = self.clock.tick(round) {
            if epoch > 0 {
                self.step();
                self.current = Self::proximity_graph(&self.positions, self.radius);
            }
        }
        &self.current
    }
}

/// Two node sets run disconnected until `join_round`, after which `bridges`
/// connect them (self-stabilization experiment, §VIII).
pub struct JoinSchedule {
    before: Graph,
    after: Graph,
    join_round: u64,
}

impl JoinSchedule {
    /// `left` and `right` become one node set (`right` ids shifted by
    /// `left.node_count()`); `bridges` are edges in the combined id space.
    pub fn new(left: &Graph, right: &Graph, bridges: &[(NodeId, NodeId)], join_round: u64) -> Self {
        let before = left.disjoint_union(right);
        let after = before.with_edges(bridges);
        assert!(after.is_connected(), "bridge edges must connect the two components");
        JoinSchedule { before, after, join_round }
    }

    /// Round at which the bridge edges appear.
    pub fn join_round(&self) -> u64 {
        self.join_round
    }
}

impl DynamicTopology for JoinSchedule {
    fn node_count(&self) -> usize {
        self.before.node_count()
    }
    fn tau(&self) -> Option<u64> {
        // Exactly one change at join_round; between changes stability is
        // unbounded, so report the distance to the single change.
        Some(self.join_round.max(1))
    }
    fn graph_at(&mut self, round: u64) -> &Graph {
        if round < self.join_round {
            &self.before
        } else {
            &self.after
        }
    }
    fn may_change_at(&self, round: u64) -> bool {
        round <= 1 || round == self.join_round
    }
}

/// Box a topology for dynamic dispatch in harness code.
pub type BoxedTopology = Box<dyn DynamicTopology + Send>;

impl<T: DynamicTopology + ?Sized> DynamicTopology for Box<T> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn tau(&self) -> Option<u64> {
        (**self).tau()
    }
    fn graph_at(&mut self, round: u64) -> &Graph {
        (**self).graph_at(round)
    }
    fn may_change_at(&self, round: u64) -> bool {
        (**self).may_change_at(round)
    }
    fn is_node_up(&self, u: NodeId, round: u64) -> bool {
        (**self).is_node_up(u, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn static_topology_never_changes() {
        let mut t = StaticTopology::new(gen::clique(5));
        let g1 = t.graph_at(1).clone();
        let g2 = t.graph_at(100).clone();
        assert_eq!(g1, g2);
        assert_eq!(t.tau(), None);
    }

    #[test]
    fn epoch_clock_changes_every_tau() {
        let mut c = EpochClock::new(3);
        assert!(c.tick(1).is_some());
        assert!(c.tick(2).is_none());
        assert!(c.tick(3).is_none());
        assert!(c.tick(4).is_some());
        assert!(c.tick(5).is_none());
        assert!(c.tick(7).is_some());
    }

    #[test]
    fn relabeling_preserves_structure() {
        let base = gen::line_of_stars(4, 4);
        let deg_seq = base.degree_sequence();
        let mut adv = RelabelingAdversary::new(base, 2, 7);
        let mut distinct = std::collections::BTreeSet::new();
        for round in 1..=20 {
            let g = adv.graph_at(round).clone();
            assert_eq!(g.degree_sequence(), deg_seq, "round {round} not isomorphic");
            assert!(g.is_connected());
            distinct.insert(format!("{g:?}"));
        }
        assert!(distinct.len() > 1, "adversary never changed the graph");
    }

    #[test]
    fn relabeling_stable_within_epoch() {
        let base = gen::cycle(10);
        let mut adv = RelabelingAdversary::new(base, 5, 3);
        let g1 = adv.graph_at(1).clone();
        for r in 2..=5 {
            assert_eq!(&g1, adv.graph_at(r), "changed within τ window at round {r}");
        }
        let g2 = adv.graph_at(6).clone();
        // New epoch may (with overwhelming probability does) differ.
        let _ = g2;
    }

    #[test]
    fn edge_swap_preserves_degree_sequence() {
        let base = gen::random_regular(20, 4, 1);
        let deg_seq = base.degree_sequence();
        let mut adv = EdgeSwapAdversary::new(base, 1, 10, 99);
        for round in 1..=15 {
            let g = adv.graph_at(round);
            assert_eq!(g.degree_sequence(), deg_seq, "round {round}");
            assert!(g.is_connected(), "round {round} disconnected");
        }
    }

    #[test]
    fn edge_swap_actually_changes_graph() {
        let base = gen::random_regular(24, 3, 2);
        let g0 = base.clone();
        let mut adv = EdgeSwapAdversary::new(base, 1, 8, 5);
        let mut changed = false;
        for round in 1..=10 {
            if adv.graph_at(round) != &g0 {
                changed = true;
            }
        }
        assert!(changed);
    }

    #[test]
    fn leaf_shuffle_isomorphic_and_connected() {
        let mut adv = LineOfStarsShuffle::new(4, 4, 1, 11);
        let expect = gen::line_of_stars(4, 4).degree_sequence();
        for round in 1..=12 {
            let g = adv.graph_at(round);
            assert_eq!(g.degree_sequence(), expect, "round {round}");
            assert!(g.is_connected());
        }
    }

    #[test]
    fn waypoint_mobility_connected_every_round() {
        let mut m = WaypointMobility::new(30, 0.25, 0.05, 2, 17);
        for round in 1..=20 {
            let g = m.graph_at(round);
            assert!(g.is_connected(), "round {round} disconnected");
            assert_eq!(g.node_count(), 30);
        }
    }

    #[test]
    fn waypoint_positions_change() {
        let mut m = WaypointMobility::new(10, 0.5, 0.1, 1, 3);
        let p0 = m.positions.clone();
        let _ = m.graph_at(1);
        let _ = m.graph_at(2); // epoch 1 triggers a step
        assert_ne!(p0, m.positions);
    }

    #[test]
    fn join_schedule_switches_at_join_round() {
        let left = gen::clique(4);
        let right = gen::clique(4);
        let mut j = JoinSchedule::new(&left, &right, &[(0, 4)], 10);
        assert!(!j.graph_at(1).is_connected());
        assert!(!j.graph_at(9).is_connected());
        assert!(j.graph_at(10).is_connected());
        assert!(j.graph_at(50).is_connected());
    }

    #[test]
    #[should_panic(expected = "must connect")]
    fn join_schedule_rejects_nonbridging_edges() {
        let left = gen::clique(3);
        let right = gen::clique(3);
        let _ = JoinSchedule::new(&left, &right, &[(0, 1)], 5);
    }

    #[test]
    fn may_change_at_follows_epoch_grid() {
        let t = StaticTopology::new(gen::clique(4));
        assert!(t.may_change_at(1));
        assert!(!t.may_change_at(2) && !t.may_change_at(1000));
        let adv = RelabelingAdversary::new(gen::cycle(6), 3, 1);
        assert!(adv.may_change_at(1));
        assert!(!adv.may_change_at(2) && !adv.may_change_at(3));
        assert!(adv.may_change_at(4));
        assert!(adv.may_change_at(7));
    }

    #[test]
    fn join_schedule_changes_only_at_join_round() {
        let left = gen::clique(3);
        let right = gen::clique(3);
        let j = JoinSchedule::new(&left, &right, &[(0, 3)], 10);
        assert!(j.may_change_at(1));
        assert!(!j.may_change_at(9));
        assert!(j.may_change_at(10));
        assert!(!j.may_change_at(11));
    }

    #[test]
    fn torus_dist_wraps() {
        let d = WaypointMobility::torus_dist((0.05, 0.5), (0.95, 0.5));
        assert!((d - 0.1).abs() < 1e-12);
    }
}
