//! Targeted adversaries: dynamic topologies that actively work against
//! leader election, beyond the structure-preserving churn in
//! [`crate::dynamic`].
//!
//! The paper's analyses hold for *any* `τ`-stable dynamic graph, including
//! adaptive-looking worst cases. These adversaries let experiments probe
//! how much room there is between the average-case churn of
//! [`crate::dynamic::RelabelingAdversary`] and deliberately hostile
//! topology sequences:
//!
//! * [`IsolatingAdversary`] — every epoch, moves a designated *target*
//!   node (e.g. the minimum-UID holder) to the most isolated position of a
//!   line-of-stars: the far end leaf of the line. Information from the
//!   target must repeatedly re-cross the whole spine.
//! * [`CyclingTopologies`] — round-robins through a fixed list of graphs,
//!   changing every `τ` rounds. Useful for reproducible worst-case
//!   sequences and for alternating between structurally different graphs
//!   (e.g. a path and a star) so no single-graph intuition applies.

use crate::dynamic::DynamicTopology;
use crate::nid;
use crate::static_graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Every `τ` rounds, rebuilds a line-of-stars with the `target` node placed
/// as a leaf of the *last* star and all other nodes randomly permuted over
/// the remaining positions. The target's information must traverse the
/// full spine after every change.
pub struct IsolatingAdversary {
    spine: usize,
    points: usize,
    target: NodeId,
    tau: u64,
    seed: u64,
    current_epoch: Option<u64>,
    current: Graph,
}

impl IsolatingAdversary {
    /// A line of `spine` stars with `points` leaves each; `target` is the
    /// node to keep isolated. Total nodes: `spine + spine·points`.
    pub fn new(spine: usize, points: usize, target: NodeId, tau: u64, seed: u64) -> Self {
        assert!(spine >= 1 && points >= 1 && tau >= 1);
        let n = spine + spine * points;
        assert!((target as usize) < n, "target out of range");
        let mut adv = IsolatingAdversary {
            spine,
            points,
            target,
            tau,
            seed,
            current_epoch: None,
            current: GraphBuilder::new(0).build(),
        };
        adv.current = adv.build_epoch(0);
        adv
    }

    fn build_epoch(&self, epoch: u64) -> Graph {
        let n = self.spine + self.spine * self.points;
        // per-epoch stream derived from the topology seed. mtm-lint: allow(smallrng-outside-engine)
        let mut rng = SmallRng::seed_from_u64(crate::rng::derive_seed(self.seed, epoch));
        // Positions: 0..spine are spine slots (in line order); the rest are
        // leaf slots, where leaf slot j belongs to star j / points. The
        // last leaf slot belongs to the last star; pin the target there.
        let mut others: Vec<NodeId> = (0..nid(n)).filter(|&u| u != self.target).collect();
        others.shuffle(&mut rng);
        let mut assignment = others;
        assignment.push(self.target); // target takes the final leaf slot
        let node_at = |slot: usize| assignment[slot];

        let mut b = GraphBuilder::with_capacity(n, n - 1);
        for i in 1..self.spine {
            b.add_edge(node_at(i - 1), node_at(i));
        }
        for j in 0..self.spine * self.points {
            let star = j / self.points;
            b.add_edge(node_at(star), node_at(self.spine + j));
        }
        b.build()
    }
}

impl DynamicTopology for IsolatingAdversary {
    fn node_count(&self) -> usize {
        self.spine + self.spine * self.points
    }
    fn tau(&self) -> Option<u64> {
        Some(self.tau)
    }
    fn graph_at(&mut self, round: u64) -> &Graph {
        let epoch = (round - 1) / self.tau;
        if self.current_epoch != Some(epoch) {
            self.current_epoch = Some(epoch);
            self.current = self.build_epoch(epoch);
        }
        &self.current
    }
}

/// Cycles deterministically through a fixed list of graphs, advancing every
/// `τ` rounds.
pub struct CyclingTopologies {
    graphs: Vec<Graph>,
    tau: u64,
}

impl CyclingTopologies {
    /// All graphs must share one node count.
    pub fn new(graphs: Vec<Graph>, tau: u64) -> Self {
        assert!(!graphs.is_empty(), "need at least one graph");
        assert!(tau >= 1);
        let n = graphs[0].node_count();
        assert!(
            graphs.iter().all(|g| g.node_count() == n),
            "all graphs must have the same node count"
        );
        CyclingTopologies { graphs, tau }
    }
}

impl DynamicTopology for CyclingTopologies {
    fn node_count(&self) -> usize {
        self.graphs[0].node_count()
    }
    fn tau(&self) -> Option<u64> {
        if self.graphs.len() == 1 {
            None
        } else {
            Some(self.tau)
        }
    }
    fn graph_at(&mut self, round: u64) -> &Graph {
        let epoch = (round - 1) / self.tau;
        &self.graphs[(epoch % self.graphs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn isolating_adversary_pins_target_as_far_leaf() {
        let mut adv = IsolatingAdversary::new(4, 3, 7, 2, 1);
        for round in 1..=12 {
            let target = 7u32;
            let g = adv.graph_at(round);
            assert!(g.is_connected());
            assert_eq!(g.degree(target), 1, "target must be a leaf (round {round})");
            // The target's only neighbor is the last spine node, whose
            // distance from the first spine node is spine-1 hops.
            let hub = g.neighbors(target)[0];
            // hub should carry spine and leaf edges: degree ≥ points + 1.
            assert!(g.degree(hub) >= 4, "target's hub looks wrong (round {round})");
        }
    }

    #[test]
    fn isolating_adversary_isomorphic_to_line_of_stars() {
        let mut adv = IsolatingAdversary::new(3, 4, 0, 1, 9);
        let expect = gen::line_of_stars(3, 4).degree_sequence();
        for round in 1..=6 {
            assert_eq!(adv.graph_at(round).degree_sequence(), expect);
        }
    }

    #[test]
    fn isolating_adversary_changes_between_epochs() {
        let mut adv = IsolatingAdversary::new(3, 3, 2, 3, 4);
        let g1 = adv.graph_at(1).clone();
        assert_eq!(&g1, adv.graph_at(2), "stable within epoch");
        assert_eq!(&g1, adv.graph_at(3), "stable within epoch");
        let g2 = adv.graph_at(4).clone();
        assert_ne!(g1, g2, "epoch change should re-deal positions");
    }

    #[test]
    fn cycling_topologies_round_robin() {
        let a = gen::path(6);
        let b = gen::cycle(6);
        let c = gen::star(6);
        let mut cyc = CyclingTopologies::new(vec![a.clone(), b.clone(), c.clone()], 2);
        assert_eq!(cyc.graph_at(1), &a);
        assert_eq!(cyc.graph_at(2), &a);
        assert_eq!(cyc.graph_at(3), &b);
        assert_eq!(cyc.graph_at(5), &c);
        assert_eq!(cyc.graph_at(7), &a); // wraps
    }

    #[test]
    fn cycling_single_graph_reports_static() {
        let mut cyc = CyclingTopologies::new(vec![gen::clique(4)], 5);
        assert_eq!(cyc.tau(), None);
        let g1 = cyc.graph_at(1).clone();
        assert_eq!(&g1, cyc.graph_at(100));
    }

    #[test]
    #[should_panic(expected = "same node count")]
    fn cycling_rejects_mismatched_sizes() {
        CyclingTopologies::new(vec![gen::clique(4), gen::clique(5)], 1);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn isolating_rejects_bad_target() {
        IsolatingAdversary::new(2, 2, 99, 1, 0);
    }
}
