//! Named topology families: the vocabulary of the CLI and experiment
//! harness.
//!
//! Each family knows how to build an instance near a target size and, where
//! the paper's analysis uses them, supplies an analytic vertex-expansion
//! value `α(n)` (validated against [`crate::expansion::alpha_exact`] at
//! small sizes in tests).

use crate::gen;
use crate::static_graph::Graph;

/// Node-count threshold above which randomized regular families switch
/// from the pairing-model builder ([`gen::random_regular`]) to the
/// direct-to-CSR cycle-union builder ([`gen::random_regular_cycles`]).
/// Chosen just above the largest recorded experiment cell (`2^20`) so the
/// switch cannot perturb any committed table's topology bytes.
pub const DIRECT_CSR_THRESHOLD: usize = 2_000_000;

/// A named graph family with a scalable size parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphFamily {
    /// Complete graph `K_n`: `α ≈ 1`, `Δ = n-1`.
    Clique,
    /// Path `P_n`: `α = 1/⌊n/2⌋`, `Δ = 2`.
    Path,
    /// Cycle `C_n`: `α = 2/⌊n/2⌋`, `Δ = 2`.
    Cycle,
    /// Star: `α = 1/⌊n/2⌋`, `Δ = n-1`.
    Star,
    /// §VI lower-bound construction: line of `√n` stars of `√n` points.
    LineOfStars,
    /// Random 3-regular expander: `α = Θ(1)`, `Δ = 3`.
    Expander3,
    /// Random 8-regular expander: `α = Θ(1)`, `Δ = 8`.
    Expander8,
    /// Hypercube `Q_{log n}`: `Δ = log n`.
    Hypercube,
    /// Torus grid `√n × √n`: `Δ = 4`, `α = Θ(1/√n)`.
    Torus,
    /// Barbell (two cliques + short bridge): `α = Θ(1/n)`, `Δ = Θ(n)`.
    Barbell,
    /// Two expanders joined by one edge: `α = Θ(1/n)`, `Δ = O(1)`.
    Dumbbell,
    /// Complete binary tree.
    BinaryTree,
    /// Barabási–Albert preferential attachment (m = 3): heavy-tailed
    /// degrees, like real contact networks.
    PowerLaw,
}

impl GraphFamily {
    /// All families, for sweep-everything experiments.
    pub const ALL: [GraphFamily; 13] = [
        GraphFamily::Clique,
        GraphFamily::Path,
        GraphFamily::Cycle,
        GraphFamily::Star,
        GraphFamily::LineOfStars,
        GraphFamily::Expander3,
        GraphFamily::Expander8,
        GraphFamily::Hypercube,
        GraphFamily::Torus,
        GraphFamily::Barbell,
        GraphFamily::Dumbbell,
        GraphFamily::BinaryTree,
        GraphFamily::PowerLaw,
    ];

    /// Stable lowercase name (CLI argument / CSV column).
    pub fn name(self) -> &'static str {
        match self {
            GraphFamily::Clique => "clique",
            GraphFamily::Path => "path",
            GraphFamily::Cycle => "cycle",
            GraphFamily::Star => "star",
            GraphFamily::LineOfStars => "line-of-stars",
            GraphFamily::Expander3 => "expander3",
            GraphFamily::Expander8 => "expander8",
            GraphFamily::Hypercube => "hypercube",
            GraphFamily::Torus => "torus",
            GraphFamily::Barbell => "barbell",
            GraphFamily::Dumbbell => "dumbbell",
            GraphFamily::BinaryTree => "binary-tree",
            GraphFamily::PowerLaw => "power-law",
        }
    }

    /// Parse a family from its [`name`](GraphFamily::name).
    pub fn parse(s: &str) -> Option<GraphFamily> {
        GraphFamily::ALL.iter().copied().find(|f| f.name() == s)
    }

    /// Build an instance with size as close to `n_target` as the family's
    /// structure permits (e.g. hypercubes round to powers of two). The
    /// actual size is `graph.node_count()`.
    pub fn build(self, n_target: usize, seed: u64) -> Graph {
        assert!(n_target >= 2, "families need n ≥ 2");
        match self {
            GraphFamily::Clique => gen::clique(n_target),
            GraphFamily::Path => gen::path(n_target),
            GraphFamily::Cycle => gen::cycle(n_target.max(3)),
            GraphFamily::Star => gen::star(n_target),
            GraphFamily::LineOfStars => gen::line_of_stars_sqrt(n_target).0,
            GraphFamily::Expander3 => {
                let n = if (n_target * 3).is_multiple_of(2) { n_target } else { n_target + 1 };
                gen::random_regular(n.max(4), 3, seed)
            }
            GraphFamily::Expander8 => {
                let n = n_target.max(10);
                // The pairing model's edge list + repair index cost ~40
                // bytes/edge; past the threshold only the direct-to-CSR
                // cycle-union builder fits in memory. Every table recorded
                // before the threshold existed sits below it, so those
                // instance bytes are unchanged.
                if n > DIRECT_CSR_THRESHOLD {
                    gen::random_regular_cycles(n, 8, seed)
                } else {
                    gen::random_regular(n, 8, seed)
                }
            }
            GraphFamily::Hypercube => {
                // intended float->int rounding for a degree parameter. mtm-lint: allow(truncating-cast)
                let d = (n_target.max(2) as f64).log2().round().max(1.0) as u32;
                gen::hypercube(d)
            }
            GraphFamily::Torus => {
                let side = ((n_target as f64).sqrt().round() as usize).max(3);
                gen::torus(side, side)
            }
            GraphFamily::Barbell => {
                let k = (n_target / 2).max(2);
                gen::barbell(k, n_target - 2 * k)
            }
            GraphFamily::Dumbbell => {
                let mut half = (n_target / 2).max(4);
                if !(half * 3).is_multiple_of(2) {
                    half += 1;
                }
                gen::dumbbell_expander(half, 3, seed)
            }
            GraphFamily::BinaryTree => gen::dary_tree(n_target, 2),
            GraphFamily::PowerLaw => gen::preferential_attachment(n_target.max(5), 3, seed),
        }
    }

    /// Analytic vertex expansion for an instance of `n` nodes, where a
    /// closed form (or a tight standard estimate) exists. Expander values
    /// are the asymptotic `Θ(1)` constants observed empirically; `None`
    /// means "measure it yourself".
    pub fn known_alpha(self, n: usize) -> Option<f64> {
        let half = (n / 2) as f64;
        match self {
            GraphFamily::Clique => {
                Some(if n.is_multiple_of(2) { 1.0 } else { (half + 1.0) / half })
            }
            GraphFamily::Path => Some(1.0 / half),
            GraphFamily::Cycle => Some(2.0 / half),
            GraphFamily::Star => Some(1.0 / half),
            // Line of s stars with s points: S = ⌊s/2⌋ whole stars (with
            // centers) is bounded only by the next spine node → α ≈ 1/(n/2)
            // … more precisely 1/((s²+s)/2) with s = √(n). We report the
            // Θ(1/n) form.
            GraphFamily::LineOfStars => Some(2.0 / n as f64),
            GraphFamily::Expander3 => None,
            GraphFamily::Expander8 => None,
            GraphFamily::Hypercube => None,
            // Torus √n×√n: a half-grid strip has boundary ≈ √n → α ≈ 2/√n.
            GraphFamily::Torus => Some(2.0 / (n as f64).sqrt()),
            GraphFamily::Barbell => Some(1.0 / half),
            GraphFamily::Dumbbell => Some(1.0 / half),
            GraphFamily::BinaryTree => None,
            GraphFamily::PowerLaw => None,
        }
    }

    /// Whether instances are randomized (affects how experiments seed them).
    pub fn is_randomized(self) -> bool {
        matches!(
            self,
            GraphFamily::Expander3
                | GraphFamily::Expander8
                | GraphFamily::Dumbbell
                | GraphFamily::PowerLaw
        )
    }
}

impl std::fmt::Display for GraphFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::alpha_exact;

    #[test]
    fn all_families_build_connected() {
        for fam in GraphFamily::ALL {
            let g = fam.build(24, 42);
            assert!(g.is_connected(), "{fam} disconnected");
            assert!(g.node_count() >= 2, "{fam} too small");
        }
    }

    #[test]
    fn parse_round_trips() {
        for fam in GraphFamily::ALL {
            assert_eq!(GraphFamily::parse(fam.name()), Some(fam));
        }
        assert_eq!(GraphFamily::parse("nonsense"), None);
    }

    #[test]
    fn known_alpha_matches_exact_small() {
        for fam in [GraphFamily::Clique, GraphFamily::Path, GraphFamily::Cycle, GraphFamily::Star] {
            let g = fam.build(12, 0);
            let n = g.node_count();
            let exact = alpha_exact(&g);
            let known = fam.known_alpha(n).expect("family defines analytic alpha at this size");
            assert!((exact - known).abs() < 1e-9, "{fam}: exact {exact} vs known {known}");
        }
    }

    #[test]
    fn line_of_stars_known_alpha_is_theta_1_over_n() {
        // Exact α for the 3-star, 3-point instance (n = 12, enumerable).
        let g = gen::line_of_stars(3, 3);
        let exact = alpha_exact(&g);
        let known = GraphFamily::LineOfStars
            .known_alpha(12)
            .expect("line of stars defines analytic alpha at n = 12");
        // Same order: within a factor of 4.
        assert!(exact <= known * 4.0 && known <= exact * 4.0, "exact {exact} vs known {known}");
    }

    #[test]
    fn hypercube_sizes_round_to_powers_of_two() {
        let g = GraphFamily::Hypercube.build(100, 0);
        assert_eq!(g.node_count(), 128);
        let g = GraphFamily::Hypercube.build(64, 0);
        assert_eq!(g.node_count(), 64);
    }

    #[test]
    fn randomized_families_vary_with_seed() {
        let a = GraphFamily::Expander3.build(30, 1);
        let b = GraphFamily::Expander3.build(30, 2);
        assert_ne!(a, b);
        let c = GraphFamily::Expander3.build(30, 1);
        assert_eq!(a, c);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", GraphFamily::LineOfStars), "line-of-stars");
    }
}
