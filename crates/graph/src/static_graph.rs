//! Compact undirected graphs in CSR (compressed sparse row) form.
//!
//! Every simulation in this workspace indexes nodes with dense `u32` ids, so
//! neighborhood scans — the hot loop of the round executor — are contiguous
//! slice reads. Graphs are immutable once built; dynamic topologies are
//! sequences of immutable graphs (see [`crate::dynamic`]).

/// Dense node identifier. Node ids always form the range `0..n`.
pub type NodeId = u32;

/// Checked `usize` → [`NodeId`] conversion. Every graph this workspace
/// builds is far below `u32::MAX` nodes, so failure is an internal bug —
/// but an `as` cast would wrap silently instead of panicking.
#[inline]
pub fn nid(u: usize) -> NodeId {
    NodeId::try_from(u).expect("node index fits NodeId")
}

/// An immutable undirected graph in CSR form.
///
/// Invariants (checked by [`GraphBuilder::build`], relied on everywhere):
/// * neighbor lists are sorted and duplicate-free,
/// * no self loops,
/// * symmetry: `v ∈ N(u)` iff `u ∈ N(v)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u]..offsets[u+1]` indexes `u`'s neighbor slice in `adjacency`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists.
    adjacency: Vec<NodeId>,
}

impl Graph {
    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// The sorted neighbor slice `N(u)`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Degree `d(u) = |N(u)|`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Iterator over all neighbor slices `N(0), N(1), …` in node order —
    /// the bounds-check-free way to walk the CSR in lockstep with other
    /// per-node arrays (the round executor's scan phase).
    #[inline]
    pub fn neighbor_rows(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        self.offsets.windows(2).map(|w| &self.adjacency[w[0] as usize..w[1] as usize])
    }

    /// Maximum degree `Δ` over all nodes (0 for an empty or edgeless graph).
    pub fn max_degree(&self) -> usize {
        (0..nid(self.node_count())).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes.
    pub fn min_degree(&self) -> usize {
        (0..nid(self.node_count())).map(|u| self.degree(u)).min().unwrap_or(0)
    }

    /// True iff `{u, v} ∈ E`. Binary search on the sorted neighbor slice.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all undirected edges as ordered pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..nid(self.node_count())).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// True iff the graph is connected (or has ≤ 1 node).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        self.bfs_reach(0) == n
    }

    /// Number of nodes reachable from `start` (including `start`).
    pub fn bfs_reach(&self, start: NodeId) -> usize {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::with_capacity(n.min(1024));
        seen[start as usize] = true;
        queue.push_back(start);
        let mut count = 1usize;
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count
    }

    /// Hop distances from `start` to every node (`u32::MAX` if unreachable).
    pub fn bfs_distances(&self, start: NodeId) -> Vec<u32> {
        let n = self.node_count();
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::with_capacity(n.min(1024));
        dist[start as usize] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in self.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Exact diameter by running BFS from every node. `O(n·m)` — intended for
    /// test-sized graphs and experiment setup, not inner loops.
    pub fn diameter(&self) -> Option<u32> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        let mut best = 0u32;
        for u in 0..nid(n) {
            let d = self.bfs_distances(u);
            for &x in &d {
                if x == u32::MAX {
                    return None; // disconnected
                }
                best = best.max(x);
            }
        }
        Some(best)
    }

    /// Connected components as a label vector (`labels[u]` is the component
    /// index of `u`, indices dense from 0).
    pub fn components(&self) -> Vec<u32> {
        let n = self.node_count();
        let mut label = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut queue = std::collections::VecDeque::new();
        for s in 0..nid(n) {
            if label[s as usize] != u32::MAX {
                continue;
            }
            label[s as usize] = next;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &v in self.neighbors(u) {
                    if label[v as usize] == u32::MAX {
                        label[v as usize] = next;
                        queue.push_back(v);
                    }
                }
            }
            next += 1;
        }
        label
    }

    /// Disjoint union of two graphs: nodes of `other` are shifted by
    /// `self.node_count()`. Used by component-join schedules.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = nid(self.node_count());
        let mut b = GraphBuilder::new(self.node_count() + other.node_count());
        for (u, v) in self.edges() {
            b.add_edge(u, v);
        }
        for (u, v) in other.edges() {
            b.add_edge(u + shift, v + shift);
        }
        b.build()
    }

    /// A copy of this graph with the given extra edges added (duplicates and
    /// existing edges are ignored). Used to bridge components.
    pub fn with_edges(&self, extra: &[(NodeId, NodeId)]) -> Graph {
        let mut b = GraphBuilder::new(self.node_count());
        for (u, v) in self.edges() {
            b.add_edge(u, v);
        }
        for &(u, v) in extra {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Sum of degrees (twice the edge count); handy for tests.
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }

    /// Check the CSR invariants (sorted duplicate-free neighbor slices, no
    /// self loops, symmetry, in-range offsets). Used when deserializing
    /// graphs from untrusted input.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.node_count();
        if self.offsets.first() != Some(&0)
            || *self.offsets.last().unwrap_or(&0) as usize != self.adjacency.len()
            || self.offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("malformed offset array".to_string());
        }
        for u in 0..nid(n) {
            let nbrs = self.neighbors(u);
            if nbrs.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("neighbors of {u} not strictly sorted"));
            }
            for &v in nbrs {
                if v as usize >= n {
                    return Err(format!("edge ({u}, {v}) out of range"));
                }
                if v == u {
                    return Err(format!("self loop at {u}"));
                }
                if !self.has_edge(v, u) {
                    return Err(format!("asymmetric edge ({u}, {v})"));
                }
            }
        }
        Ok(())
    }

    /// The raw CSR arrays `(offsets, adjacency)`. Used by [`crate::io`] to
    /// serialize graphs without an external serialization framework.
    pub fn csr_parts(&self) -> (&[u32], &[NodeId]) {
        (&self.offsets, &self.adjacency)
    }

    /// Reassemble a graph from raw CSR arrays without checking invariants.
    ///
    /// `offsets` must be non-empty (a graph on `n` nodes has `n + 1`
    /// offsets). Callers holding untrusted input must run [`Graph::validate`]
    /// on the result before using it.
    pub fn from_csr_parts_unchecked(offsets: Vec<u32>, adjacency: Vec<NodeId>) -> Graph {
        assert!(!offsets.is_empty(), "CSR offset array must have n + 1 entries");
        Graph { offsets, adjacency }
    }

    /// The degree sequence, sorted descending. Used by rewiring adversaries
    /// to check degree preservation.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = (0..nid(self.node_count())).map(|u| self.degree(u)).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }
}

/// Incremental builder collecting an edge list, deduplicating and
/// symmetrizing on [`GraphBuilder::build`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Builder for a graph on `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "node count exceeds u32 id space");
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Builder with a capacity hint for the edge list.
    pub fn with_capacity(n: usize, edges: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(edges);
        b
    }

    /// Add the undirected edge `{u, v}`. Self loops are rejected; duplicate
    /// insertions are deduplicated at build time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        assert_ne!(u, v, "self loop ({u}, {u}) rejected");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into a CSR [`Graph`].
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut deg = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut adjacency: Vec<NodeId> = vec![0; acc as usize];
        for &(u, v) in &self.edges {
            adjacency[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Each neighbor slice must be sorted for binary-search `has_edge`.
        for u in 0..self.n {
            let lo = offsets[u] as usize;
            let hi = offsets[u + 1] as usize;
            adjacency[lo..hi].sort_unstable();
        }
        Graph { offsets, adjacency }
    }
}

/// Build a graph directly from an edge list on `n` nodes.
pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn single_node() {
        let g = GraphBuilder::new(1).build();
        assert_eq!(g.node_count(), 1);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn triangle_basics() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = from_edges(5, &[(3, 1), (0, 3), (4, 3), (2, 3)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        for u in 0..5u32 {
            for &v in g.neighbors(u) {
                assert!(g.has_edge(v, u), "asymmetric edge ({u},{v})");
            }
        }
    }

    #[test]
    fn path_distances_and_diameter() {
        // 0 - 1 - 2 - 3
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3]);
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn disconnected_detection() {
        let g = from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        let labels = g.components();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn disjoint_union_shifts_ids() {
        let a = from_edges(2, &[(0, 1)]);
        let b = from_edges(3, &[(0, 1), (1, 2)]);
        let u = a.disjoint_union(&b);
        assert_eq!(u.node_count(), 5);
        assert_eq!(u.edge_count(), 3);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 3));
        assert!(u.has_edge(3, 4));
        assert!(!u.has_edge(1, 2));
        assert!(!u.is_connected());
    }

    #[test]
    fn with_edges_bridges_components() {
        let a = from_edges(2, &[(0, 1)]);
        let b = from_edges(2, &[(0, 1)]);
        let u = a.disjoint_union(&b).with_edges(&[(1, 2)]);
        assert!(u.is_connected());
        assert_eq!(u.edge_count(), 3);
    }

    #[test]
    fn edges_iterator_matches_count() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn degree_sequence_sorted_descending() {
        let g = from_edges(4, &[(0, 1), (0, 2), (0, 3)]); // star
        assert_eq!(g.degree_sequence(), vec![3, 1, 1, 1]);
    }
}
