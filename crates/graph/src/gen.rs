//! Topology generators.
//!
//! Every family used in the paper's analysis or our experiments is generated
//! here. Deterministic families take only sizes; randomized families take an
//! explicit seed. All generators return *connected* graphs (randomized ones
//! retry or patch until connected), matching the model's assumption that the
//! topology in each round is connected.

use crate::nid;
use crate::static_graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Complete graph `K_n`. Vertex expansion `α ≈ 1` (well connected); `Δ = n-1`.
pub fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * (n.saturating_sub(1)) / 2);
    for u in 0..nid(n) {
        for v in (u + 1)..nid(n) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Path `P_n` (a line). The paper's canonical "inherently slow" topology:
/// `α = Θ(1/n)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 1..nid(n) {
        b.add_edge(u - 1, u);
    }
    b.build()
}

/// Cycle `C_n`. `α = Θ(1/n)`, `Δ = 2`.
pub fn cycle(n: usize) -> Graph {
    assert!(n != 2, "C_2 would be a multi-edge");
    let mut b = GraphBuilder::with_capacity(n, n);
    for u in 1..nid(n) {
        b.add_edge(u - 1, u);
    }
    if n > 2 {
        b.add_edge(nid(n) - 1, 0);
    }
    b.build()
}

/// Star `S_{n-1}`: node 0 is the hub. `Δ = n-1`, `α = Θ(1/n)` (take `S` to be
/// half the leaves: only the hub borders it... the hub plus nothing else, so
/// `α(S) = 1/|S|`).
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 1..nid(n) {
        b.add_edge(0, u);
    }
    b.build()
}

/// The §VI lower-bound construction: a line of `spine` stars, each with
/// `points` leaf nodes. Spine nodes are ids `0..spine`; leaves of spine node
/// `i` are `spine + i*points .. spine + (i+1)*points`.
///
/// With `spine = points = √n` this is the network in which blind gossip
/// needs `Ω(Δ²·√n) = Ω(Δ²/√α)` rounds.
pub fn line_of_stars(spine: usize, points: usize) -> Graph {
    assert!(spine >= 1);
    let n = spine + spine * points;
    let mut b = GraphBuilder::with_capacity(n, spine - 1 + spine * points);
    for i in 1..nid(spine) {
        b.add_edge(i - 1, i);
    }
    for i in 0..spine {
        for j in 0..points {
            b.add_edge(nid(i), nid(spine + i * points + j));
        }
    }
    b.build()
}

/// Convenience: the symmetric `√n` line-of-stars closest to a target size.
/// Returns the graph and the chosen `(spine, points)`.
pub fn line_of_stars_sqrt(n_target: usize) -> (Graph, usize, usize) {
    let s = (n_target as f64).sqrt().floor().max(1.0) as usize;
    (line_of_stars(s, s), s, s)
}

/// Complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(a + b_size, a * b_size);
    for u in 0..nid(a) {
        for v in 0..nid(b_size) {
            b.add_edge(u, nid(a) + v);
        }
    }
    b.build()
}

/// Complete `d`-ary tree with `n` nodes (node 0 the root, node `i`'s parent
/// is `(i-1)/d`).
pub fn dary_tree(n: usize, d: usize) -> Graph {
    assert!(d >= 1);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 1..n {
        b.add_edge(nid((u - 1) / d), nid(u));
    }
    b.build()
}

/// Hypercube `Q_d` on `2^d` nodes: `u ~ v` iff they differ in one bit.
/// A classic expander-ish graph with `Δ = d = log n`.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::with_capacity(n, n * d as usize / 2);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                b.add_edge(nid(u), nid(v));
            }
        }
    }
    b.build()
}

/// 2-D torus grid `rows × cols` with wraparound. `Δ = 4`, `α = Θ(1/√n)`.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dims ≥ 3 to avoid multi-edges");
    let n = rows * cols;
    let id = |r: usize, c: usize| nid(r * cols + c);
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols));
            b.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    b.build()
}

/// Barbell: two cliques of size `k` joined by a path of `bridge` nodes.
/// The classic low-expansion, high-degree graph: `α = Θ(1/k)`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 2);
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    for u in 0..nid(k) {
        for v in (u + 1)..nid(k) {
            b.add_edge(u, v);
        }
    }
    let right = nid(k + bridge);
    for u in 0..nid(k) {
        for v in (u + 1)..nid(k) {
            b.add_edge(right + u, right + v);
        }
    }
    // Chain: clique-A node k-1 — bridge nodes — clique-B node `right`.
    let mut prev = nid(k - 1);
    for i in 0..bridge {
        let x = nid(k + i);
        b.add_edge(prev, x);
        prev = x;
    }
    b.add_edge(prev, right);
    b.build()
}

/// Lollipop: a clique of size `k` with a path of `tail` nodes hanging off it.
pub fn lollipop(k: usize, tail: usize) -> Graph {
    assert!(k >= 2);
    let n = k + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..nid(k) {
        for v in (u + 1)..nid(k) {
            b.add_edge(u, v);
        }
    }
    let mut prev = nid(k - 1);
    for i in 0..tail {
        let x = nid(k + i);
        b.add_edge(prev, x);
        prev = x;
    }
    b.build()
}

/// Random `d`-regular graph via the pairing model with retries: sample a
/// random perfect matching on `n·d` half-edges, reject self loops/multi-edges,
/// repeat until simple and connected. Requires `n·d` even and `d < n`.
///
/// For constant `d ≥ 3` these are expanders w.h.p. (`α = Θ(1)`).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    assert!(d < n, "degree must be < n");
    if d == 0 {
        assert!(n <= 1, "0-regular graph on >1 nodes is disconnected");
        return GraphBuilder::new(n).build();
    }
    // generator stream from an explicit seed parameter. mtm-lint: allow(smallrng-outside-engine)
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..1_000 {
        // Pairing (configuration) model with local swap repair: full
        // rejection has acceptance probability ≈ e^{-(d²-1)/4}, hopeless for
        // d ≥ 6, so invalid pairs are fixed by swapping endpoints with
        // random other pairs instead.
        let mut stubs: Vec<NodeId> = Vec::with_capacity(n * d);
        for u in 0..nid(n) {
            for _ in 0..d {
                stubs.push(u);
            }
        }
        stubs.shuffle(&mut rng);
        let mut pairs: Vec<(NodeId, NodeId)> =
            stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
        let key = |u: NodeId, v: NodeId| if u < v { (u, v) } else { (v, u) };
        let mut seen: std::collections::BTreeMap<(NodeId, NodeId), usize> =
            std::collections::BTreeMap::new();
        for &(u, v) in &pairs {
            if u != v {
                *seen.entry(key(u, v)).or_insert(0) += 1;
            }
        }
        let is_bad =
            |p: (NodeId, NodeId), seen: &std::collections::BTreeMap<(NodeId, NodeId), usize>| {
                p.0 == p.1 || seen.get(&key(p.0, p.1)).copied().unwrap_or(0) > 1
            };
        let mut repaired = true;
        for _ in 0..pairs.len() * 50 {
            let Some(i) = pairs.iter().position(|&p| is_bad(p, &seen)) else {
                break;
            };
            let j = rng.gen_range(0..pairs.len());
            if i == j {
                continue;
            }
            let (a, b) = pairs[i];
            let (c, e) = pairs[j];
            // Propose (a, e), (c, b).
            if a == e || c == b {
                continue;
            }
            let k1 = key(a, e);
            let k2 = key(c, b);
            if seen.get(&k1).copied().unwrap_or(0) > 0 || seen.get(&k2).copied().unwrap_or(0) > 0 {
                continue;
            }
            if a != b {
                if let Some(c0) = seen.get_mut(&key(a, b)) {
                    *c0 -= 1;
                }
            }
            if c != e {
                if let Some(c0) = seen.get_mut(&key(c, e)) {
                    *c0 -= 1;
                }
            }
            *seen.entry(k1).or_insert(0) += 1;
            *seen.entry(k2).or_insert(0) += 1;
            pairs[i] = (a, e);
            pairs[j] = (c, b);
        }
        if pairs.iter().any(|&p| is_bad(p, &seen)) {
            repaired = false;
        }
        if !repaired {
            continue;
        }
        let mut b = GraphBuilder::with_capacity(n, pairs.len());
        for &(u, v) in &pairs {
            b.add_edge(u, v);
        }
        let g = b.build();
        if g.is_connected() && g.degree_sum() == n * d {
            return g;
        }
    }
    panic!("random_regular({n}, {d}) failed to produce a simple connected graph");
}

/// Random `d`-regular simple *connected* graph assembled **directly in CSR
/// form** as the union of `d/2` independent random Hamiltonian cycles (the
/// permutation model), with local 2-opt repairs for the rare duplicate
/// edges between cycles. Requires `d` even, `d ≥ 2`, and `n > 2·d`.
///
/// This is the memory-lean counterpart of [`random_regular`]: the pairing
/// model materializes an `n·d` edge list plus a `BTreeMap` repair index,
/// which is hopeless at 10^8 nodes. Here the only allocations are the final
/// CSR arrays (`(n+1) + n·d` u32 words) and one `n`-entry permutation
/// buffer, so a `2^27`-node 8-regular expander costs ≈ 5 GB instead of
/// tens. Connectivity holds *by construction* — every cycle alone spans all
/// nodes, and a 2-opt move keeps a Hamiltonian cycle Hamiltonian — so there
/// is no retry loop and construction time is `O(n·d)` expected.
///
/// For constant even `d ≥ 4` the union of `d/2` random Hamiltonian cycles
/// is an expander w.h.p., just like the pairing model (`α = Θ(1)`).
pub fn random_regular_cycles(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d >= 2 && d.is_multiple_of(2), "cycle-union model needs even d ≥ 2, got {d}");
    assert!(n > 2 * d, "cycle-union model needs n > 2d for 2-opt repair room ({n} ≤ {})", 2 * d);
    let half = d / 2;
    // Row-major adjacency: node u's slots are `u*d .. (u+1)*d`, cycle c
    // filling positions 2c and 2c+1 (each node touches exactly two edges
    // per Hamiltonian cycle), so no per-node fill counters are needed.
    let mut adjacency: Vec<NodeId> = vec![0; n * d];
    // Does {a, b} already appear among the `filled` first slots of a's row?
    let edge_exists = |adj: &[NodeId], a: NodeId, b: NodeId, filled: usize| {
        let base = a as usize * d;
        adj[base..base + filled].contains(&b)
    };
    let mut perm: Vec<NodeId> = (0..n).map(nid).collect();
    for c in 0..half {
        let mut rng = crate::rng::stream_rng(seed, c as u64);
        perm.shuffle(&mut rng);
        let filled = 2 * c;
        if c > 0 {
            // Repair pass: the expected number of edges a fresh random
            // Hamiltonian cycle shares with the previous ones is ≈ 2·c·d/n
            // per cycle pair sum — O(d²) total, independent of n — so a
            // handful of 2-opt moves (each O(segment) for the reversal)
            // fixes them all. A 2-opt replaces tour edges (i, i+1) and
            // (j, j+1) with (i, j) and (i+1, j+1), reversing the segment
            // in between; the tour stays a single Hamiltonian cycle.
            let mut i = 0usize;
            while i < n {
                let a = perm[i];
                let b = perm[(i + 1) % n];
                if !edge_exists(&adjacency, a, b, filled) {
                    i += 1;
                    continue;
                }
                let mut attempts = 0u32;
                loop {
                    attempts += 1;
                    assert!(
                        attempts < 10_000,
                        "random_regular_cycles({n}, {d}): 2-opt repair did not converge"
                    );
                    if i == n - 1 {
                        // Conflict on the wraparound edge {perm[n-1], perm[0]}:
                        // pair it with (j, j+1) and reverse the prefix.
                        let j = rng.gen_range(1..n - 2);
                        let e1 = (perm[n - 1], perm[j]);
                        let e2 = (perm[0], perm[j + 1]);
                        if edge_exists(&adjacency, e1.0, e1.1, filled)
                            || edge_exists(&adjacency, e2.0, e2.1, filled)
                        {
                            continue;
                        }
                        perm[0..=j].reverse();
                        break;
                    }
                    let j = rng.gen_range(0..n);
                    // Order the two tour edges (lo, lo+1), (hi, hi+1); they
                    // must not share an endpoint (hi ≥ lo+2, and not the
                    // wrap-adjacent pair). Either one may be the conflicted
                    // edge — the move removes both.
                    let (lo, hi) = if j < i { (j, i) } else { (i, j) };
                    if hi < lo + 2 || (lo == 0 && hi == n - 1) {
                        continue;
                    }
                    let e1 = (perm[lo], perm[hi]);
                    let e2 = (perm[lo + 1], perm[(hi + 1) % n]);
                    if edge_exists(&adjacency, e1.0, e1.1, filled)
                        || edge_exists(&adjacency, e2.0, e2.1, filled)
                    {
                        continue;
                    }
                    perm[lo + 1..=hi].reverse();
                    break;
                }
                // Re-check position i: the repaired edge was validated, but
                // staying put keeps the loop logic uniform.
            }
        }
        for i in 0..n {
            let u = perm[i] as usize;
            adjacency[u * d + filled] = perm[(i + n - 1) % n];
            adjacency[u * d + filled + 1] = perm[(i + 1) % n];
        }
    }
    // CSR finalization: uniform-degree offsets, per-row sort, and a linear
    // simplicity sweep (sorted rows make duplicates adjacent).
    assert!(n * d <= u32::MAX as usize, "edge-slot count n·d must fit the u32 CSR offsets");
    // asserted just above: i * d <= n * d <= u32::MAX. mtm-lint: allow(truncating-cast)
    let offsets: Vec<u32> = (0..=n).map(|i| (i * d) as u32).collect();
    for u in 0..n {
        let row = &mut adjacency[u * d..(u + 1) * d];
        row.sort_unstable();
        assert!(
            row.windows(2).all(|w| w[0] != w[1]) && !row.contains(&nid(u)),
            "random_regular_cycles({n}, {d}): repair missed a conflict at node {u}"
        );
    }
    Graph::from_csr_parts_unchecked(offsets, adjacency)
}

/// Connected Erdős–Rényi `G(n, p)`: sample, then if disconnected, add one
/// uniformly random edge from each non-giant component to the giant one
/// (documented patch — keeps the degree distribution essentially intact for
/// the regimes we use, `p ≥ 2·ln n / n`).
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    // generator stream from an explicit seed parameter. mtm-lint: allow(smallrng-outside-engine)
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..nid(n) {
        for v in (u + 1)..nid(n) {
            if rng.gen_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    let g = b.build();
    if g.is_connected() || n <= 1 {
        return g;
    }
    // Patch connectivity: link every component to component 0.
    let labels = g.components();
    let ncomp = *labels.iter().max().expect("n > 1 past the early return, so labels is nonempty")
        as usize
        + 1;
    let mut reps: Vec<Vec<NodeId>> = vec![Vec::new(); ncomp];
    for (u, &l) in labels.iter().enumerate() {
        reps[l as usize].push(nid(u));
    }
    let mut extra = Vec::new();
    for comp in reps.iter().skip(1) {
        let a = *comp.choose(&mut rng).expect("every component label has at least one node");
        let b0 = *reps[0].choose(&mut rng).expect("component 0 always exists");
        extra.push((a, b0));
    }
    g.with_edges(&extra)
}

/// "Dumbbell expander": two random `d`-regular expanders joined by a single
/// edge. Low global expansion (`α = Θ(1/n)`) despite high local expansion —
/// a stress case distinct from the barbell's huge `Δ`.
pub fn dumbbell_expander(half: usize, d: usize, seed: u64) -> Graph {
    let a = random_regular(half, d, seed);
    let b = random_regular(half, d, seed ^ 0x9E37_79B9);
    a.disjoint_union(&b).with_edges(&[(0, nid(half))])
}

/// Barabási–Albert preferential attachment: start from a clique on `m0 =
/// m+1` nodes; each subsequent node attaches `m` edges to existing nodes
/// chosen proportionally to degree (sampled by picking a uniform endpoint
/// of a uniform existing edge). Produces the heavy-tailed degree
/// distributions typical of real contact networks: a few high-degree hubs,
/// many low-degree leaves — connected by construction.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "each new node needs ≥ 1 edge");
    assert!(n > m, "need n > m");
    // generator stream from an explicit seed parameter. mtm-lint: allow(smallrng-outside-engine)
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Flat endpoint list: each edge contributes both endpoints, so a
    // uniform draw from it is a degree-proportional node draw.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    let m0 = m + 1;
    for u in 0..nid(m0) {
        for v in (u + 1)..nid(m0) {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
    for u in nid(m0)..nid(n) {
        chosen.clear();
        let mut guard = 0;
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            assert!(guard < 10_000, "preferential attachment sampling stuck");
        }
        for &t in &chosen {
            b.add_edge(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Star-of-cliques used in the classical-vs-mobile comparison (F6): a hub
/// node connected to `k` cliques of size `m` (one edge hub→each clique).
pub fn star_of_cliques(k: usize, m: usize) -> Graph {
    assert!(m >= 1);
    let n = 1 + k * m;
    let mut b = GraphBuilder::new(n);
    for c in 0..k {
        let base = nid(1 + c * m);
        for i in 0..nid(m) {
            for j in (i + 1)..nid(m) {
                b.add_edge(base + i, base + j);
            }
        }
        b.add_edge(0, base);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_shape() {
        let g = clique(6);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.min_degree(), 5);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn cycle_degenerate_sizes() {
        assert_eq!(cycle(1).edge_count(), 0);
        assert_eq!(cycle(3).edge_count(), 3);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        for u in 1..7 {
            assert_eq!(g.degree(u), 1);
        }
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn line_of_stars_shape() {
        // 4 stars of 3 points: 4 spine + 12 leaves.
        let g = line_of_stars(4, 3);
        assert_eq!(g.node_count(), 16);
        assert!(g.is_connected());
        // Interior spine nodes: 2 spine neighbors + 3 leaves.
        assert_eq!(g.degree(1), 5);
        assert_eq!(g.degree(2), 5);
        // End spine nodes: 1 spine neighbor + 3 leaves.
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 4);
        // Leaves have degree 1.
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn line_of_stars_sqrt_sizing() {
        let (g, s, p) = line_of_stars_sqrt(100);
        assert_eq!(s, 10);
        assert_eq!(p, 10);
        assert_eq!(g.node_count(), 110);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn dary_tree_shape() {
        let g = dary_tree(7, 2); // perfect binary tree of depth 2
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn torus_shape() {
        let g = torus(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 40);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2);
        assert_eq!(g.node_count(), 10);
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 2 * 6 + 3);
        assert_eq!(g.max_degree(), 4); // clique node adjacent to bridge
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.node_count(), 7);
        assert!(g.is_connected());
        assert_eq!(g.degree(6), 1);
    }

    #[test]
    fn random_regular_is_regular_connected() {
        for seed in 0..5 {
            let g = random_regular(24, 3, seed);
            assert!(g.is_connected());
            for u in 0..24u32 {
                assert_eq!(g.degree(u), 3, "node {u} not 3-regular (seed {seed})");
            }
        }
    }

    #[test]
    fn random_regular_deterministic_per_seed() {
        let a = random_regular(20, 4, 9);
        let b = random_regular(20, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn random_regular_cycles_is_regular_simple_connected() {
        for &(n, d) in &[(64usize, 8usize), (100, 4), (33, 2), (500, 6)] {
            for seed in 0..3 {
                let g = random_regular_cycles(n, d, seed);
                assert_eq!(g.node_count(), n);
                assert!(g.is_connected(), "n={n} d={d} seed={seed} disconnected");
                for u in 0..nid(n) {
                    assert_eq!(g.degree(u), d, "node {u} not {d}-regular (n={n}, seed={seed})");
                }
                g.validate().unwrap_or_else(|e| panic!("n={n} d={d} seed={seed}: {e}"));
            }
        }
    }

    #[test]
    fn random_regular_cycles_deterministic_per_seed() {
        let a = random_regular_cycles(200, 8, 77);
        let b = random_regular_cycles(200, 8, 77);
        assert_eq!(a, b);
        let c = random_regular_cycles(200, 8, 78);
        assert_ne!(a, c);
    }

    #[test]
    fn random_regular_cycles_repairs_dense_conflicts() {
        // n just above 2d: cross-cycle duplicate edges are near-certain,
        // forcing the 2-opt repair path to run.
        for seed in 0..20 {
            let g = random_regular_cycles(17, 8, seed);
            g.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(g.is_connected());
            assert_eq!(g.min_degree(), 8);
            assert_eq!(g.max_degree(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "even d")]
    fn random_regular_cycles_rejects_odd_degree() {
        random_regular_cycles(100, 3, 0);
    }

    #[test]
    #[should_panic(expected = "n > 2d")]
    fn random_regular_cycles_rejects_tiny_n() {
        random_regular_cycles(16, 8, 0);
    }

    #[test]
    fn erdos_renyi_connected_is_connected() {
        for seed in 0..5 {
            let g = erdos_renyi_connected(40, 0.05, seed);
            assert!(g.is_connected(), "seed {seed} disconnected");
            assert_eq!(g.node_count(), 40);
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty_p = erdos_renyi_connected(10, 0.0, 1);
        assert!(empty_p.is_connected()); // fully patched into a tree-ish graph
        assert_eq!(empty_p.edge_count(), 9);
        let full = erdos_renyi_connected(10, 1.0, 1);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn dumbbell_shape() {
        let g = dumbbell_expander(16, 3, 5);
        assert_eq!(g.node_count(), 32);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 4); // bridge endpoints gain one
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = preferential_attachment(100, 3, 7);
        assert_eq!(g.node_count(), 100);
        assert!(g.is_connected());
        // Every node beyond the seed clique attaches exactly m = 3 edges
        // (possibly deduplicated against none since targets are distinct):
        // |E| = C(4,2) + 96·3 = 6 + 288.
        assert_eq!(g.edge_count(), 6 + 96 * 3);
        assert!(g.min_degree() >= 3);
        // Heavy tail: the max degree should far exceed the minimum.
        assert!(g.max_degree() >= 3 * g.min_degree(), "Δ = {}", g.max_degree());
    }

    #[test]
    fn preferential_attachment_deterministic() {
        assert_eq!(preferential_attachment(50, 2, 3), preferential_attachment(50, 2, 3));
        assert_ne!(preferential_attachment(50, 2, 3), preferential_attachment(50, 2, 4));
    }

    #[test]
    fn star_of_cliques_shape() {
        let g = star_of_cliques(3, 4);
        assert_eq!(g.node_count(), 13);
        assert!(g.is_connected());
        assert_eq!(g.degree(0), 3);
    }
}
