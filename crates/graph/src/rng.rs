//! Deterministic seed derivation.
//!
//! Experiments fan hundreds of trials out across threads; each trial, and
//! each node within a trial, needs an independent RNG stream that is a pure
//! function of `(experiment seed, trial index, node id)` so results are
//! exactly reproducible regardless of thread scheduling. SplitMix64 is the
//! standard mixer for this purpose (it is the seeding function recommended
//! by the xoshiro authors); we use it only to *derive* seeds — simulation
//! randomness itself comes from `rand`'s `SmallRng` seeded with the derived
//! value.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One step of the SplitMix64 sequence: returns the mixed output for `state`.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive a child seed from a parent seed and a stream index.
#[inline]
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    // Mix the stream index through two rounds so adjacent indices land far
    // apart; a single xor would correlate low bits across streams.
    splitmix64(parent ^ splitmix64(stream.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// A `SmallRng` for `(parent seed, stream index)`.
#[inline]
pub fn stream_rng(parent: u64, stream: u64) -> SmallRng {
    // this IS the sanctioned stream constructor. mtm-lint: allow(smallrng-outside-engine)
    SmallRng::seed_from_u64(derive_seed(parent, stream))
}

/// A counter-based uniform draw in `[0, 1)`: a pure function of
/// `(seed, a, b)` with no sequential RNG state.
///
/// Unlike a stream RNG, the draw for one counter pair never depends on how
/// many other draws happened or in what order — which is what makes it safe
/// to evaluate from any shard of a parallel executor. The engine keys its
/// per-proposal loss coins on `(loss seed, round, proposer)` through this
/// function.
///
/// The output has 53 uniform mantissa bits (the full precision of an `f64`
/// in `[0, 1)`), derived by double-mixing the counters through
/// [`derive_seed`] and one extra [`splitmix64`] round.
#[inline]
pub fn counter_coin(seed: u64, a: u64, b: u64) -> f64 {
    let z = splitmix64(derive_seed(derive_seed(seed, a), b));
    // Top 53 bits → [0, 1) with the standard 2^-53 grid.
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn derived_seeds_differ_across_streams() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "collision in derived seeds");
    }

    #[test]
    fn derived_seeds_differ_across_parents() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn stream_rng_reproducible() {
        let mut a = stream_rng(123, 4);
        let mut b = stream_rng(123, 4);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn counter_coin_in_unit_interval_and_deterministic() {
        for a in 0..50u64 {
            for b in 0..50u64 {
                let x = counter_coin(7, a, b);
                assert!((0.0..1.0).contains(&x), "coin({a},{b}) = {x} out of [0,1)");
                assert_eq!(x, counter_coin(7, a, b));
            }
        }
        assert_ne!(counter_coin(7, 1, 2), counter_coin(8, 1, 2));
        assert_ne!(counter_coin(7, 1, 2), counter_coin(7, 2, 1));
    }

    #[test]
    fn counter_coin_is_roughly_uniform() {
        // 10k draws: the mean of U[0,1) concentrates near 1/2.
        let n = 10_000u64;
        let sum: f64 = (0..n).map(|i| counter_coin(42, i, i ^ 0xABCD)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn stream_rng_streams_diverge() {
        let mut a = stream_rng(123, 4);
        let mut b = stream_rng(123, 5);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
