//! Vertex expansion `α`.
//!
//! The paper (Section II) defines, for `S ⊆ V` with `0 < |S| ≤ n/2`,
//! `α(S) = |∂S| / |S|` where `∂S = { v ∉ S : N(v) ∩ S ≠ ∅ }`, and the vertex
//! expansion of the graph as `α = min_S α(S)`. Note `α(S)` can exceed 1 for
//! a specific `S` but the minimum always satisfies `α ≤ 1`.
//!
//! Computing `α` exactly is exponential (it is a min over all subsets).
//! Three tools are provided:
//!
//! * [`alpha_of_set`] — `α(S)` for a specific cut, exact, linear time;
//! * [`alpha_exact`] — the exact minimum via bitmask subset enumeration,
//!   for graphs with `n ≤ 24` (tests and Lemma V.1 validation);
//! * [`alpha_upper_bound_sampled`] — a heuristic search over structured cuts
//!   (BFS balls, degree prefixes, random sets + greedy descent) returning
//!   `min α(S)` over everything it tried — always an *upper bound* on `α`.
//!
//! Experiments on large graphs use the closed forms attached to each
//! [`crate::family::GraphFamily`], validated against [`alpha_exact`] at
//! small sizes in tests.

use crate::nid;
use crate::static_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Exact `α(S) = |∂S|/|S|` for a specific node set.
///
/// `S` is given as a boolean membership mask of length `n`. Panics if `S` is
/// empty.
pub fn alpha_of_set(g: &Graph, in_s: &[bool]) -> f64 {
    let size: usize = in_s.iter().filter(|&&b| b).count();
    assert!(size > 0, "α(S) undefined for empty S");
    boundary_size(g, in_s) as f64 / size as f64
}

/// `|∂S|`: the number of nodes outside `S` adjacent to `S`.
pub fn boundary_size(g: &Graph, in_s: &[bool]) -> usize {
    let n = g.node_count();
    debug_assert_eq!(in_s.len(), n);
    let mut count = 0usize;
    for v in 0..nid(n) {
        if in_s[v as usize] {
            continue;
        }
        if g.neighbors(v).iter().any(|&u| in_s[u as usize]) {
            count += 1;
        }
    }
    count
}

/// Exact vertex expansion by exhaustive subset enumeration using 64-bit
/// neighborhood masks. Only feasible for small graphs; panics for `n > 24`
/// (2^24 subsets ≈ 16M is the practical ceiling for tests).
pub fn alpha_exact(g: &Graph) -> f64 {
    let n = g.node_count();
    assert!(n >= 2, "α undefined for n < 2");
    assert!(n <= 24, "alpha_exact is exponential; use the sampled bound for n > 24");
    let masks: Vec<u64> =
        (0..nid(n)).map(|u| g.neighbors(u).iter().fold(0u64, |m, &v| m | (1u64 << v))).collect();
    let full: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
    let half = n / 2;
    let mut best = f64::INFINITY;
    for s in 1u64..=full {
        let size = s.count_ones() as usize;
        if size > half {
            continue;
        }
        // ∂S = (∪_{u∈S} N(u)) \ S
        let mut nbhd = 0u64;
        let mut bits = s;
        while bits != 0 {
            let u = bits.trailing_zeros() as usize;
            nbhd |= masks[u];
            bits &= bits - 1;
        }
        let boundary = (nbhd & !s).count_ones() as usize;
        let a = boundary as f64 / size as f64;
        if a < best {
            best = a;
        }
    }
    best
}

/// Heuristic upper bound on `α` for large graphs: the minimum `α(S)` over
/// a catalogue of candidate cuts. Deterministic for a fixed seed.
///
/// Candidates tried:
/// * BFS balls of every radius around `samples` random centers,
/// * prefixes of the degree-descending node order,
/// * `samples` uniformly random sets of random sizes, each improved by
///   greedy descent (move single nodes across the cut while `α(S)` drops).
pub fn alpha_upper_bound_sampled(g: &Graph, samples: usize, seed: u64) -> f64 {
    let n = g.node_count();
    assert!(n >= 2);
    let half = n / 2;
    // sampling stream from an explicit seed parameter. mtm-lint: allow(smallrng-outside-engine)
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best = f64::INFINITY;
    let mut in_s = vec![false; n];

    // BFS balls: grow from random centers, evaluating after each new node
    // joins in BFS order, which sweeps all ball radii in one pass.
    for _ in 0..samples.max(1) {
        let center = nid(rng.gen_range(0..n));
        in_s.iter_mut().for_each(|b| *b = false);
        let order = bfs_order(g, center);
        for (taken, &u) in order.iter().enumerate() {
            if taken + 1 > half {
                break;
            }
            in_s[u as usize] = true;
            let a = alpha_of_set(g, &in_s);
            if a < best {
                best = a;
            }
        }
    }

    // Degree-descending prefixes (captures hub-heavy minima like stars).
    let mut by_deg: Vec<NodeId> = (0..nid(n)).collect();
    by_deg.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));
    in_s.iter_mut().for_each(|b| *b = false);
    for (taken, &u) in by_deg.iter().enumerate() {
        if taken + 1 > half {
            break;
        }
        in_s[u as usize] = true;
        let a = alpha_of_set(g, &in_s);
        if a < best {
            best = a;
        }
    }

    // Random sets + greedy descent.
    let mut ids: Vec<NodeId> = (0..nid(n)).collect();
    for _ in 0..samples {
        let size = rng.gen_range(1..=half.max(1));
        ids.shuffle(&mut rng);
        in_s.iter_mut().for_each(|b| *b = false);
        for &u in &ids[..size] {
            in_s[u as usize] = true;
        }
        let a = greedy_descend(g, &mut in_s, half);
        if a < best {
            best = a;
        }
    }
    best
}

/// Greedy local search: repeatedly apply the single-node add/remove move
/// that most decreases `α(S)`, stopping at a local minimum. Returns the
/// final `α(S)`. `in_s` is modified in place.
fn greedy_descend(g: &Graph, in_s: &mut [bool], half: usize) -> f64 {
    let n = g.node_count();
    let mut current = alpha_of_set(g, in_s);
    loop {
        let size = in_s.iter().filter(|&&b| b).count();
        let mut best_move: Option<(usize, f64)> = None;
        for u in 0..n {
            let adding = !in_s[u];
            if adding && size + 1 > half {
                continue;
            }
            if !adding && size == 1 {
                continue;
            }
            in_s[u] = !in_s[u];
            let a = alpha_of_set(g, in_s);
            in_s[u] = !in_s[u];
            if a < best_move.map_or(current, |(_, b)| b) {
                best_move = Some((u, a));
            }
        }
        match best_move {
            Some((u, a)) if a < current => {
                in_s[u] = !in_s[u];
                current = a;
            }
            _ => return current,
        }
    }
}

/// Nodes in BFS order from `start` (only the reachable component).
fn bfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    seen[start as usize] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn clique_alpha_exact() {
        // K_n: every S with |S| ≤ n/2 has ∂S = V \ S, so α(S) = (n-|S|)/|S|,
        // minimized at |S| = n/2 → α = 1 for even n.
        let g = gen::clique(8);
        let a = alpha_exact(&g);
        assert!((a - 1.0).abs() < 1e-9, "K_8 α = {a}");
        let g = gen::clique(7); // |S| = 3 → α = 4/3
        let a = alpha_exact(&g);
        assert!((a - 4.0 / 3.0).abs() < 1e-9, "K_7 α = {a}");
    }

    #[test]
    fn path_alpha_exact() {
        // P_n: take a prefix half-line S, |∂S| = 1 → α = 1/⌊n/2⌋.
        let g = gen::path(10);
        let a = alpha_exact(&g);
        assert!((a - 1.0 / 5.0).abs() < 1e-9, "P_10 α = {a}");
    }

    #[test]
    fn cycle_alpha_exact() {
        // C_n: a contiguous arc S has |∂S| = 2 → α = 2/⌊n/2⌋.
        let g = gen::cycle(12);
        let a = alpha_exact(&g);
        assert!((a - 2.0 / 6.0).abs() < 1e-9, "C_12 α = {a}");
    }

    #[test]
    fn star_alpha_exact() {
        // Star S_{n-1}: S = half the leaves has ∂S = {hub} → α = 1/⌊n/2⌋.
        let g = gen::star(9);
        let a = alpha_exact(&g);
        assert!((a - 1.0 / 4.0).abs() < 1e-9, "star α = {a}");
    }

    #[test]
    fn alpha_always_at_most_one() {
        for (name, g) in [
            ("clique", gen::clique(6)),
            ("path", gen::path(9)),
            ("star", gen::star(8)),
            ("hypercube", gen::hypercube(3)),
            ("tree", gen::dary_tree(10, 2)),
        ] {
            let a = alpha_exact(&g);
            assert!(a <= 1.0 + 1e-12, "{name}: α = {a} > 1");
            assert!(a > 0.0, "{name}: α = {a} ≤ 0 on a connected graph");
        }
    }

    #[test]
    fn alpha_of_set_matches_manual() {
        // Path 0-1-2-3; S = {0,1}: ∂S = {2} → 1/2.
        let g = gen::path(4);
        let a = alpha_of_set(&g, &[true, true, false, false]);
        assert!((a - 0.5).abs() < 1e-12);
        // S = {1}: ∂S = {0, 2} → 2.
        let a = alpha_of_set(&g, &[false, true, false, false]);
        assert!((a - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn alpha_of_empty_set_panics() {
        let g = gen::path(3);
        alpha_of_set(&g, &[false, false, false]);
    }

    #[test]
    fn sampled_bound_dominates_exact() {
        // The sampled search returns min over candidate cuts ≥ true α.
        for seed in 0..3 {
            let g = gen::erdos_renyi_connected(14, 0.3, seed);
            let exact = alpha_exact(&g);
            let bound = alpha_upper_bound_sampled(&g, 30, seed);
            assert!(bound >= exact - 1e-9, "sampled {bound} below exact {exact} (seed {seed})");
            // On graphs this small the heuristic should be nearly tight.
            assert!(
                bound <= exact * 2.0 + 1e-9,
                "sampled {bound} far above exact {exact} (seed {seed})"
            );
        }
    }

    #[test]
    fn sampled_bound_finds_path_cut() {
        let g = gen::path(64);
        let bound = alpha_upper_bound_sampled(&g, 20, 1);
        // True α = 1/32; BFS-ball candidates from an endpoint find it.
        assert!(bound <= 1.0 / 16.0, "path bound too loose: {bound}");
    }

    #[test]
    fn boundary_size_examples() {
        let g = gen::star(5); // hub 0, leaves 1..4
        assert_eq!(boundary_size(&g, &[false, true, true, false, false]), 1);
        assert_eq!(boundary_size(&g, &[true, false, false, false, false]), 4);
    }
}
