//! Graph substrate for the mobile telephone model.
//!
//! This crate provides everything the simulator and the experiment harness
//! need to know about network topologies:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) undirected graph with
//!   dense `u32` node ids, the only graph representation used anywhere in
//!   the workspace.
//! * [`gen`] — generators for every topology family used by the paper's
//!   analysis and by our experiments (cliques, paths, stars, the §VI
//!   *line-of-stars* lower-bound construction, random regular graphs, …).
//! * [`expansion`] — vertex expansion `α`: exact exhaustive computation for
//!   small graphs, closed forms for generator families, and a sampling
//!   estimator for large graphs.
//! * [`matching`] — maximum bipartite matchings across cuts (Hopcroft–Karp),
//!   used to validate Lemma V.1 (`ν(B(S))/|S| ≥ α/4`) and Theorem V.2.
//! * [`dynamic`] — dynamic graphs with a stability factor `τ`: adversarial
//!   degree-preserving rewiring, leaf-shuffle adversaries, proximity
//!   mobility, and component-join schedules for the self-stabilization
//!   experiment.
//! * [`family`] — a serializable catalogue of named topology families, the
//!   vocabulary used by the CLI and the experiment harness.
//!
//! The paper models the network in round `r` as a connected undirected graph
//! `G_r = (V, E_r)`; a dynamic graph is a sequence of such graphs in which at
//! least `τ` rounds pass between changes (Section III of the paper). The
//! types here mirror those definitions exactly.

pub mod adversary;
pub mod dynamic;
pub mod expansion;
pub mod family;
pub mod faults;
pub mod gen;
pub mod io;
pub mod matching;
pub mod rng;
pub mod static_graph;

pub use dynamic::{DynamicTopology, StaticTopology};
pub use family::GraphFamily;
pub use faults::{FaultConfig, FaultyTopology, ScheduledCrashes};
pub use static_graph::{nid, Graph, GraphBuilder, NodeId};
