//! Deterministic fault injection for smartphone-style deployments.
//!
//! Real smartphone peer-to-peer networks (the deployments §IX of the paper
//! and the follow-up gossip papers target) lose devices to battery death,
//! app suspension, and users walking out of range. The wrappers here
//! inject those faults *underneath* any [`DynamicTopology`], so every
//! existing algorithm runs under faults unchanged:
//!
//! * [`FaultyTopology`] — seed-derived random faults: each node flips
//!   between up and down via a per-round Markov chain (crash with
//!   probability `crash`, recover with probability `recover`), and each
//!   surviving link is independently severed with probability `link_loss`
//!   that round. A down node keeps its protocol state but its radio is
//!   off: all incident edges vanish, so it neither appears in scans nor
//!   forms connections — exactly how the engine already treats isolated
//!   nodes, which is why no engine change is needed.
//! * [`ScheduledCrashes`] — explicit outage windows `(node, from, to)` for
//!   hand-computable tests and repeatable failure scenarios.
//!
//! Both are pure functions of `(seed, config, round)`: the crash chain for
//! round `r` draws from a stream derived from `(seed, r)`, never from
//! call-order-dependent state, so a run replays identically regardless of
//! how the surrounding code is scheduled.
//!
//! Message-level faults (dropping individual connection proposals) live in
//! the engine (`Engine::set_proposal_loss`), since proposals are not
//! visible at the topology layer.

use crate::dynamic::DynamicTopology;
use crate::rng::stream_rng;
use crate::static_graph::{from_edges, Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Parameters for [`FaultyTopology`]'s random fault process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Per-round probability that an up node crashes.
    pub crash: f64,
    /// Per-round probability that a down node recovers. With both rates
    /// nonzero the long-run fraction of down nodes is
    /// `crash / (crash + recover)`.
    pub recover: f64,
    /// Per-round probability that each individual surviving link is down
    /// this round (interference / range flutter).
    pub link_loss: f64,
}

impl FaultConfig {
    /// No faults at all — [`FaultyTopology`] becomes a transparent
    /// pass-through.
    pub const NONE: FaultConfig = FaultConfig { crash: 0.0, recover: 0.0, link_loss: 0.0 };

    /// Crash/recover churn with perfect links.
    pub fn crashes(crash: f64, recover: f64) -> FaultConfig {
        FaultConfig { crash, recover, link_loss: 0.0 }
    }

    /// Link flutter only, with all nodes permanently up.
    pub fn link_loss(p: f64) -> FaultConfig {
        FaultConfig { crash: 0.0, recover: 0.0, link_loss: p }
    }

    /// True iff every fault probability is zero.
    pub fn is_none(&self) -> bool {
        self.crash == 0.0 && self.recover == 0.0 && self.link_loss == 0.0
    }

    fn validate(&self) {
        for (name, p) in
            [("crash", self.crash), ("recover", self.recover), ("link_loss", self.link_loss)]
        {
            assert!((0.0..=1.0).contains(&p), "{name} probability must be in [0, 1], got {p}");
        }
    }
}

/// Seed-derived random crash/recover and link-failure adversary over any
/// base topology. See the module docs for the fault model.
///
/// Note the faulted graph is usually *disconnected* — a crashed node is
/// isolated by construction — which deliberately steps outside the paper's
/// connectivity assumption; F8 measures how gracefully the algorithms
/// degrade anyway.
pub struct FaultyTopology<T> {
    base: T,
    cfg: FaultConfig,
    seed: u64,
    up: Vec<bool>,
    /// Crash chain advanced through the end of this round (0 = initial).
    chain_round: u64,
    /// Round the cached `current` graph was built for (0 = none yet).
    built_round: u64,
    current: Graph,
}

impl<T: DynamicTopology> FaultyTopology<T> {
    pub fn new(base: T, cfg: FaultConfig, seed: u64) -> Self {
        cfg.validate();
        let n = base.node_count();
        FaultyTopology {
            base,
            cfg,
            seed,
            up: vec![true; n],
            chain_round: 0,
            built_round: 0,
            current: from_edges(n, &[]),
        }
    }

    /// True iff node `u` is up as of the last round built.
    pub fn is_up(&self, u: NodeId) -> bool {
        self.up[u as usize]
    }

    /// Number of up nodes as of the last round built.
    pub fn up_count(&self) -> usize {
        self.up.iter().filter(|&&b| b).count()
    }

    /// Advance the crash/recover Markov chain through `round`. One draw
    /// per node per round, from a stream derived from `(seed, round)` —
    /// the chain history is a pure function of the seed.
    fn advance_chain(&mut self, round: u64) {
        while self.chain_round < round {
            self.chain_round += 1;
            // Even streams drive the crash chain; odd streams (used in
            // `build`) drive link loss for the same round.
            let mut rng = stream_rng(self.seed, 2 * self.chain_round);
            for up in &mut self.up {
                let flip = if *up { self.cfg.crash } else { self.cfg.recover };
                if flip > 0.0 && rng.gen_bool(flip) {
                    *up = !*up;
                }
            }
        }
    }

    /// Build the effective graph for `round`: base edges minus edges with
    /// a down endpoint, minus this round's link-loss draws.
    fn build(&mut self, round: u64) {
        let mut link_rng = stream_rng(self.seed, 2 * round + 1);
        let base = self.base.graph_at(round);
        let mut b = GraphBuilder::with_capacity(base.node_count(), base.edge_count());
        for (u, v) in base.edges() {
            // Draw the link coin unconditionally so the stream position
            // depends only on the base edge list, not on crash outcomes.
            let link_down = self.cfg.link_loss > 0.0 && link_rng.gen_bool(self.cfg.link_loss);
            if self.up[u as usize] && self.up[v as usize] && !link_down {
                b.add_edge(u, v);
            }
        }
        self.current = b.build();
        self.built_round = round;
    }
}

impl<T: DynamicTopology> DynamicTopology for FaultyTopology<T> {
    fn node_count(&self) -> usize {
        self.base.node_count()
    }
    fn tau(&self) -> Option<u64> {
        if self.cfg.is_none() {
            self.base.tau()
        } else {
            Some(1) // faults may rewire the effective graph every round
        }
    }
    fn graph_at(&mut self, round: u64) -> &Graph {
        assert!(round >= 1, "rounds are 1-based");
        if self.cfg.is_none() {
            return self.base.graph_at(round);
        }
        if round != self.built_round {
            self.advance_chain(round);
            self.build(round);
        }
        &self.current
    }
    fn may_change_at(&self, round: u64) -> bool {
        !self.cfg.is_none() || self.base.may_change_at(round)
    }
    fn is_node_up(&self, u: NodeId, round: u64) -> bool {
        if self.cfg.crash == 0.0 && self.cfg.recover == 0.0 {
            return self.base.is_node_up(u, round);
        }
        // The chain is advanced by `graph_at`; the trait contract requires
        // the caller to have built `round` first, so `up` is current.
        debug_assert!(
            self.chain_round >= round,
            "is_node_up({u}, {round}) before graph_at({round}) advanced the crash chain"
        );
        self.up[u as usize]
    }
}

/// Explicit outage schedule: node `u` is down (radio off, all incident
/// edges removed) during each round window `from ≤ round < to`.
pub struct ScheduledCrashes<T> {
    base: T,
    outages: Vec<(NodeId, u64, u64)>,
    built_round: u64,
    current: Graph,
    down_scratch: Vec<bool>,
}

impl<T: DynamicTopology> ScheduledCrashes<T> {
    /// `outages` entries are `(node, from_round, to_round)` half-open
    /// windows; overlapping windows for one node union together.
    pub fn new(base: T, outages: Vec<(NodeId, u64, u64)>) -> Self {
        let n = base.node_count();
        for &(u, from, to) in &outages {
            assert!((u as usize) < n, "outage for nonexistent node {u}");
            assert!(
                from >= 1 && from < to,
                "outage window [{from}, {to}) must be ≥ 1 and nonempty"
            );
        }
        ScheduledCrashes {
            base,
            outages,
            built_round: 0,
            current: from_edges(n, &[]),
            down_scratch: vec![false; n],
        }
    }

    /// True iff node `u` is scheduled down at `round`.
    pub fn is_down(&self, u: NodeId, round: u64) -> bool {
        self.outages.iter().any(|&(v, from, to)| v == u && (from..to).contains(&round))
    }
}

impl<T: DynamicTopology> DynamicTopology for ScheduledCrashes<T> {
    fn node_count(&self) -> usize {
        self.base.node_count()
    }
    fn tau(&self) -> Option<u64> {
        if self.outages.is_empty() {
            self.base.tau()
        } else {
            Some(1)
        }
    }
    fn graph_at(&mut self, round: u64) -> &Graph {
        assert!(round >= 1, "rounds are 1-based");
        if round != self.built_round {
            self.down_scratch.fill(false);
            let mut any_down = false;
            for &(u, from, to) in &self.outages {
                if (from..to).contains(&round) {
                    self.down_scratch[u as usize] = true;
                    any_down = true;
                }
            }
            let base = self.base.graph_at(round);
            if any_down {
                let mut b = GraphBuilder::with_capacity(base.node_count(), base.edge_count());
                for (u, v) in base.edges() {
                    if !self.down_scratch[u as usize] && !self.down_scratch[v as usize] {
                        b.add_edge(u, v);
                    }
                }
                self.current = b.build();
            } else {
                self.current = base.clone();
            }
            self.built_round = round;
        }
        &self.current
    }
    fn may_change_at(&self, round: u64) -> bool {
        round <= 1
            || self.base.may_change_at(round)
            || self.outages.iter().any(|&(_, from, to)| round == from || round == to)
    }
    fn is_node_up(&self, u: NodeId, round: u64) -> bool {
        !self.is_down(u, round) && self.base.is_node_up(u, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::StaticTopology;
    use crate::gen;

    fn faulty(cfg: FaultConfig, seed: u64) -> FaultyTopology<StaticTopology> {
        FaultyTopology::new(StaticTopology::new(gen::clique(12)), cfg, seed)
    }

    #[test]
    fn no_faults_is_transparent() {
        let base = gen::clique(8);
        let mut t = FaultyTopology::new(StaticTopology::new(base.clone()), FaultConfig::NONE, 7);
        assert_eq!(t.graph_at(1), &base);
        assert_eq!(t.graph_at(500), &base);
        assert_eq!(t.tau(), None);
        assert!(!t.may_change_at(2));
    }

    #[test]
    fn same_seed_same_fault_history() {
        let cfg = FaultConfig { crash: 0.1, recover: 0.2, link_loss: 0.15 };
        let mut a = faulty(cfg, 42);
        let mut b = faulty(cfg, 42);
        for round in 1..=50 {
            assert_eq!(a.graph_at(round), b.graph_at(round), "round {round} diverged");
        }
    }

    #[test]
    fn fault_history_is_call_pattern_independent() {
        // Querying every round vs. skipping ahead must land on the same
        // graph: the chain is keyed by round, not by call count.
        let cfg = FaultConfig::crashes(0.2, 0.3);
        let mut dense = faulty(cfg, 9);
        let mut sparse = faulty(cfg, 9);
        let mut at25 = from_edges(0, &[]);
        for round in 1..=25 {
            at25 = dense.graph_at(round).clone();
        }
        assert_eq!(sparse.graph_at(25), &at25);
    }

    #[test]
    fn repeated_query_is_stable() {
        let cfg = FaultConfig { crash: 0.3, recover: 0.3, link_loss: 0.3 };
        let mut t = faulty(cfg, 3);
        let g = t.graph_at(4).clone();
        assert_eq!(t.graph_at(4), &g);
    }

    #[test]
    fn crashed_nodes_are_isolated() {
        let cfg = FaultConfig::crashes(0.4, 0.1);
        let mut t = faulty(cfg, 11);
        for round in 1..=30 {
            let g = t.graph_at(round).clone();
            for u in 0..g.node_count() {
                if !t.is_up(u as NodeId) {
                    assert_eq!(
                        g.degree(u as NodeId),
                        0,
                        "down node {u} has edges in round {round}"
                    );
                }
            }
        }
    }

    #[test]
    fn crash_chain_reaches_steady_state_mix() {
        // With symmetric rates roughly half the nodes should be down
        // eventually; just require both populations nonempty at some point.
        let cfg = FaultConfig::crashes(0.3, 0.3);
        let mut t = faulty(cfg, 5);
        let mut saw_mixed = false;
        for round in 1..=60 {
            let _ = t.graph_at(round);
            let up = t.up_count();
            if up > 0 && up < 12 {
                saw_mixed = true;
            }
        }
        assert!(saw_mixed, "crash chain never produced a mixed up/down population");
    }

    #[test]
    fn link_loss_only_keeps_all_nodes_up() {
        let mut t = faulty(FaultConfig::link_loss(0.5), 8);
        let full_edges = gen::clique(12).edge_count();
        let mut total = 0usize;
        for round in 1..=40 {
            let g = t.graph_at(round);
            assert_eq!(g.node_count(), 12);
            total += g.edge_count();
        }
        assert_eq!(t.up_count(), 12);
        let mean = total as f64 / 40.0;
        assert!(
            mean > 0.3 * full_edges as f64 && mean < 0.7 * full_edges as f64,
            "p=0.5 link loss should keep ~half the edges, kept {mean:.1}/{full_edges}"
        );
    }

    #[test]
    fn faulty_topology_reports_change_every_round() {
        let t = faulty(FaultConfig::crashes(0.01, 0.1), 1);
        assert!(t.may_change_at(1) && t.may_change_at(2) && t.may_change_at(999));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = faulty(FaultConfig::crashes(1.5, 0.1), 0);
    }

    #[test]
    fn scheduled_outage_removes_and_restores_edges() {
        let base = gen::star(5); // hub 0, leaves 1..4
        let mut t = ScheduledCrashes::new(StaticTopology::new(base.clone()), vec![(0, 3, 6)]);
        assert_eq!(t.graph_at(2), &base);
        for round in 3..6 {
            let g = t.graph_at(round);
            assert_eq!(g.edge_count(), 0, "hub down must isolate the star in round {round}");
        }
        assert_eq!(t.graph_at(6), &base);
        // Change rounds are exactly the window boundaries.
        assert!(t.may_change_at(3) && t.may_change_at(6));
        assert!(!t.may_change_at(4) && !t.may_change_at(5) && !t.may_change_at(7));
    }

    #[test]
    #[should_panic(expected = "nonexistent node")]
    fn outage_for_missing_node_rejected() {
        let _ = ScheduledCrashes::new(StaticTopology::new(gen::clique(3)), vec![(9, 1, 2)]);
    }

    #[test]
    fn outage_window_is_half_open() {
        // `(node, from, to)` means down for `from ≤ round < to`: inclusive
        // at `from`, exclusive at `to`.
        let t = ScheduledCrashes::new(StaticTopology::new(gen::clique(4)), vec![(1, 5, 8)]);
        assert!(!t.is_down(1, 4), "round before the window must be up");
        assert!(t.is_down(1, 5), "window start is inclusive");
        assert!(t.is_down(1, 6) && t.is_down(1, 7), "interior rounds are down");
        assert!(!t.is_down(1, 8), "window end is exclusive");
        assert!(!t.is_down(1, 9));
        // Other nodes are untouched, including at the boundaries.
        assert!(!t.is_down(0, 5) && !t.is_down(2, 7));
    }

    #[test]
    fn overlapping_outages_union() {
        let t =
            ScheduledCrashes::new(StaticTopology::new(gen::clique(4)), vec![(2, 3, 6), (2, 5, 9)]);
        for round in 3..9 {
            assert!(t.is_down(2, round), "round {round} inside the union must be down");
        }
        assert!(!t.is_down(2, 2) && !t.is_down(2, 9));
    }

    #[test]
    fn is_node_up_matches_is_down_and_graph() {
        let base = gen::clique(5);
        let mut t = ScheduledCrashes::new(StaticTopology::new(base), vec![(0, 2, 4), (3, 3, 5)]);
        for round in 1..=6 {
            let g = t.graph_at(round).clone();
            for u in 0..5u32 {
                assert_eq!(t.is_node_up(u, round), !t.is_down(u, round), "node {u} round {round}");
                if !t.is_node_up(u, round) {
                    assert_eq!(g.degree(u), 0, "down node {u} has edges in round {round}");
                }
            }
        }
    }

    #[test]
    fn crash_chain_deterministic_across_reseeded_clones() {
        // A fresh instance with the same (config, seed) replays the exact
        // crash→recover chain of an instance that has been running for a
        // while — and the chain history at every prefix matches, not just
        // the final graph.
        let cfg = FaultConfig::crashes(0.25, 0.15);
        let mut original = faulty(cfg, 1234);
        let mut up_history = Vec::new();
        for round in 1..=40 {
            let _ = original.graph_at(round);
            up_history.push((0..12).map(|u| original.is_up(u as NodeId)).collect::<Vec<bool>>());
        }
        let mut clone = faulty(cfg, 1234);
        for round in 1..=40 {
            let _ = clone.graph_at(round);
            let ups: Vec<bool> = (0..12).map(|u| clone.is_up(u as NodeId)).collect();
            assert_eq!(ups, up_history[(round - 1) as usize], "chain diverged at round {round}");
            for u in 0..12u32 {
                assert_eq!(clone.is_node_up(u, round), ups[u as usize]);
            }
        }
        // A different seed must (with overwhelming probability) produce a
        // different chain — the history is seed-derived, not constant.
        let mut other = faulty(cfg, 4321);
        let mut diverged = false;
        for round in 1..=40 {
            let _ = other.graph_at(round);
            let ups: Vec<bool> = (0..12).map(|u| other.is_up(u as NodeId)).collect();
            if ups != up_history[(round - 1) as usize] {
                diverged = true;
            }
        }
        assert!(diverged, "reseeding with a new seed never changed the chain");
    }
}
