//! The n = 4 certification matrix: every protocol of interest against every
//! connected 4-node topology under the full scheduling adversary.
//!
//! For protocols whose canonical state space closes (blind gossip, PUSH-PULL,
//! bit convergence with fixed tags) the matrix certifies *agreement safety*
//! (no doomed state: agreement stays reachable under every schedule), *no
//! deadlock* (no absorbing non-agreed state), and a *liveness bound* (the
//! maximum number of rounds a cooperative scheduler needs from any reachable
//! state). Maintained gossip's epoch counters drift without bound, so its row
//! is a bounded-horizon certificate instead: the epoch-regression invariant
//! holds on every explored transition and agreement is reachable within the
//! horizon.

use mtm_core::TagConfig;
use mtm_graph::static_graph::from_edges;
use mtm_graph::{Graph, NodeId};

use crate::explore::{analyze, explore, Analysis, CheckConfig, Exploration};
use crate::replay::replay_state;
use crate::spec::{
    BitConvergenceSpec, BlindGossipSpec, CheckSpec, MaintainedGossipSpec, PushPullSpec,
};

/// All 38 connected labeled 4-node graphs (the 2⁶ subsets of K₄'s edges,
/// filtered to connected ones), in deterministic order.
pub fn connected_graphs_4() -> Vec<Graph> {
    let pairs: [(NodeId, NodeId); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    let mut graphs = Vec::new();
    for mask in 0u32..64 {
        let edges: Vec<(NodeId, NodeId)> = pairs
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        let g = from_edges(4, &edges);
        if g.is_connected() {
            graphs.push(g);
        }
    }
    graphs
}

/// Aggregated certification result for one protocol over all 38 topologies.
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// Protocol name.
    pub protocol: &'static str,
    /// Number of topologies checked (always 38).
    pub graphs: usize,
    /// Topologies whose exploration closed (state space exhausted).
    pub closed: usize,
    /// Total distinct states across all topologies.
    pub total_states: usize,
    /// Largest single-topology state count.
    pub max_states: usize,
    /// Total transitions enumerated.
    pub transitions: u64,
    /// Doomed states found (agreement unreachable) — any nonzero is a
    /// safety violation.
    pub doomed: usize,
    /// Deadlock states found (absorbing, non-agreed).
    pub deadlocks: usize,
    /// Invariant violations found.
    pub violations: usize,
    /// Worst-case rounds-to-agreement over all reachable states and
    /// topologies (closed explorations only).
    pub max_agreement_distance: u64,
    /// Did every topology meet its certification criterion?
    pub certified: bool,
}

fn certify_graph<S: CheckSpec>(
    spec: &S,
    graph: &Graph,
    cfg: &CheckConfig,
    require_closed: bool,
    row: &mut MatrixRow,
) -> (Exploration<S::P>, Analysis) {
    let ex = explore(spec, graph, cfg);
    let an = analyze(spec, &ex);
    row.total_states += ex.state_count();
    row.max_states = row.max_states.max(ex.state_count());
    row.transitions += ex.transitions;
    row.violations += ex.violations.len();
    if ex.closed {
        row.closed += 1;
        row.doomed += an.doomed;
        row.deadlocks += an.deadlocks;
        row.max_agreement_distance =
            row.max_agreement_distance.max(an.max_agreement_distance.unwrap_or(0));
        if an.doomed > 0 || an.deadlocks > 0 || !ex.violations.is_empty() {
            row.certified = false;
        }
    } else {
        // Bounded-horizon certificate: invariants clean and agreement
        // reached somewhere within the horizon.
        if require_closed || !ex.violations.is_empty() || an.first_agreed.is_none() {
            row.certified = false;
        }
    }
    // Cross-validate one representative schedule per topology through the
    // real engine: the deepest state's shortest witness.
    if ex.state_count() > 1 {
        let target = u32::try_from(ex.state_count() - 1).expect("state index fits u32");
        if let Err(e) = replay_state(spec, graph, &ex, target) {
            row.certified = false;
            row.violations += 1;
            eprintln!("[{}] engine replay divergence: {e}", row.protocol);
        }
    }
    (ex, an)
}

fn empty_row(protocol: &'static str) -> MatrixRow {
    MatrixRow {
        protocol,
        graphs: 0,
        closed: 0,
        total_states: 0,
        max_states: 0,
        transitions: 0,
        doomed: 0,
        deadlocks: 0,
        violations: 0,
        max_agreement_distance: 0,
        certified: true,
    }
}

/// Run the full n = 4 certification matrix. Deterministic; used by the CI
/// `check-smoke` job, the `mtm check --certify` command, and experiment V1.
pub fn certification_matrix() -> Vec<MatrixRow> {
    let graphs = connected_graphs_4();
    let mut rows = Vec::new();

    // Blind gossip: fixed UIDs 1..4; state space is tiny and closes fast.
    {
        let spec = BlindGossipSpec { uids: vec![1, 2, 3, 4] };
        let cfg = CheckConfig { horizon: 32, ..CheckConfig::default() };
        let mut row = empty_row(spec.name());
        for g in &graphs {
            row.graphs += 1;
            certify_graph(&spec, g, &cfg, true, &mut row);
        }
        rows.push(row);
    }

    // Bit convergence: distinct tags 0..3 (k = 2, the honest-hash regime);
    // the β = 1 collision regime is exercised separately by the A1 witness.
    {
        let spec = BitConvergenceSpec {
            uids: vec![1, 2, 3, 4],
            tags: vec![0, 1, 2, 3],
            config: TagConfig { k: 2, group_len: 2 },
        };
        let cfg = CheckConfig { horizon: 64, ..CheckConfig::default() };
        let mut row = empty_row(spec.name());
        for g in &graphs {
            row.graphs += 1;
            certify_graph(&spec, g, &cfg, true, &mut row);
        }
        rows.push(row);
    }

    // PUSH-PULL: one source; informed sets grow monotonically, closes fast.
    {
        let spec = PushPullSpec { n: 4, sources: 1 };
        let cfg = CheckConfig { horizon: 32, ..CheckConfig::default() };
        let mut row = empty_row(spec.name());
        for g in &graphs {
            row.graphs += 1;
            certify_graph(&spec, g, &cfg, true, &mut row);
        }
        rows.push(row);
    }

    // Maintained gossip: bounded-horizon certificate (see module docs).
    // Timeout 4 keeps evidence alive across the diameter-3 worst case; the
    // horizon is enough for a cooperative scheduler to reach agreement on
    // every connected 4-node graph.
    {
        let spec = MaintainedGossipSpec { uids: vec![1, 2, 3, 4], timeout: 4 };
        let cfg = CheckConfig { horizon: 5, max_states: 400_000, ..CheckConfig::default() };
        let mut row = empty_row(spec.name());
        for g in &graphs {
            row.graphs += 1;
            certify_graph(&spec, g, &cfg, false, &mut row);
        }
        rows.push(row);
    }

    rows
}

/// The A1 β = 1 instance: K₄ with a minimum-tag collision (two nodes share
/// tag 0 with different UIDs). Returns the graph and spec; running
/// [`explore`]/[`analyze`] on them re-derives the experiment-A1 deadlock
/// exhaustively.
pub fn a1_beta1_instance() -> (Graph, BitConvergenceSpec) {
    let graph = mtm_graph::gen::clique(4);
    // β = 1 at n = 4 gives k = ⌈log₂ 4⌉ = 2 tag bits; the adversarial hash
    // outcome is a collision on the *minimum* tag: UIDs 1 and 2 both hash to
    // tag 0. Their advertised bit is identical in every group, so PPUSH can
    // never connect them, and any carrier of (0, uid 1) is bit-identical to
    // the node holding (0, uid 2) as well.
    let config = TagConfig::new(4, 1.0, 3);
    let spec = BitConvergenceSpec { uids: vec![1, 2, 3, 4], tags: vec![0, 0, 1, 1], config };
    (graph, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{analyze, explore, CheckConfig};
    use crate::replay::replay_state;

    #[test]
    fn there_are_38_connected_labeled_4_node_graphs() {
        assert_eq!(connected_graphs_4().len(), 38);
        assert!(connected_graphs_4().iter().all(Graph::is_connected));
    }

    #[test]
    fn a1_beta1_deadlock_found_and_replayed() {
        let (graph, spec) = a1_beta1_instance();
        let ex = explore(&spec, &graph, &CheckConfig::default());
        assert!(ex.closed, "A1 instance state space must close");
        let an = analyze(&spec, &ex);
        // Agreement is unreachable from the very start: the two minimum-tag
        // holders are bit-identical forever.
        assert_eq!(an.agreed_count, 0);
        assert_eq!(an.first_doomed, Some(0));
        let s = an.first_deadlock.expect("absorbing two-leader state exists");
        let witness = ex.witness(s);
        assert_eq!(witness.len(), ex.depth_of(s) as usize, "witness is the shortest schedule");
        // Replay through the real engine lands on the same wedged state.
        let outcome = replay_state(&spec, &graph, &ex, s).expect("engine replay matches");
        assert_eq!(outcome.rounds, u64::from(ex.depth_of(s)));
        assert!(outcome.fingerprint.is_some());
    }

    #[test]
    fn bit_convergence_distinct_tags_certifies_on_k4() {
        let spec = BitConvergenceSpec {
            uids: vec![1, 2, 3, 4],
            tags: vec![0, 1, 2, 3],
            config: TagConfig { k: 2, group_len: 2 },
        };
        let g = mtm_graph::gen::clique(4);
        let ex = explore(&spec, &g, &CheckConfig::default());
        assert!(ex.closed);
        let an = analyze(&spec, &ex);
        assert_eq!(an.doomed, 0);
        assert_eq!(an.deadlocks, 0);
        assert!(ex.violations.is_empty());
    }

    #[test]
    fn exploration_is_deterministic() {
        let spec = BlindGossipSpec { uids: vec![1, 2, 3, 4] };
        let cfg = CheckConfig::default();
        for g in connected_graphs_4().iter().take(5) {
            let a = explore(&spec, g, &cfg);
            let b = explore(&spec, g, &cfg);
            assert_eq!(a.state_count(), b.state_count());
            assert_eq!(a.transitions, b.transitions);
            assert_eq!(a.succs, b.succs);
        }
    }
}
