//! Per-protocol checking specifications.
//!
//! A [`CheckSpec`] tells the explorer everything protocol-specific it needs:
//! how to build the initial configuration, what the round period is (so
//! states reached at equivalent points of the protocol's round structure can
//! be merged), what "the network agrees" means, which per-transition
//! invariants must hold, and an optional canonicalization of the state words
//! (used to quotient out symmetries such as a uniform epoch shift).

use mtm_core::{
    BitConvergence, BlindGossip, MaintainedGossip, MaintenanceConfig, NonSyncBitConvergence, Ppush,
    PullOnly, PushOnly, PushPull, TagConfig,
};
use mtm_engine::{EpochView, LeaderView, ModelParams, Protocol, RumorView};

/// Iterate the indices of up (non-crashed) nodes under a crash bitmask.
pub fn up_nodes(n: usize, crashed: u64) -> impl Iterator<Item = usize> {
    (0..n).filter(move |&u| crashed & (1u64 << u) == 0)
}

/// Do all up nodes map to the same key under `f`? (Vacuously true if every
/// node crashed.)
fn agree_on<P, K: PartialEq>(nodes: &[P], crashed: u64, f: impl Fn(&P) -> K) -> bool {
    let mut it = up_nodes(nodes.len(), crashed).map(|u| f(&nodes[u]));
    match it.next() {
        None => true,
        Some(first) => it.all(|k| k == first),
    }
}

/// Everything the model checker needs to know about one protocol
/// configuration. The explorer itself is protocol-agnostic; it drives the
/// [`Protocol`] check interface (`enumerate_choices` / `apply_choice` /
/// `enumerate_actions` / `apply_action`) and consults the spec for the
/// property layer.
pub trait CheckSpec {
    /// The protocol under check.
    type P: Protocol + Clone + std::fmt::Debug;

    /// Short protocol name for reports.
    fn name(&self) -> &'static str;

    /// Model parameters the Engine replay must run under.
    fn params(&self) -> ModelParams;

    /// The initial configuration (one protocol instance per node).
    fn initial(&self) -> Vec<Self::P>;

    /// Period of the protocol's round structure: states are merged only when
    /// reached at the same round offset modulo this period. `1` for
    /// round-structure-free protocols; the phase length for synchronized
    /// bit convergence; the group length for the non-synchronized variant.
    fn period(&self) -> u64 {
        1
    }

    /// Optional canonicalization of the concatenated per-node state words
    /// used as the dedup key (the stored representative state stays raw so
    /// witness replay is exact). Default: identity.
    fn canonicalize(&self, _words: &mut [u64]) {}

    /// Does this configuration count as network agreement over up nodes?
    fn agreed(&self, nodes: &[Self::P], crashed: u64) -> bool;

    /// Per-transition safety invariant, checked on every explored edge
    /// (`prev` → `next` are raw pre-/post-round configurations).
    fn invariant(&self, _prev: &[Self::P], _next: &[Self::P]) -> Result<(), String> {
        Ok(())
    }

    /// One-line rendering of a configuration for reports.
    fn summarize(&self, nodes: &[Self::P]) -> String;
}

/// Blind gossip (§VI): agreement is every up node knowing the same minimum
/// UID.
pub struct BlindGossipSpec {
    /// Per-node UIDs.
    pub uids: Vec<u64>,
}

impl CheckSpec for BlindGossipSpec {
    type P = BlindGossip;

    fn name(&self) -> &'static str {
        "blind-gossip"
    }

    fn params(&self) -> ModelParams {
        ModelParams::mobile(0)
    }

    fn initial(&self) -> Vec<BlindGossip> {
        self.uids.iter().map(|&u| BlindGossip::new(u)).collect()
    }

    fn agreed(&self, nodes: &[BlindGossip], crashed: u64) -> bool {
        agree_on(nodes, crashed, LeaderView::leader)
    }

    fn summarize(&self, nodes: &[BlindGossip]) -> String {
        let best: Vec<u64> = nodes.iter().map(LeaderView::leader).collect();
        format!("best={best:?}")
    }
}

/// Bit convergence (§VII): agreement is every up node electing the same
/// leader UID. Rounds are merged modulo the phase length.
pub struct BitConvergenceSpec {
    /// Per-node UIDs.
    pub uids: Vec<u64>,
    /// Per-node `k`-bit ID tags (the adversary's choice of tag collisions is
    /// part of the checked instance).
    pub tags: Vec<u64>,
    /// Tag/group geometry shared by all nodes.
    pub config: TagConfig,
}

impl CheckSpec for BitConvergenceSpec {
    type P = BitConvergence;

    fn name(&self) -> &'static str {
        "bit-convergence"
    }

    fn params(&self) -> ModelParams {
        ModelParams::mobile(1)
    }

    fn initial(&self) -> Vec<BitConvergence> {
        self.uids
            .iter()
            .zip(&self.tags)
            .map(|(&uid, &tag)| BitConvergence::new(uid, tag, self.config))
            .collect()
    }

    fn period(&self) -> u64 {
        self.config.phase_len()
    }

    fn agreed(&self, nodes: &[BitConvergence], crashed: u64) -> bool {
        agree_on(nodes, crashed, LeaderView::leader)
    }

    fn summarize(&self, nodes: &[BitConvergence]) -> String {
        let leaders: Vec<u64> = nodes.iter().map(LeaderView::leader).collect();
        format!("leader={leaders:?}")
    }
}

/// PUSH-PULL rumor spreading: agreement is every up node informed.
pub struct PushPullSpec {
    /// Network size.
    pub n: usize,
    /// Nodes `0..sources` start informed.
    pub sources: usize,
}

impl CheckSpec for PushPullSpec {
    type P = PushPull;

    fn name(&self) -> &'static str {
        "push-pull"
    }

    fn params(&self) -> ModelParams {
        ModelParams::mobile(0)
    }

    fn initial(&self) -> Vec<PushPull> {
        PushPull::spawn(self.n, self.sources)
    }

    fn agreed(&self, nodes: &[PushPull], crashed: u64) -> bool {
        up_nodes(nodes.len(), crashed).all(|u| nodes[u].informed())
    }

    fn summarize(&self, nodes: &[PushPull]) -> String {
        let informed: Vec<u8> = nodes.iter().map(|p| u8::from(p.informed())).collect();
        format!("informed={informed:?}")
    }
}

/// PPUSH rumor spreading (`b = 1`, advertisement-driven).
pub struct PpushSpec {
    /// Network size.
    pub n: usize,
    /// Nodes `0..sources` start informed.
    pub sources: usize,
}

impl CheckSpec for PpushSpec {
    type P = Ppush;

    fn name(&self) -> &'static str {
        "ppush"
    }

    fn params(&self) -> ModelParams {
        ModelParams::mobile(1)
    }

    fn initial(&self) -> Vec<Ppush> {
        Ppush::spawn(self.n, self.sources)
    }

    fn agreed(&self, nodes: &[Ppush], crashed: u64) -> bool {
        up_nodes(nodes.len(), crashed).all(|u| nodes[u].informed())
    }

    fn summarize(&self, nodes: &[Ppush]) -> String {
        let informed: Vec<u8> = nodes.iter().map(|p| u8::from(p.informed())).collect();
        format!("informed={informed:?}")
    }
}

/// PUSH-only ablation.
pub struct PushOnlySpec {
    /// Network size.
    pub n: usize,
    /// Nodes `0..sources` start informed.
    pub sources: usize,
}

impl CheckSpec for PushOnlySpec {
    type P = PushOnly;

    fn name(&self) -> &'static str {
        "push-only"
    }

    fn params(&self) -> ModelParams {
        ModelParams::mobile(0)
    }

    fn initial(&self) -> Vec<PushOnly> {
        PushOnly::spawn(self.n, self.sources)
    }

    fn agreed(&self, nodes: &[PushOnly], crashed: u64) -> bool {
        up_nodes(nodes.len(), crashed).all(|u| nodes[u].informed())
    }

    fn summarize(&self, nodes: &[PushOnly]) -> String {
        let informed: Vec<u8> = nodes.iter().map(|p| u8::from(p.informed())).collect();
        format!("informed={informed:?}")
    }
}

/// PULL-only ablation.
pub struct PullOnlySpec {
    /// Network size.
    pub n: usize,
    /// Nodes `0..sources` start informed.
    pub sources: usize,
}

impl CheckSpec for PullOnlySpec {
    type P = PullOnly;

    fn name(&self) -> &'static str {
        "pull-only"
    }

    fn params(&self) -> ModelParams {
        ModelParams::mobile(0)
    }

    fn initial(&self) -> Vec<PullOnly> {
        PullOnly::spawn(self.n, self.sources)
    }

    fn agreed(&self, nodes: &[PullOnly], crashed: u64) -> bool {
        up_nodes(nodes.len(), crashed).all(|u| nodes[u].informed())
    }

    fn summarize(&self, nodes: &[PullOnly]) -> String {
        let informed: Vec<u8> = nodes.iter().map(|p| u8::from(p.informed())).collect();
        format!("informed={informed:?}")
    }
}

/// Maintained gossip (leader maintenance under churn, PR 6): agreement is
/// every up node in the same epoch backing the same candidate.
///
/// Epoch counters drift apart without bound under adversarial starvation, so
/// the raw state space does not close; the spec quotients a uniform epoch
/// shift out of the dedup key (the dynamics are shift-equivariant) and
/// additionally checks the per-transition *epoch regression* invariant: a
/// node's epoch never decreases across a round.
pub struct MaintainedGossipSpec {
    /// Per-node UIDs.
    pub uids: Vec<u64>,
    /// Failure-detection timeout (rounds of stale evidence before firing).
    pub timeout: u64,
}

impl CheckSpec for MaintainedGossipSpec {
    type P = MaintainedGossip;

    fn name(&self) -> &'static str {
        "maintained-gossip"
    }

    fn params(&self) -> ModelParams {
        ModelParams::mobile(0)
    }

    fn initial(&self) -> Vec<MaintainedGossip> {
        let cfg = MaintenanceConfig::new(self.timeout);
        self.uids.iter().map(|&u| MaintainedGossip::new(u, cfg)).collect()
    }

    fn canonicalize(&self, words: &mut [u64]) {
        // Words per node: [epoch, cand, age, grace]. Shift all epochs down by
        // the minimum so executions that differ only by a uniform epoch
        // offset merge.
        let min_epoch = words.chunks(4).map(|c| c[0]).min().unwrap_or(0);
        for chunk in words.chunks_mut(4) {
            chunk[0] -= min_epoch;
        }
    }

    fn agreed(&self, nodes: &[MaintainedGossip], crashed: u64) -> bool {
        agree_on(nodes, crashed, |p| (p.epoch(), p.leader()))
    }

    fn invariant(
        &self,
        prev: &[MaintainedGossip],
        next: &[MaintainedGossip],
    ) -> Result<(), String> {
        for (u, (p, q)) in prev.iter().zip(next).enumerate() {
            if q.epoch() < p.epoch() {
                return Err(format!(
                    "epoch regression at node {u}: {} -> {}",
                    p.epoch(),
                    q.epoch()
                ));
            }
        }
        Ok(())
    }

    fn summarize(&self, nodes: &[MaintainedGossip]) -> String {
        let view: Vec<(u64, u64)> = nodes.iter().map(|p| (p.epoch(), p.leader())).collect();
        format!("(epoch,cand)={view:?}")
    }
}

/// Non-synchronized bit convergence (§VIII): the only protocol with genuine
/// advertise-phase nondeterminism (the per-group random bit position), which
/// the checker enumerates as an adversary choice.
pub struct NonSyncSpec {
    /// Per-node UIDs.
    pub uids: Vec<u64>,
    /// Per-node `k`-bit ID tags.
    pub tags: Vec<u64>,
    /// Tag/group geometry shared by all nodes.
    pub config: TagConfig,
}

impl CheckSpec for NonSyncSpec {
    type P = NonSyncBitConvergence;

    fn name(&self) -> &'static str {
        "nonsync"
    }

    fn params(&self) -> ModelParams {
        ModelParams::mobile(self.config.nonsync_tag_bits())
    }

    fn initial(&self) -> Vec<NonSyncBitConvergence> {
        self.uids
            .iter()
            .zip(&self.tags)
            .map(|(&uid, &tag)| NonSyncBitConvergence::new(uid, tag, self.config))
            .collect()
    }

    fn period(&self) -> u64 {
        self.config.group_len
    }

    fn agreed(&self, nodes: &[NonSyncBitConvergence], crashed: u64) -> bool {
        agree_on(nodes, crashed, LeaderView::leader)
    }

    fn summarize(&self, nodes: &[NonSyncBitConvergence]) -> String {
        let leaders: Vec<u64> = nodes.iter().map(LeaderView::leader).collect();
        format!("leader={leaders:?}")
    }
}
