//! Exhaustive explicit-state exploration of the protocol × topology product
//! automaton under a full adversary.
//!
//! Per round the adversary controls, and the explorer enumerates:
//!
//! 1. **Crashes** (behind [`CheckConfig::max_crashes`]): any subset of still-up
//!    nodes within the remaining crash budget goes down permanently (edges to
//!    a crashed node vanish; the node keeps running over an empty scan, which
//!    is exactly what [`mtm_graph::faults::ScheduledCrashes`] produces).
//! 2. **Advertise randomness**: every combination of
//!    [`Protocol::enumerate_choices`] across nodes (nontrivial only for the
//!    non-synchronized bit-position choice).
//! 3. **Actions**: every combination of [`Protocol::enumerate_actions`] —
//!    this resolves the protocols' propose/listen coins and uniform target
//!    choices adversarially.
//! 4. **Acceptance**: for every listener with incoming proposals, each choice
//!    of one proposal to accept — and, behind [`CheckConfig::loss`], the
//!    choice to accept none (adversarial proposal loss). Per-listener single
//!    acceptance makes every enumerated accept set a matching by
//!    construction, mirroring `SingleUniform` resolution.
//!
//! States are deduplicated on `(round offset mod period, canonicalized state
//! words, crash mask)`; the stored representative keeps the *raw* first
//! reached configuration plus a predecessor edge carrying the exact
//! [`RoundSchedule`], so any state's shortest schedule is replayable through
//! the real [`mtm_engine::Engine`] via [`crate::replay`].

use std::collections::BTreeMap;

use mtm_engine::{Action, Protocol, RoundScript, Scan, Tag};
use mtm_graph::{Graph, NodeId};

use crate::spec::CheckSpec;

/// Convert a node index to a [`NodeId`] (node counts here are ≤ 6).
pub(crate) fn nid(u: usize) -> NodeId {
    NodeId::try_from(u).expect("node index fits NodeId")
}

/// Exploration bounds and adversary powers.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Maximum schedule depth (rounds) to explore.
    pub horizon: u64,
    /// Maximum number of distinct states to store before truncating.
    pub max_states: usize,
    /// Allow the adversary to drop any accepted proposal (a listener may
    /// accept none of its incoming proposals even when some arrived).
    pub loss: bool,
    /// Crash budget: the adversary may permanently crash up to this many
    /// nodes, at any round boundaries it likes.
    pub max_crashes: u32,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig { horizon: 64, max_states: 200_000, loss: false, max_crashes: 0 }
    }
}

/// One round of an adversary schedule: which nodes crash at the start of the
/// round, then the fully resolved round script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundSchedule {
    /// Nodes newly crashed at the start of this round.
    pub crashes: Vec<NodeId>,
    /// The resolved advertise/action/accept choices.
    pub script: RoundScript,
}

/// Why exploration stopped before closing the state space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Truncation {
    /// The round horizon was reached with frontier states left.
    Horizon,
    /// The state cap was hit; some successors were discarded.
    StateCap,
}

/// An invariant violation on one explored transition.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Index of the state the violating round started from.
    pub parent: u32,
    /// The violating round's schedule.
    pub schedule: RoundSchedule,
    /// Spec-provided description.
    pub message: String,
}

pub(crate) struct StateNode<P> {
    /// Raw (uncanonicalized) representative configuration.
    pub nodes: Vec<P>,
    /// Round offset modulo the spec period.
    pub offset: u64,
    /// Bitmask of crashed nodes.
    pub crashed: u64,
    /// BFS depth = number of rounds from the initial state.
    pub depth: u32,
    /// Predecessor edge: `(parent state, schedule of the connecting round)`.
    /// `None` only for the initial state.
    pub pred: Option<(u32, RoundSchedule)>,
}

/// The explored transition system.
pub struct Exploration<P> {
    pub(crate) states: Vec<StateNode<P>>,
    pub(crate) succs: Vec<Vec<u32>>,
    /// True when the frontier emptied before both bounds: every reachable
    /// state (up to canonicalization) has been expanded, so reachability
    /// analyses over this graph are exhaustive.
    pub closed: bool,
    /// Why exploration truncated, if it did.
    pub truncation: Option<Truncation>,
    /// Total transitions enumerated (including duplicates).
    pub transitions: u64,
    /// Invariant violations found on explored transitions.
    pub violations: Vec<Violation>,
}

impl<P> Exploration<P> {
    /// Number of distinct stored states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Raw representative configuration of state `s`.
    pub fn nodes_of(&self, s: u32) -> &[P] {
        &self.states[s as usize].nodes
    }

    /// BFS depth (rounds from initial) of state `s`.
    pub fn depth_of(&self, s: u32) -> u32 {
        self.states[s as usize].depth
    }

    /// Crash bitmask of state `s`.
    pub fn crashed_of(&self, s: u32) -> u64 {
        self.states[s as usize].crashed
    }

    /// Shortest adversary schedule from the initial state to `s` (by BFS
    /// predecessor chain; length equals `depth_of(s)`).
    pub fn witness(&self, s: u32) -> Vec<RoundSchedule> {
        let mut out = Vec::new();
        let mut cur = s;
        while let Some((p, sched)) = &self.states[cur as usize].pred {
            out.push(sched.clone());
            cur = *p;
        }
        out.reverse();
        out
    }
}

/// Mixed-radix odometer over `sizes`: yields every index vector `v` with
/// `v[i] < sizes[i]`. Yields a single empty vector for empty `sizes`, and
/// nothing if any size is zero.
struct Combos {
    sizes: Vec<usize>,
    idx: Vec<usize>,
    done: bool,
}

impl Combos {
    fn new(sizes: Vec<usize>) -> Combos {
        let done = sizes.contains(&0);
        Combos { idx: vec![0; sizes.len()], sizes, done }
    }
}

impl Iterator for Combos {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.idx.clone();
        let mut i = 0;
        loop {
            if i == self.sizes.len() {
                self.done = true;
                break;
            }
            self.idx[i] += 1;
            if self.idx[i] < self.sizes[i] {
                break;
            }
            self.idx[i] = 0;
            i += 1;
        }
        Some(out)
    }
}

fn state_key<S: CheckSpec>(
    spec: &S,
    nodes: &[S::P],
    offset: u64,
    crashed: u64,
) -> (u64, u64, Vec<u64>) {
    let mut words = Vec::with_capacity(nodes.len() * 4);
    for p in nodes {
        p.state_words(&mut words);
    }
    spec.canonicalize(&mut words);
    (offset, crashed, words)
}

/// Raw (uncanonicalized) state words of a configuration — the quantity the
/// Engine replay must reproduce exactly.
pub fn raw_words<P: Protocol>(nodes: &[P]) -> Vec<u64> {
    let mut words = Vec::with_capacity(nodes.len() * 4);
    for p in nodes {
        p.state_words(&mut words);
    }
    words
}

/// Breadth-first exhaustive exploration of `spec` on `graph` under `cfg`.
pub fn explore<S: CheckSpec>(spec: &S, graph: &Graph, cfg: &CheckConfig) -> Exploration<S::P> {
    let n = graph.node_count();
    assert!(n >= 1, "empty graph");
    assert!(n <= 6, "exhaustive exploration is limited to n <= 6 (got {n})");
    let period = spec.period().max(1);
    let init = spec.initial();
    assert_eq!(init.len(), n, "spec initial() size does not match graph");
    assert!(
        init.iter().all(Protocol::supports_check),
        "protocol does not implement the check interface"
    );

    let mut states: Vec<StateNode<S::P>> = Vec::new();
    let mut succs: Vec<Vec<u32>> = Vec::new();
    let mut index: BTreeMap<(u64, u64, Vec<u64>), u32> = BTreeMap::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut transitions = 0u64;
    let mut truncation: Option<Truncation> = None;

    index.insert(state_key(spec, &init, 0, 0), 0);
    states.push(StateNode { nodes: init, offset: 0, crashed: 0, depth: 0, pred: None });
    succs.push(Vec::new());

    // Protocols draw nothing from the RNG along the check interface; this
    // stream exists only to satisfy `on_connect`/`end_round` signatures.
    let mut dummy_rng = mtm_graph::rng::stream_rng(0, 0);

    // `states` is appended in BFS order, so the vec doubles as the queue.
    let mut cursor = 0usize;
    while cursor < states.len() {
        let sid = u32::try_from(cursor).expect("state index fits u32");
        cursor += 1;

        let parent = &states[sid as usize];
        if u64::from(parent.depth) >= cfg.horizon {
            truncation.get_or_insert(Truncation::Horizon);
            continue;
        }
        let p_nodes = parent.nodes.clone();
        let p_offset = parent.offset;
        let p_crashed = parent.crashed;
        let p_depth = parent.depth;
        // Canonical local round handed to the protocol: valid because the
        // check interface only keys on `local_round` modulo the period.
        let lr = p_offset + 1;
        let round = u64::from(p_depth) + 1;

        // 1. Crash choices.
        let up: Vec<usize> = (0..n).filter(|&u| p_crashed & (1u64 << u) == 0).collect();
        let budget = cfg.max_crashes.saturating_sub(p_crashed.count_ones());
        let mut crash_choices: Vec<u64> = Vec::new();
        for mask in 0u64..(1u64 << up.len()) {
            if mask.count_ones() <= budget {
                let mut crashed = p_crashed;
                for (i, &u) in up.iter().enumerate() {
                    if mask & (1u64 << i) != 0 {
                        crashed |= 1u64 << u;
                    }
                }
                crash_choices.push(crashed);
            }
        }

        for crashed in crash_choices {
            let new_crashes: Vec<NodeId> = (0..n)
                .filter(|&u| crashed & (1u64 << u) != 0 && p_crashed & (1u64 << u) == 0)
                .map(nid)
                .collect();
            // Neighbor lists with crashed nodes removed (a crashed node sees
            // an empty scan and keeps stepping, matching ScheduledCrashes).
            let nbrs: Vec<Vec<NodeId>> = (0..n)
                .map(|u| {
                    if crashed & (1u64 << u) != 0 {
                        Vec::new()
                    } else {
                        graph
                            .neighbors(nid(u))
                            .iter()
                            .copied()
                            .filter(|&v| crashed & (1u64 << v) == 0)
                            .collect()
                    }
                })
                .collect();

            // 2. Advertise choices.
            let choice_sets: Vec<Vec<u32>> =
                p_nodes.iter().map(|p| p.enumerate_choices(lr)).collect();
            let choice_sizes: Vec<usize> = choice_sets.iter().map(Vec::len).collect();
            for adv_idx in Combos::new(choice_sizes) {
                let advertise: Vec<u32> =
                    adv_idx.iter().enumerate().map(|(u, &i)| choice_sets[u][i]).collect();
                let mut adv_nodes = p_nodes.clone();
                let tags: Vec<Tag> = adv_nodes
                    .iter_mut()
                    .zip(&advertise)
                    .map(|(p, &c)| p.apply_choice(lr, c))
                    .collect();
                let scan_tags: Vec<Vec<Tag>> = nbrs
                    .iter()
                    .map(|row| row.iter().map(|&v| tags[v as usize]).collect())
                    .collect();
                let scan = |u: usize| Scan {
                    neighbors: &nbrs[u],
                    tags: &scan_tags[u],
                    round,
                    local_round: lr,
                };

                // 3. Action choices.
                let action_sets: Vec<Vec<Action>> =
                    (0..n).map(|u| adv_nodes[u].enumerate_actions(&scan(u))).collect();
                let action_sizes: Vec<usize> = action_sets.iter().map(Vec::len).collect();
                for act_idx in Combos::new(action_sizes) {
                    let actions: Vec<Action> =
                        act_idx.iter().enumerate().map(|(u, &i)| action_sets[u][i]).collect();

                    // 4. Acceptance choices: per listener with incoming
                    // proposals, one proposer (+ "accept none" under loss).
                    let mut incoming: Vec<Vec<NodeId>> = vec![Vec::new(); n];
                    for u in 0..n {
                        if let Action::Propose(v) = actions[u] {
                            if matches!(actions[v as usize], Action::Listen) {
                                incoming[v as usize].push(nid(u));
                            }
                        }
                    }
                    let receivers: Vec<usize> =
                        (0..n).filter(|&v| !incoming[v].is_empty()).collect();
                    let accept_sizes: Vec<usize> = receivers
                        .iter()
                        .map(|&v| incoming[v].len() + usize::from(cfg.loss))
                        .collect();
                    for acc_idx in Combos::new(accept_sizes) {
                        let mut accept: Vec<(NodeId, NodeId)> = Vec::new();
                        for (ri, &v) in receivers.iter().enumerate() {
                            if acc_idx[ri] < incoming[v].len() {
                                accept.push((incoming[v][acc_idx[ri]], nid(v)));
                            }
                        }

                        // Apply the resolved round.
                        let mut next = adv_nodes.clone();
                        for (u, node) in next.iter_mut().enumerate() {
                            node.apply_action(&scan(u), actions[u]);
                        }
                        for &(a, b) in &accept {
                            let pa = next[a as usize].payload();
                            let pb = next[b as usize].payload();
                            next[a as usize].on_connect(&pb, &mut dummy_rng);
                            next[b as usize].on_connect(&pa, &mut dummy_rng);
                        }
                        for node in &mut next {
                            node.end_round(lr, &mut dummy_rng);
                        }
                        transitions += 1;

                        let schedule = RoundSchedule {
                            crashes: new_crashes.clone(),
                            script: RoundScript {
                                advertise: advertise.clone(),
                                actions: actions.clone(),
                                accept: accept.clone(),
                            },
                        };
                        if let Err(message) = spec.invariant(&p_nodes, &next) {
                            violations.push(Violation {
                                parent: sid,
                                schedule: schedule.clone(),
                                message,
                            });
                        }

                        let offset2 = (p_offset + 1) % period;
                        let key = state_key(spec, &next, offset2, crashed);
                        let tid = if let Some(&t) = index.get(&key) {
                            t
                        } else if states.len() >= cfg.max_states {
                            truncation = Some(Truncation::StateCap);
                            continue;
                        } else {
                            let t = u32::try_from(states.len()).expect("state index fits u32");
                            index.insert(key, t);
                            states.push(StateNode {
                                nodes: next,
                                offset: offset2,
                                crashed,
                                depth: p_depth + 1,
                                pred: Some((sid, schedule)),
                            });
                            succs.push(Vec::new());
                            t
                        };
                        succs[sid as usize].push(tid);
                    }
                }
            }
        }
    }

    Exploration { states, succs, closed: truncation.is_none(), truncation, transitions, violations }
}

/// Reachability/property analysis over an [`Exploration`].
pub struct Analysis {
    /// Per-state: does the spec's agreement predicate hold?
    pub agreed: Vec<bool>,
    /// Number of agreed states.
    pub agreed_count: usize,
    /// Minimum-depth agreed state, if any was reached.
    pub first_agreed: Option<u32>,
    /// Per-state shortest distance (in rounds) to some agreed state;
    /// `u64::MAX` marks doomed states. Only computed on closed explorations.
    pub dist_to_agreement: Option<Vec<u64>>,
    /// Number of doomed states (agreement unreachable). Only meaningful on
    /// closed explorations; zero otherwise.
    pub doomed: usize,
    /// Minimum-depth doomed state.
    pub first_doomed: Option<u32>,
    /// Max over non-doomed states of the distance to agreement: the
    /// adversary can delay agreement at most this many rounds from anywhere
    /// (the liveness-within-bound certificate). Only on closed explorations.
    pub max_agreement_distance: Option<u64>,
    /// Per-state: absorbing fixed point (every infinite continuation keeps
    /// the raw node state words frozen). Only computed on closed
    /// explorations; empty otherwise.
    pub stuck: Vec<bool>,
    /// Minimum-depth *deadlock*: a stuck state that is not agreed — the
    /// network is wedged short of agreement and no schedule can ever change
    /// any node's state again.
    pub first_deadlock: Option<u32>,
    /// Number of deadlock states.
    pub deadlocks: usize,
}

/// Analyze agreement reachability, doom, and deadlocks.
///
/// Doom/deadlock/liveness-bound results require a closed exploration (the
/// successor relation must be complete to conclude anything about futures);
/// on truncated explorations only the `agreed` layer is populated.
pub fn analyze<S: CheckSpec>(spec: &S, ex: &Exploration<S::P>) -> Analysis {
    let m = ex.states.len();
    let mut agreed = vec![false; m];
    let mut agreed_count = 0usize;
    let mut first_agreed: Option<u32> = None;
    for (i, st) in ex.states.iter().enumerate() {
        if spec.agreed(&st.nodes, st.crashed) {
            agreed[i] = true;
            agreed_count += 1;
            if first_agreed.is_none() {
                // BFS order: the first hit has minimum depth.
                first_agreed = Some(u32::try_from(i).expect("state index fits u32"));
            }
        }
    }

    let mut analysis = Analysis {
        agreed,
        agreed_count,
        first_agreed,
        dist_to_agreement: None,
        doomed: 0,
        first_doomed: None,
        max_agreement_distance: None,
        stuck: Vec::new(),
        first_deadlock: None,
        deadlocks: 0,
    };
    if !ex.closed {
        return analysis;
    }

    // Reverse BFS from agreed states: dist[s] = shortest number of rounds
    // the *adversary cannot prevent being short of* — more precisely, the
    // shortest schedule suffix reaching agreement if the scheduler
    // cooperates. A state with no path to agreement is doomed: no schedule
    // whatsoever reaches agreement (possibility-liveness failure).
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (s, outs) in ex.succs.iter().enumerate() {
        for &t in outs {
            rev[t as usize].push(u32::try_from(s).expect("state index fits u32"));
        }
    }
    let mut dist = vec![u64::MAX; m];
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    for (i, &a) in analysis.agreed.iter().enumerate() {
        if a {
            dist[i] = 0;
            queue.push_back(u32::try_from(i).expect("state index fits u32"));
        }
    }
    while let Some(t) = queue.pop_front() {
        let d = dist[t as usize];
        for &s in &rev[t as usize] {
            if dist[s as usize] == u64::MAX {
                dist[s as usize] = d + 1;
                queue.push_back(s);
            }
        }
    }
    let mut doomed = 0usize;
    let mut first_doomed = None;
    let mut max_dist = 0u64;
    for (i, &d) in dist.iter().enumerate() {
        if d == u64::MAX {
            doomed += 1;
            if first_doomed.is_none() {
                first_doomed = Some(u32::try_from(i).expect("state index fits u32"));
            }
        } else {
            max_dist = max_dist.max(d);
        }
    }
    analysis.doomed = doomed;
    analysis.first_doomed = first_doomed;
    analysis.max_agreement_distance = Some(max_dist);
    analysis.dist_to_agreement = Some(dist);

    // Greatest fixpoint for "absorbing": start assuming every state is
    // frozen forever, then strike any state with a successor that changes
    // the raw words or that is itself not frozen. What survives is exactly
    // the set of states all of whose infinite continuations are stutters.
    let words: Vec<Vec<u64>> = ex.states.iter().map(|st| raw_words(&st.nodes)).collect();
    let mut stuck = vec![true; m];
    let mut changed = true;
    while changed {
        changed = false;
        for s in 0..m {
            if !stuck[s] {
                continue;
            }
            let frozen =
                ex.succs[s].iter().all(|&t| stuck[t as usize] && words[t as usize] == words[s]);
            if !frozen {
                stuck[s] = false;
                changed = true;
            }
        }
    }
    let mut deadlocks = 0usize;
    let mut first_deadlock = None;
    for (i, &st) in stuck.iter().enumerate() {
        if st && !analysis.agreed[i] {
            deadlocks += 1;
            if first_deadlock.is_none() {
                first_deadlock = Some(u32::try_from(i).expect("state index fits u32"));
            }
        }
    }
    analysis.stuck = stuck;
    analysis.deadlocks = deadlocks;
    analysis.first_deadlock = first_deadlock;
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BlindGossipSpec, MaintainedGossipSpec, PushPullSpec};
    use mtm_graph::gen;

    #[test]
    fn combos_enumerates_mixed_radix() {
        let all: Vec<Vec<usize>> = Combos::new(vec![2, 3]).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[5], vec![1, 2]);
        // Empty sizes yield exactly one empty combination.
        assert_eq!(Combos::new(Vec::new()).count(), 1);
        // A zero radix yields nothing.
        assert_eq!(Combos::new(vec![2, 0]).count(), 0);
    }

    #[test]
    fn blind_gossip_path3_certifies() {
        let spec = BlindGossipSpec { uids: vec![1, 2, 3] };
        let ex = explore(&spec, &gen::path(3), &CheckConfig::default());
        assert!(ex.closed);
        let an = analyze(&spec, &ex);
        assert_eq!(an.doomed, 0, "agreement must stay reachable under every schedule");
        assert_eq!(an.deadlocks, 0);
        // Liveness bound on a path of 3: two trades suffice from anywhere.
        assert!(
            an.max_agreement_distance.expect("certified analysis records an agreement distance")
                <= 3
        );
    }

    #[test]
    fn crashing_the_cut_vertex_dooms_blind_gossip() {
        // On the path 0-1-2 the adversary can crash the middle node before
        // the endpoints have exchanged anything; the survivors are
        // partitioned holding different minima — a genuinely doomed state
        // the crash-free analysis cannot see.
        let spec = BlindGossipSpec { uids: vec![1, 2, 3] };
        let cfg = CheckConfig { max_crashes: 1, ..CheckConfig::default() };
        let ex = explore(&spec, &gen::path(3), &cfg);
        assert!(ex.closed);
        let an = analyze(&spec, &ex);
        assert!(an.doomed > 0, "partitioning crash must doom some states");
        // Without the crash budget the same instance is clean.
        let ex0 = explore(&spec, &gen::path(3), &CheckConfig::default());
        assert_eq!(analyze(&spec, &ex0).doomed, 0);
    }

    #[test]
    fn proposal_loss_does_not_break_push_pull_liveness() {
        let spec = PushPullSpec { n: 3, sources: 1 };
        let cfg = CheckConfig { loss: true, ..CheckConfig::default() };
        let ex = explore(&spec, &gen::path(3), &cfg);
        assert!(ex.closed);
        let an = analyze(&spec, &ex);
        assert_eq!(an.doomed, 0);
        assert_eq!(an.deadlocks, 0);
    }

    #[test]
    fn maintained_gossip_horizon_exploration_keeps_epoch_invariant() {
        let spec = MaintainedGossipSpec { uids: vec![1, 2, 3], timeout: 4 };
        let cfg = CheckConfig { horizon: 4, ..CheckConfig::default() };
        let ex = explore(&spec, &gen::path(3), &cfg);
        // Epoch drift keeps the space from closing; the run truncates at the
        // horizon with the invariant intact and agreement reached inside it.
        assert_eq!(ex.truncation, Some(Truncation::Horizon));
        assert!(ex.violations.is_empty());
        let an = analyze(&spec, &ex);
        assert!(an.first_agreed.is_some());
    }
}
