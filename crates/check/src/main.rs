fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mtm_check::cli::run(&args));
}
