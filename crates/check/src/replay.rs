//! Cross-validation of checker schedules against the real executor.
//!
//! Any state the explorer reaches carries a shortest adversary schedule
//! (crashes + fully resolved [`mtm_engine::RoundScript`]s). Replaying that
//! schedule through [`mtm_engine::Engine::step_scripted`] — the production
//! round executor with the adversary's choices substituted for the random
//! ones — must land on exactly the state the checker predicted, word for
//! word and fingerprint for fingerprint. This closes the loop between the
//! abstract transition relation the checker enumerates and the concrete one
//! the simulator executes.

use mtm_engine::{ActivationSchedule, Engine, Protocol};
use mtm_graph::faults::ScheduledCrashes;
use mtm_graph::{Graph, NodeId, StaticTopology};

use crate::explore::{raw_words, Exploration, RoundSchedule};
use crate::spec::CheckSpec;

/// End state of a scripted Engine replay.
pub struct ReplayOutcome {
    /// `Engine::network_fingerprint()` after the last scripted round (`None`
    /// for protocols without a state fingerprint).
    pub fingerprint: Option<u64>,
    /// Concatenated per-node raw state words after the last scripted round.
    pub words: Vec<u64>,
    /// Rounds executed.
    pub rounds: u64,
}

/// Replay `schedule` through a real [`Engine`] on `graph`.
///
/// Crashes in the schedule become permanent [`ScheduledCrashes`] outages
/// starting at their round; every round is then driven by
/// [`Engine::step_scripted`], so the engine's own audit layer (tag widths,
/// proposal visibility, matching shape, payload budget) validates the
/// checker's schedule as a side effect.
pub fn replay<S: CheckSpec>(spec: &S, graph: &Graph, schedule: &[RoundSchedule]) -> ReplayOutcome {
    let n = graph.node_count();
    let mut outages: Vec<(NodeId, u64, u64)> = Vec::new();
    for (i, rs) in schedule.iter().enumerate() {
        let from = u64::try_from(i).expect("round fits u64") + 1;
        for &u in &rs.crashes {
            outages.push((u, from, u64::MAX));
        }
    }
    let topology = ScheduledCrashes::new(StaticTopology::new(graph.clone()), outages);
    let mut engine = Engine::new(
        topology,
        spec.params(),
        ActivationSchedule::synchronized(n),
        spec.initial(),
        0,
    );
    for rs in schedule {
        engine.step_scripted(&rs.script);
    }
    ReplayOutcome {
        fingerprint: engine.network_fingerprint(),
        words: raw_words(engine.nodes()),
        rounds: engine.round(),
    }
}

/// Replay the shortest schedule to state `target` and compare the Engine's
/// end state against the checker's stored representative.
///
/// Returns the matching outcome, or a description of the first divergence.
pub fn replay_state<S: CheckSpec>(
    spec: &S,
    graph: &Graph,
    ex: &Exploration<S::P>,
    target: u32,
) -> Result<ReplayOutcome, String> {
    let schedule = ex.witness(target);
    let outcome = replay(spec, graph, &schedule);
    let expected = raw_words(ex.nodes_of(target));
    if outcome.words != expected {
        return Err(format!(
            "replay diverged from checker at state {target}: engine words {:?}, checker words {expected:?}",
            outcome.words
        ));
    }
    let expected_fp = network_fingerprint_of(ex.nodes_of(target));
    if outcome.fingerprint != expected_fp {
        return Err(format!(
            "replay fingerprint mismatch at state {target}: engine {:?}, checker {expected_fp:?}",
            outcome.fingerprint
        ));
    }
    Ok(outcome)
}

/// The checker-side network fingerprint of a configuration, folded exactly
/// as [`Engine::network_fingerprint`] folds per-node state fingerprints.
pub fn network_fingerprint_of<P: Protocol>(nodes: &[P]) -> Option<u64> {
    let mut acc = mtm_engine::fingerprint::SEED;
    for p in nodes {
        acc = mtm_engine::fingerprint::mix(acc, p.state_fingerprint()?);
    }
    Some(acc)
}
