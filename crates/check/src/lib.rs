//! `mtm-check`: explicit-state exhaustive model checking for mobile
//! telephone model protocols at small scale (n ≤ 6, bounded rounds).
//!
//! Randomized protocol analysis (the rest of this repo) answers "what
//! usually happens"; this crate answers "what can *ever* happen". It
//! replaces every random choice — propose/listen coins, uniform neighbor
//! targets, uniform acceptance among proposals, the non-synchronized
//! protocol's bit positions, and optionally proposal loss and crashes — with
//! an adversary, and enumerates the complete product automaton of protocol ×
//! topology under that adversary:
//!
//! * **Safety** — no reachable state is *doomed* (agreement unreachable
//!   under every continuation schedule) and no protocol invariant (e.g.
//!   maintained gossip's epoch monotonicity) is violated on any transition.
//! * **Liveness-within-bound** — from every non-doomed state a cooperative
//!   scheduler reaches agreement within a computed bound.
//! * **Deadlock** — an absorbing non-agreed state (no schedule can ever
//!   change any node's durable state again), reported with the *minimal*
//!   adversary schedule reaching it.
//!
//! Every counterexample schedule is replayed through the production
//! [`mtm_engine::Engine`] via [`mtm_engine::Engine::step_scripted`] and must
//! reproduce the checker's predicted end state exactly (state words and
//! network fingerprint) — the abstract transition relation is continuously
//! cross-validated against the concrete executor, including its audit layer.
//!
//! The flagship use is re-deriving experiment A1's β = 1 finding
//! exhaustively: with a minimum-tag collision, bit convergence wedges into
//! an absorbing two-leader state ([`matrix::a1_beta1_instance`]), and the
//! shortest schedule into it is printed and engine-verified. The
//! [`matrix::certification_matrix`] then certifies the main protocols on all
//! 38 connected 4-node topologies under the full adversary.

pub mod cli;
pub mod explore;
pub mod matrix;
pub mod replay;
pub mod spec;

pub use explore::{
    analyze, explore, Analysis, CheckConfig, Exploration, RoundSchedule, Truncation, Violation,
};
pub use matrix::{a1_beta1_instance, certification_matrix, connected_graphs_4, MatrixRow};
pub use replay::{network_fingerprint_of, replay, replay_state, ReplayOutcome};
pub use spec::{
    BitConvergenceSpec, BlindGossipSpec, CheckSpec, MaintainedGossipSpec, NonSyncSpec, PpushSpec,
    PullOnlySpec, PushOnlySpec, PushPullSpec,
};
