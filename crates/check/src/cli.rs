//! Command-line driver, shared by the `mtm-check` binary and the `mtm check`
//! subcommand.

use mtm_core::TagConfig;
use mtm_engine::Action;
use mtm_graph::static_graph::from_edges;
use mtm_graph::{gen, Graph, NodeId};

use crate::explore::{analyze, explore, CheckConfig, RoundSchedule, Truncation};
use crate::matrix::{a1_beta1_instance, certification_matrix};
use crate::replay::replay_state;
use crate::spec::{
    BitConvergenceSpec, BlindGossipSpec, CheckSpec, MaintainedGossipSpec, NonSyncSpec, PpushSpec,
    PullOnlySpec, PushOnlySpec, PushPullSpec,
};

const USAGE: &str = "\
mtm-check: exhaustive adversarial-schedule model checker (n <= 6)

USAGE:
    mtm-check --certify
    mtm-check --protocol <name> [options]

PROTOCOLS:
    blind-gossip | bit-convergence | nonsync | push-pull | ppush |
    push-only | pull-only | maintained-gossip
    (blind-gossip with --beta set is redirected to bit-convergence, the
    paper's \"blind gossip + beta-bit hashed tags\" construction.)

OPTIONS:
    --topology <spec>     clique:N | path:N | cycle:N | star:N | edge list
                          \"0-1,1-2,...\"            [default: clique:4]
    --uids a,b,...        per-node UIDs             [default: 1..=N]
    --tags a,b,...        per-node ID tags (bit-convergence / nonsync)
    --tag-seed <s>        sample tags uniformly instead (honest-hash regime)
    --beta <f>            tag bits k = ceil(beta * log2 N)
    --k <bits>            override tag bit count directly
    --timeout <t>         maintained-gossip failure timeout  [default: 4]
    --sources <s>         rumor protocols: informed seed count [default: 1]
    --rounds <h>          exploration horizon (rounds)       [default: 64]
    --max-states <m>      state cap                     [default: 200000]
    --loss                adversary may drop any accepted proposal
    --max-crashes <k>     adversary may permanently crash up to k nodes
    --certify             run the full n=4 certification matrix

EXIT CODES:
    0 clean  1 safety/certification violation  2 usage  3 deadlock found";

fn usage() -> i32 {
    eprintln!("{USAGE}");
    2
}

struct Opts {
    protocol: String,
    topology: String,
    uids: Option<Vec<u64>>,
    tags: Option<Vec<u64>>,
    tag_seed: Option<u64>,
    beta: Option<f64>,
    k: Option<u32>,
    timeout: u64,
    sources: usize,
    cfg: CheckConfig,
    certify: bool,
}

fn parse_list(s: &str) -> Option<Vec<u64>> {
    s.split(',').map(|t| t.trim().parse().ok()).collect()
}

fn parse_topology(spec: &str) -> Option<Graph> {
    if let Some((family, count)) = spec.split_once(':') {
        let n: usize = count.parse().ok()?;
        if !(2..=6).contains(&n) {
            eprintln!("error: exhaustive checking needs 2 <= n <= 6 (got {n})");
            return None;
        }
        return match family {
            "clique" | "complete" => Some(gen::clique(n)),
            "path" | "line" => Some(gen::path(n)),
            "cycle" | "ring" => Some(gen::cycle(n)),
            "star" => Some(gen::star(n)),
            _ => {
                eprintln!("error: unknown topology family '{family}'");
                None
            }
        };
    }
    // Explicit edge list "0-1,1-2".
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max = 0;
    for part in spec.split(',') {
        let (a, b) = part.trim().split_once('-')?;
        let a: NodeId = a.parse().ok()?;
        let b: NodeId = b.parse().ok()?;
        max = max.max(a).max(b);
        edges.push((a, b));
    }
    let n = usize::try_from(max).ok()? + 1;
    if n > 6 {
        eprintln!("error: exhaustive checking needs n <= 6 (got {n})");
        return None;
    }
    let g = from_edges(n, &edges);
    if !g.is_connected() {
        eprintln!("error: topology must be connected");
        return None;
    }
    Some(g)
}

fn parse_opts(args: &[String]) -> Option<Opts> {
    let mut opts = Opts {
        protocol: String::new(),
        topology: "clique:4".to_string(),
        uids: None,
        tags: None,
        tag_seed: None,
        beta: None,
        k: None,
        timeout: 4,
        sources: 1,
        cfg: CheckConfig::default(),
        certify: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take = || {
            i += 1;
            args.get(i).cloned()
        };
        match flag {
            "--certify" => opts.certify = true,
            "--loss" => opts.cfg.loss = true,
            "--protocol" => opts.protocol = take()?,
            "--topology" => opts.topology = take()?,
            "--uids" => opts.uids = Some(parse_list(&take()?)?),
            "--tags" => opts.tags = Some(parse_list(&take()?)?),
            "--tag-seed" => opts.tag_seed = Some(take()?.parse().ok()?),
            "--beta" => opts.beta = Some(take()?.parse().ok()?),
            "--k" => opts.k = Some(take()?.parse().ok()?),
            "--timeout" => opts.timeout = take()?.parse().ok()?,
            "--sources" => opts.sources = take()?.parse().ok()?,
            "--rounds" => opts.cfg.horizon = take()?.parse().ok()?,
            "--max-states" => opts.cfg.max_states = take()?.parse().ok()?,
            "--max-crashes" => opts.cfg.max_crashes = take()?.parse().ok()?,
            "--help" | "-h" => return None,
            other => {
                eprintln!("error: unknown flag '{other}'");
                return None;
            }
        }
        i += 1;
    }
    Some(opts)
}

fn fmt_action(a: Action) -> String {
    match a {
        Action::Listen => "L".to_string(),
        Action::Propose(v) => format!("P->{v}"),
    }
}

/// Render one schedule round in a replayable form.
fn fmt_round(i: usize, rs: &RoundSchedule) -> String {
    let actions: Vec<String> = rs.script.actions.iter().map(|&a| fmt_action(a)).collect();
    format!(
        "  round {:>2}: crashes={:?} advertise={:?} actions=[{}] accept={:?}",
        i + 1,
        rs.crashes,
        rs.script.advertise,
        actions.join(", "),
        rs.script.accept
    )
}

/// Explore, analyze, report, and cross-validate one spec on one graph.
/// Returns the process exit code.
fn run_spec<S: CheckSpec>(spec: &S, graph: &Graph, cfg: &CheckConfig) -> i32 {
    println!(
        "checking {} on {} nodes / {} edges (horizon {}, max {} states{}{})",
        spec.name(),
        graph.node_count(),
        graph.edge_count(),
        cfg.horizon,
        cfg.max_states,
        if cfg.loss { ", proposal loss" } else { "" },
        if cfg.max_crashes > 0 { ", crashes" } else { "" },
    );
    let ex = explore(spec, graph, cfg);
    let an = analyze(spec, &ex);
    match ex.truncation {
        None => println!(
            "state space CLOSED: {} states, {} transitions",
            ex.state_count(),
            ex.transitions
        ),
        Some(Truncation::Horizon) => println!(
            "TRUNCATED at horizon {}: {} states, {} transitions (reachability results are lower bounds)",
            cfg.horizon,
            ex.state_count(),
            ex.transitions
        ),
        Some(Truncation::StateCap) => println!(
            "TRUNCATED at state cap {}: {} transitions (reachability results are lower bounds)",
            cfg.max_states, ex.transitions
        ),
    }
    println!(
        "agreement states: {} of {}{}",
        an.agreed_count,
        ex.state_count(),
        an.first_agreed
            .map(|s| format!(" (earliest at depth {})", ex.depth_of(s)))
            .unwrap_or_default()
    );

    let mut code = 0;
    for v in ex.violations.iter().take(3) {
        println!(
            "INVARIANT VIOLATION from state {} (depth {}): {}",
            v.parent,
            ex.depth_of(v.parent),
            v.message
        );
        println!("{}", fmt_round(ex.depth_of(v.parent) as usize, &v.schedule));
        code = 1;
    }
    if ex.violations.len() > 3 {
        println!("... and {} more violations", ex.violations.len() - 3);
    }

    if ex.closed {
        match an.max_agreement_distance {
            Some(d) if an.agreed_count > 0 => {
                println!("liveness: every non-doomed state reaches agreement within {d} rounds");
            }
            _ => {}
        }
        if an.doomed > 0 {
            let s = an.first_doomed.expect("doomed count nonzero");
            println!(
                "SAFETY: {} doomed states (agreement unreachable); earliest at depth {}",
                an.doomed,
                ex.depth_of(s)
            );
            code = code.max(1);
        }
        if let Some(s) = an.first_deadlock {
            println!(
                "DEADLOCK: {} absorbing non-agreed states; minimal witness ({} rounds) to the earliest:",
                an.deadlocks,
                ex.depth_of(s)
            );
            let witness = ex.witness(s);
            for (i, rs) in witness.iter().enumerate() {
                println!("{}", fmt_round(i, rs));
            }
            println!("  wedged state: {}", spec.summarize(ex.nodes_of(s)));
            match replay_state(spec, graph, &ex, s) {
                Ok(out) => match out.fingerprint {
                    Some(fp) => println!(
                        "  engine replay confirms: {} scripted rounds reach the same stuck state (fingerprint {fp:#018x})",
                        out.rounds
                    ),
                    None => println!(
                        "  engine replay confirms: {} scripted rounds reach the same stuck state (word-for-word)",
                        out.rounds
                    ),
                },
                Err(e) => {
                    println!("  ENGINE REPLAY DIVERGED: {e}");
                    return 1;
                }
            }
            return 3;
        }
        if code == 0 {
            println!("certified: no doomed state, no deadlock, no invariant violation");
        }
    } else {
        println!("(doom/deadlock analysis skipped: exploration did not close)");
        if an.first_agreed.is_none() {
            println!("WARNING: no agreement state reached within the explored horizon");
            code = code.max(1);
        }
    }
    // Cross-validate the deepest state's schedule even on clean runs.
    if ex.state_count() > 1 {
        let target = u32::try_from(ex.state_count() - 1).expect("state index fits u32");
        match replay_state(spec, graph, &ex, target) {
            Ok(_) => println!(
                "engine replay cross-check: deepest state (depth {}) reproduced exactly",
                ex.depth_of(target)
            ),
            Err(e) => {
                println!("ENGINE REPLAY DIVERGED: {e}");
                code = code.max(1);
            }
        }
    }
    code
}

fn run_certify() -> i32 {
    println!("n=4 certification matrix: every protocol x all 38 connected 4-node topologies");
    println!(
        "{:<18} {:>6} {:>7} {:>9} {:>11} {:>7} {:>9} {:>10} {:>9} {:>10}",
        "protocol",
        "graphs",
        "closed",
        "states",
        "transitions",
        "doomed",
        "deadlocks",
        "violations",
        "max-dist",
        "certified"
    );
    let rows = certification_matrix();
    let mut ok = true;
    for r in &rows {
        ok &= r.certified;
        println!(
            "{:<18} {:>6} {:>7} {:>9} {:>11} {:>7} {:>9} {:>10} {:>9} {:>10}",
            r.protocol,
            r.graphs,
            r.closed,
            r.total_states,
            r.transitions,
            r.doomed,
            r.deadlocks,
            r.violations,
            r.max_agreement_distance,
            if r.certified { "yes" } else { "NO" }
        );
    }
    if ok {
        println!("certification matrix: PASS");
        0
    } else {
        println!("certification matrix: FAIL");
        1
    }
}

/// Adversarial default tag assignment: collide the two smallest UIDs on the
/// minimum tag, spread the rest. The checker is an adversary; when the user
/// specifies β but not the hash outcomes, it picks the worst ones.
fn adversarial_tags(n: usize, k: u32) -> Vec<u64> {
    let max_tag = (1u64 << k) - 1;
    (0..n).map(|u| u64::try_from(u.saturating_sub(1)).expect("n <= 6").min(max_tag)).collect()
}

fn sampled_tags(n: usize, k: u32, seed: u64) -> Vec<u64> {
    use rand::Rng;
    let mut rng = mtm_graph::rng::stream_rng(seed, 0);
    (0..n).map(|_| rng.gen_range(0..(1u64 << k))).collect()
}

/// Entry point shared by the `mtm-check` binary and `mtm check`.
pub fn run(args: &[String]) -> i32 {
    let Some(opts) = parse_opts(args) else {
        return usage();
    };
    if opts.certify {
        return run_certify();
    }
    if opts.protocol.is_empty() {
        eprintln!("error: --protocol (or --certify) is required");
        return usage();
    }
    let Some(graph) = parse_topology(&opts.topology) else {
        return 2;
    };
    let n = graph.node_count();
    let uids = opts.uids.clone().unwrap_or_else(|| (1..=n as u64).collect());
    if uids.len() != n {
        eprintln!("error: --uids must list exactly {n} values");
        return 2;
    }

    let mut protocol = opts.protocol.clone();
    if protocol == "blind-gossip" && (opts.beta.is_some() || opts.k.is_some()) {
        println!(
            "note: blind gossip with hashed beta-bit tags is bit convergence (paper §VII); \
             checking bit-convergence"
        );
        protocol = "bit-convergence".to_string();
    }

    match protocol.as_str() {
        "blind-gossip" | "blind" => run_spec(&BlindGossipSpec { uids }, &graph, &opts.cfg),
        "bit-convergence" | "nonsync" => {
            let max_deg =
                (0..n).map(|u| graph.neighbors(crate::explore::nid(u)).len()).max().unwrap_or(1);
            let mut config = TagConfig::new(n.max(2), opts.beta.unwrap_or(3.0), max_deg.max(2));
            if let Some(k) = opts.k {
                config.k = k.clamp(1, 63);
            }
            let tags = match (&opts.tags, opts.tag_seed) {
                (Some(t), _) => t.clone(),
                (None, Some(seed)) => {
                    let t = sampled_tags(n, config.k, seed);
                    println!("tags sampled with seed {seed}: {t:?}");
                    t
                }
                (None, None) => {
                    let t = adversarial_tags(n, config.k);
                    println!(
                        "tags not specified: using adversarial assignment {t:?} \
                         (minimum-tag collision between the two smallest UIDs)"
                    );
                    t
                }
            };
            if tags.len() != n {
                eprintln!("error: --tags must list exactly {n} values");
                return 2;
            }
            let max_tag = (1u64 << config.k) - 1;
            if let Some(&bad) = tags.iter().find(|&&t| t > max_tag) {
                eprintln!("error: tag {bad} does not fit k={} bits", config.k);
                return 2;
            }
            println!(
                "tag geometry: k={} bits, group_len={}, phase_len={}",
                config.k,
                config.group_len,
                config.phase_len()
            );
            if protocol == "nonsync" {
                run_spec(&NonSyncSpec { uids, tags, config }, &graph, &opts.cfg)
            } else {
                run_spec(&BitConvergenceSpec { uids, tags, config }, &graph, &opts.cfg)
            }
        }
        "push-pull" => run_spec(&PushPullSpec { n, sources: opts.sources }, &graph, &opts.cfg),
        "ppush" => run_spec(&PpushSpec { n, sources: opts.sources }, &graph, &opts.cfg),
        "push-only" => run_spec(&PushOnlySpec { n, sources: opts.sources }, &graph, &opts.cfg),
        "pull-only" => run_spec(&PullOnlySpec { n, sources: opts.sources }, &graph, &opts.cfg),
        "maintained-gossip" | "maintained" => {
            if opts.timeout < 2 {
                eprintln!("error: --timeout must be >= 2");
                return 2;
            }
            run_spec(&MaintainedGossipSpec { uids, timeout: opts.timeout }, &graph, &opts.cfg)
        }
        other => {
            eprintln!("error: unknown protocol '{other}'");
            usage()
        }
    }
}

/// The A1 β = 1 instance, re-exported for tests and docs examples.
pub fn a1_demo() -> i32 {
    let (graph, spec) = a1_beta1_instance();
    run_spec(&spec, &graph, &CheckConfig::default())
}
