//! `mtm` — command line driver for the mobile telephone model workspace.
//!
//! Subcommands:
//!
//! * `mtm experiment <id|all> [opts]` — run one (or every) reproduced
//!   experiment (ids: t1 f1 t2 f2 t3 f3 t4 f4 t5 f5 t6 f6 f7 f8 a1 a2 a3).
//! * `mtm elect <algo> <family> <n> [opts]` — one leader election run
//!   (`algo`: blind | bitconv | nonsync; `--detect-stuck` diagnoses
//!   frozen runs and exits 3).
//! * `mtm serve <family> <n> [opts]` — continuous leadership maintenance
//!   (epochs, heartbeats, re-election) under optional churn: `--rounds N`,
//!   `--timeout N` (0 = auto), `--churn CRASH,RECOVER`, `--loss P`,
//!   `--crash-leader R`, `--wedge-window W`. Exits 0 on a completed
//!   horizon, 3 when wedge diagnosis fires.
//!
//! `elect`, `serve` and `spread` accept `--threads N` to run the round
//! executor on N worker shards (0 = all cores). Output is bit-identical at
//! every thread count — the sharded executor is deterministic by
//! construction.
//!
//! `elect` and `spread` accept `--backend event` to drive the same
//! protocols with the discrete-event simulator instead of lockstep rounds:
//! per-link latencies and per-node clock drift from a seeded
//! [`LatencyModel`] (`--latency-spread S` scales the distributions;
//! `--max-rounds` bounds simulation ticks). Deterministic per seed.
//! * `mtm spread <algo> <family> <n> [opts]` — one rumor-spreading run
//!   (`algo`: push-pull | ppush | classical).
//! * `mtm graph <family> <n>` — print a family instance's statistics
//!   (`--export PATH` writes edge-list or JSON).
//! * `mtm trace <algo> <family> <n>` — one traced run, per-round CSV.
//!
//! `--graph-file PATH` substitutes a user topology for any `<family> <n>`.
//!
//! Common opts: `--seed N`, `--tau N` (relabeling churn; default static),
//! `--quick/--full`, `--trials N`, `--threads N`, `--csv PATH`.

use mtm_core::{
    BitConvergence, BlindGossip, MaintainedGossip, MaintenanceConfig, NonSyncBitConvergence, Ppush,
    PushPull, TagConfig, UidPool,
};
use mtm_engine::{
    ActivationSchedule, Engine, EventEngine, LatencyModel, ModelParams, RunStatus, ServiceConfig,
    ServiceStatus,
};
use mtm_experiments::ExpOpts;
use mtm_graph::dynamic::{BoxedTopology, RelabelingAdversary, StaticTopology};
use mtm_graph::{FaultConfig, FaultyTopology, GraphFamily, ScheduledCrashes};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("experiment") => cmd_experiment(&args[1..]),
        Some("elect") => cmd_elect(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("spread") => cmd_spread(&args[1..]),
        Some("graph") => cmd_graph(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("check") => mtm_check::cli::run(&args[1..]),
        Some("--help") | Some("-h") | None => {
            usage();
            0
        }
        Some(other) => {
            eprintln!("unknown subcommand: {other}");
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn usage() {
    eprintln!("usage:");
    eprintln!("  mtm experiment <id|all> [--quick|--full] [--trials N] [--seed N] [--threads N] [--csv PATH]");
    eprintln!(
        "  mtm elect <blind|bitconv|nonsync> <family> <n> [--seed N] [--tau N] [--threads N] [--detect-stuck]"
    );
    eprintln!("            [--backend lockstep|event] [--latency-spread S]");
    eprintln!("  mtm serve <family> <n> [--seed N] [--rounds N] [--timeout N] [--churn C,R]");
    eprintln!("            [--loss P] [--crash-leader ROUND] [--wedge-window W] [--threads N]");
    eprintln!("  mtm spread <push-pull|ppush|classical> <family> <n> [--seed N] [--threads N]");
    eprintln!("            [--backend lockstep|event] [--latency-spread S]");
    eprintln!("  mtm graph <family> <n> [--seed N] [--export PATH]");
    eprintln!(
        "  mtm trace <blind|bitconv|nonsync> <family> <n> [--seed N] [--tau N] [--export CSV]"
    );
    eprintln!("  mtm check [--certify] [--protocol NAME] [options]   (see `mtm check --help`)");
    eprintln!("  (anywhere a <family> <n> pair appears, `--graph-file PATH` loads an");
    eprintln!("   edge-list or .json topology instead)");
    eprintln!();
    eprintln!("experiment ids: {}", mtm_experiments::ALL_IDS.join(" "));
    eprintln!(
        "families: {}",
        GraphFamily::ALL.iter().map(|f| f.name()).collect::<Vec<_>>().join(" ")
    );
}

fn cmd_experiment(args: &[String]) -> i32 {
    let Some(id) = args.first() else {
        eprintln!("experiment: missing id");
        return 2;
    };
    let opts = match ExpOpts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if id == "all" {
        for exp in mtm_experiments::registry::REGISTRY.iter() {
            // Each table needs its own CSV path, or every emission would
            // overwrite the previous one.
            let per_table = opts.with_csv_for(exp.id);
            let table = (exp.run)(&per_table);
            if let Err(e) = per_table.emit(&exp.display_id(), exp.title, &table) {
                eprintln!("error: {e}");
                return 1;
            }
        }
        return 0;
    }
    match mtm_experiments::registry::find(id) {
        Some(exp) => {
            let table = (exp.run)(&opts);
            match opts.emit(&exp.display_id(), exp.title, &table) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        None => {
            eprintln!(
                "unknown experiment id: {id} (expected one of {:?})",
                mtm_experiments::ALL_IDS
            );
            2
        }
    }
}

/// Where the topology comes from: a named family or a file.
enum GraphSource {
    Family(GraphFamily, usize),
    File(String),
}

impl GraphSource {
    fn build(&self, seed: u64) -> Result<mtm_graph::Graph, String> {
        match self {
            GraphSource::Family(f, n) => Ok(f.build(*n, seed)),
            GraphSource::File(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                if path.ends_with(".json") {
                    mtm_graph::io::from_json(&text)
                } else {
                    mtm_graph::io::from_edge_list(&text).map_err(|e| e.to_string())
                }
            }
        }
    }

    fn describe(&self) -> String {
        match self {
            GraphSource::Family(f, _) => f.name().to_string(),
            GraphSource::File(p) => p.clone(),
        }
    }
}

/// Which simulator drives the run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// Global synchronized rounds (the default; sequential or sharded).
    Lockstep,
    /// Discrete-event simulation with per-link latencies and no global
    /// round clock ([`EventEngine`]).
    Event,
}

/// Parsed `<family> <n>` (or `--graph-file PATH`) plus
/// `--seed/--tau/--max-rounds` flags.
struct RunArgs {
    source: GraphSource,
    seed: u64,
    tau: Option<u64>,
    max_rounds: u64,
    export: Option<String>,
    detect_stuck: bool,
    threads: usize,
    backend: Backend,
    /// Latency-distribution spread for the event backend
    /// ([`LatencyModel::multipeer`]).
    latency_spread: u64,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let (source, mut i) = if args.first().map(String::as_str) == Some("--graph-file") {
        let path = args.get(1).ok_or("--graph-file needs a path")?.clone();
        (GraphSource::File(path), 2)
    } else {
        let family = args.first().and_then(|s| GraphFamily::parse(s)).ok_or_else(|| {
            format!("expected a graph family or --graph-file, got {:?}", args.first())
        })?;
        let n: usize = args.get(1).ok_or("missing n")?.parse().map_err(|e| format!("n: {e}"))?;
        (GraphSource::Family(family, n), 2)
    };
    let mut seed = 42u64;
    let mut tau = None;
    let mut max_rounds = 500_000_000;
    let mut export = None;
    let mut detect_stuck = false;
    let mut threads = 1usize;
    let mut backend = Backend::Lockstep;
    let mut latency_spread = 8u64;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--tau" => {
                i += 1;
                tau = Some(
                    args.get(i)
                        .ok_or("--tau needs a value")?
                        .parse()
                        .map_err(|e| format!("--tau: {e}"))?,
                );
            }
            "--max-rounds" => {
                i += 1;
                max_rounds = args
                    .get(i)
                    .ok_or("--max-rounds needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-rounds: {e}"))?;
            }
            "--export" => {
                i += 1;
                export = Some(args.get(i).ok_or("--export needs a path")?.clone());
            }
            "--detect-stuck" => detect_stuck = true,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--backend" => {
                i += 1;
                backend = match args.get(i).map(String::as_str) {
                    Some("lockstep") => Backend::Lockstep,
                    Some("event") => Backend::Event,
                    other => return Err(format!("--backend wants lockstep|event, got {other:?}")),
                };
            }
            "--latency-spread" => {
                i += 1;
                latency_spread = args
                    .get(i)
                    .ok_or("--latency-spread needs a value")?
                    .parse()
                    .map_err(|e| format!("--latency-spread: {e}"))?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    if backend == Backend::Event {
        // The event backend runs on a static graph with its own timing
        // model; these lockstep-only flags would be silently meaningless.
        if tau.is_some() {
            return Err("--tau is lockstep-only (the event backend runs a static graph)".into());
        }
        if detect_stuck {
            return Err("--detect-stuck is lockstep-only".into());
        }
        if threads != 1 {
            return Err("--threads is lockstep-only (the event queue is inherently serial)".into());
        }
    }
    Ok(RunArgs {
        source,
        seed,
        tau,
        max_rounds,
        export,
        detect_stuck,
        threads,
        backend,
        latency_spread,
    })
}

fn build_topology(a: &RunArgs) -> Result<(BoxedTopology, usize, usize), String> {
    let g = a.source.build(a.seed)?;
    if !g.is_connected() {
        return Err("topology must be connected".to_string());
    }
    let n = g.node_count();
    let delta = g.max_degree();
    let topo: BoxedTopology = match a.tau {
        None => Box::new(StaticTopology::new(g)),
        Some(t) => Box::new(RelabelingAdversary::new(g, t, a.seed ^ 0xAD)),
    };
    Ok((topo, n, delta))
}

fn cmd_elect(args: &[String]) -> i32 {
    let Some(algo) = args.first().cloned() else {
        eprintln!("elect: missing algorithm");
        return 2;
    };
    let a = match parse_run_args(&args[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if a.backend == Backend::Event {
        return cmd_elect_event(&algo, &a);
    }
    let (topo, n, delta) = match build_topology(&a) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let uids = UidPool::random(n, a.seed ^ 0x11D);
    let sched = ActivationSchedule::synchronized(n);
    println!(
        "electing a leader: algo={algo} graph={} n={n} Δ={delta} τ={} seed={}",
        a.source.describe(),
        a.tau.map_or("∞".to_string(), |t| t.to_string()),
        a.seed
    );
    // With `--detect-stuck`, a frozen run is diagnosed after `window`
    // unchanged rounds instead of burning the whole --max-rounds budget.
    // Bit-convergence state changes at most once per phase; blind gossip
    // has no phase structure, so it gets a flat generous window.
    macro_rules! run_elect {
        ($params:expr, $nodes:expr, $window:expr) => {{
            let mut e = Engine::new(topo, $params, sched, $nodes, a.seed);
            e.set_threads(a.threads);
            if a.detect_stuck {
                e.enable_stuck_detection($window);
            }
            let out = e.run_to_stabilization(a.max_rounds);
            (out, e.last_progress_round())
        }};
    }
    let (outcome, last_progress) = match algo.as_str() {
        "blind" => {
            run_elect!(ModelParams::mobile(0), BlindGossip::spawn(&uids), 4096)
        }
        "bitconv" => {
            let config = TagConfig::for_network(n, delta);
            let nodes = BitConvergence::spawn(&uids, config, a.seed ^ 0x7A6);
            run_elect!(ModelParams::mobile(1), nodes, 8 * config.phase_len().max(1))
        }
        "nonsync" => {
            let config = TagConfig::for_network(n, delta);
            let nodes = NonSyncBitConvergence::spawn(&uids, config, a.seed ^ 0x7A6);
            run_elect!(
                ModelParams::mobile(config.nonsync_tag_bits()),
                nodes,
                8 * config.phase_len().max(1)
            )
        }
        other => {
            eprintln!("unknown algorithm: {other} (expected blind|bitconv|nonsync)");
            return 2;
        }
    };
    match outcome.status {
        RunStatus::Stabilized => match (outcome.stabilized_round, outcome.winner) {
            (Some(round), Some(winner)) => {
                println!(
                    "stabilized in {round} rounds; leader UID {winner:#x}; {} proposals, {} connections ({:.1}% success)",
                    outcome.metrics.proposals,
                    outcome.metrics.connections,
                    100.0 * outcome.metrics.proposal_success_rate()
                );
                0
            }
            (round, winner) => {
                // Stabilized without a round or winner breaks the
                // RunOutcome contract — report it instead of panicking.
                println!(
                    "stabilized, but the outcome is incomplete (round {round:?}, winner \
                     {winner:?}) — harness invariant violated, treating as failure"
                );
                1
            }
        },
        RunStatus::Stuck(report) => {
            println!(
                "stuck: no state change since round {} (detected at round {}, window {})",
                report.fixed_since, report.detected_round, report.window
            );
            if report.idle_connections == 0 {
                println!(
                    "diagnosis: zero connections over the whole window — a fixed point; \
                     the run would never stabilize (e.g. a tag-collision deadlock)"
                );
            } else {
                println!(
                    "diagnosis: {} connections during the window changed no node state — \
                     likely a fixed point under a monotone protocol",
                    report.idle_connections
                );
            }
            3
        }
        RunStatus::TimedOut => {
            println!("did not stabilize within {} rounds", a.max_rounds);
            if let Some(r) = last_progress {
                println!("diagnosis: last state change at round {r} — slow but not provably stuck");
            }
            1
        }
    }
}

/// `mtm elect --backend event`: the same election protocols driven by the
/// discrete-event simulator — per-link latencies, per-node clock drift, no
/// global round. `--max-rounds` bounds simulation *ticks* here.
fn cmd_elect_event(algo: &str, a: &RunArgs) -> i32 {
    let g = match a.source.build(a.seed) {
        Ok(g) if g.is_connected() => g,
        Ok(_) => {
            eprintln!("error: topology must be connected");
            return 2;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let n = g.node_count();
    let delta = g.max_degree();
    let uids = UidPool::random(n, a.seed ^ 0x11D);
    let latency = LatencyModel::multipeer(a.latency_spread);
    println!(
        "electing a leader: algo={algo} backend=event graph={} n={n} Δ={delta} spread={} seed={}",
        a.source.describe(),
        a.latency_spread,
        a.seed
    );
    macro_rules! run_event {
        ($params:expr, $nodes:expr) => {{
            let mut e = EventEngine::new(g, $params, $nodes, a.seed, latency);
            e.run_to_stabilization(a.max_rounds)
        }};
    }
    let out = match algo {
        "blind" => run_event!(ModelParams::mobile(0), BlindGossip::spawn(&uids)),
        "bitconv" => {
            let config = TagConfig::for_network(n, delta);
            run_event!(ModelParams::mobile(1), BitConvergence::spawn(&uids, config, a.seed ^ 0x7A6))
        }
        "nonsync" => {
            let config = TagConfig::for_network(n, delta);
            run_event!(
                ModelParams::mobile(config.nonsync_tag_bits()),
                NonSyncBitConvergence::spawn(&uids, config, a.seed ^ 0x7A6)
            )
        }
        other => {
            eprintln!("unknown algorithm: {other} (expected blind|bitconv|nonsync)");
            return 2;
        }
    };
    match (out.completed_at, out.winner) {
        (Some(t), Some(winner)) => {
            println!(
                "stabilized at tick {t} (mean local round {:.1}); leader UID {winner:#x}; \
                 {} proposals, {} connections, {} events",
                out.mean_local_rounds, out.metrics.proposals, out.metrics.connections, out.events
            );
            0
        }
        _ => {
            println!("did not stabilize within {} ticks", a.max_rounds);
            1
        }
    }
}

/// Parsed arguments for `mtm serve`.
struct ServeArgs {
    source: GraphSource,
    seed: u64,
    rounds: u64,
    /// Heartbeat-staleness timeout; 0 = auto (`32·⌈log₂ n⌉`, comfortably
    /// above the measured steady-state gossip staleness tail).
    timeout: u64,
    churn: Option<(f64, f64)>,
    loss: f64,
    crash_leader: Option<u64>,
    wedge_window: u64,
    threads: usize,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let (source, mut i) = if args.first().map(String::as_str) == Some("--graph-file") {
        let path = args.get(1).ok_or("--graph-file needs a path")?.clone();
        (GraphSource::File(path), 2)
    } else {
        let family = args.first().and_then(|s| GraphFamily::parse(s)).ok_or_else(|| {
            format!("expected a graph family or --graph-file, got {:?}", args.first())
        })?;
        let n: usize = args.get(1).ok_or("missing n")?.parse().map_err(|e| format!("n: {e}"))?;
        (GraphSource::Family(family, n), 2)
    };
    let mut a = ServeArgs {
        source,
        seed: 42,
        rounds: 2000,
        timeout: 0,
        churn: None,
        loss: 0.0,
        crash_leader: None,
        wedge_window: 0,
        threads: 1,
    };
    let take = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                a.seed =
                    take(args, &mut i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--rounds" => {
                a.rounds = take(args, &mut i, "--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--timeout" => {
                a.timeout = take(args, &mut i, "--timeout")?
                    .parse()
                    .map_err(|e| format!("--timeout: {e}"))?;
            }
            "--churn" => {
                let v = take(args, &mut i, "--churn")?;
                let (c, r) = v
                    .split_once(',')
                    .ok_or_else(|| format!("--churn wants CRASH,RECOVER, got {v:?}"))?;
                let crash: f64 = c.parse().map_err(|e| format!("--churn crash: {e}"))?;
                let recover: f64 = r.parse().map_err(|e| format!("--churn recover: {e}"))?;
                if !(0.0..=1.0).contains(&crash) || !(0.0..=1.0).contains(&recover) {
                    return Err("--churn probabilities must be in [0, 1]".to_string());
                }
                a.churn = Some((crash, recover));
            }
            "--loss" => {
                a.loss =
                    take(args, &mut i, "--loss")?.parse().map_err(|e| format!("--loss: {e}"))?;
                if !(0.0..=1.0).contains(&a.loss) {
                    return Err("--loss must be in [0, 1]".to_string());
                }
            }
            "--crash-leader" => {
                a.crash_leader = Some(
                    take(args, &mut i, "--crash-leader")?
                        .parse()
                        .map_err(|e| format!("--crash-leader: {e}"))?,
                );
            }
            "--wedge-window" => {
                a.wedge_window = take(args, &mut i, "--wedge-window")?
                    .parse()
                    .map_err(|e| format!("--wedge-window: {e}"))?;
            }
            "--threads" => {
                a.threads = take(args, &mut i, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    Ok(a)
}

/// `mtm serve`: run the maintenance protocol as a long-lived service —
/// elect, heartbeat, detect failures, re-elect — under optional fault
/// injection, and report the service-quality counters. Exit codes: 0 the
/// horizon completed, 2 usage error, 3 the wedge detector cut the run
/// short (frozen disagreeing state that no future round can change).
fn cmd_serve(args: &[String]) -> i32 {
    let a = match parse_serve_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let g = match a.source.build(a.seed) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if !g.is_connected() {
        eprintln!("error: topology must be connected");
        return 2;
    }
    let n = g.node_count();
    let uids = UidPool::random(n, a.seed ^ 0x11D);
    // Auto timeout: the detector must out-wait the steady-state heartbeat
    // staleness tail, which grows with the gossip spread time (measured
    // ≈ 42 rounds at n = 64 up to ≈ 83 at n = 2¹⁷ on 8-regular
    // expanders). 32·⌈log₂ n⌉ keeps a 3-4× margin across that range.
    let timeout = if a.timeout == 0 {
        32 * (usize::BITS - n.max(2).next_power_of_two().leading_zeros() - 1) as u64
    } else {
        a.timeout
    };
    if a.wedge_window > 0 && a.wedge_window <= timeout {
        eprintln!(
            "error: --wedge-window must exceed the timeout ({timeout}): a pending \
             failure detector is a ticking state change the fingerprint cannot see"
        );
        return 2;
    }
    // Compose the fault layers around the static graph; the leader crash
    // schedule targets the initial min-UID holder (the node that wins the
    // first election).
    let leader_node = uids.min_uid_node() as mtm_graph::NodeId;
    let base: BoxedTopology = match a.churn {
        Some((crash, recover)) => Box::new(FaultyTopology::new(
            StaticTopology::new(g),
            FaultConfig::crashes(crash, recover),
            a.seed ^ 0xFA,
        )),
        None => Box::new(StaticTopology::new(g)),
    };
    let topo: BoxedTopology = match a.crash_leader {
        Some(round) if round >= 1 => {
            Box::new(ScheduledCrashes::new(base, vec![(leader_node, round, u64::MAX)]))
        }
        Some(_) => {
            eprintln!("error: --crash-leader round must be ≥ 1");
            return 2;
        }
        None => base,
    };
    println!(
        "serving: graph={} n={n} seed={} rounds={} timeout={timeout} churn={} loss={} crash-leader={} wedge-window={}",
        a.source.describe(),
        a.seed,
        a.rounds,
        a.churn.map_or("off".to_string(), |(c, r)| format!("{c},{r}")),
        a.loss,
        a.crash_leader.map_or("off".to_string(), |r| format!("@{r}")),
        if a.wedge_window == 0 { "off".to_string() } else { a.wedge_window.to_string() },
    );
    let mut e = Engine::new(
        topo,
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        MaintainedGossip::spawn(&uids, MaintenanceConfig::new(timeout)),
        a.seed,
    );
    e.set_threads(a.threads);
    if a.loss > 0.0 {
        e.set_proposal_loss(a.loss);
    }
    let cfg = ServiceConfig::rounds(a.rounds).with_wedge_window(a.wedge_window);
    let out = e.run_service(&cfg);
    println!(
        "service over {} rounds: {} re-elections, {} leaderless, {} dual-leader, {} stable (max {} concurrent claimants)",
        out.rounds,
        out.service.re_elections,
        out.service.leaderless_rounds,
        out.service.dual_leader_rounds,
        out.service.stable_rounds,
        out.service.max_concurrent_claimants,
    );
    for ep in &out.epochs {
        match (ep.agreed_round, ep.leader) {
            (Some(r), Some(l)) => println!(
                "  epoch {}: started round {}, agreed round {r}, leader UID {l:#x}",
                ep.epoch, ep.started_round
            ),
            _ => println!(
                "  epoch {}: started round {}, never fully agreed",
                ep.epoch, ep.started_round
            ),
        }
    }
    match out.final_leader {
        Some(l) => println!("final: epoch {}, leader UID {l:#x}", out.final_epoch),
        None => println!("final: epoch {}, no network-wide agreement", out.final_epoch),
    }
    match out.status {
        ServiceStatus::Completed => 0,
        ServiceStatus::Wedged(report) => {
            println!(
                "wedged: no durable state change since round {} (detected at round {}, window {}) with the up participants disagreeing",
                report.fixed_since, report.detected_round, report.window
            );
            if report.idle_connections == 0 {
                println!("diagnosis: zero connections over the window — the topology is partitioned or dead");
            } else {
                println!(
                    "diagnosis: {} connections during the window changed nothing — a disagreeing fixed point",
                    report.idle_connections
                );
            }
            3
        }
    }
}

fn cmd_spread(args: &[String]) -> i32 {
    let Some(algo) = args.first().cloned() else {
        eprintln!("spread: missing algorithm");
        return 2;
    };
    let a = match parse_run_args(&args[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if a.backend == Backend::Event {
        return cmd_spread_event(&algo, &a);
    }
    let (topo, n, delta) = match build_topology(&a) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let sched = ActivationSchedule::synchronized(n);
    println!(
        "spreading a rumor: algo={algo} graph={} n={n} Δ={delta} seed={}",
        a.source.describe(),
        a.seed
    );
    // Every arm goes through set_threads — `--threads` used to be parsed
    // and then silently dropped here, unlike elect/serve.
    macro_rules! run_spread {
        ($params:expr, $nodes:expr) => {{
            let mut e = Engine::new(topo, $params, sched, $nodes, a.seed);
            e.set_threads(a.threads);
            e.run_to_full_information(a.max_rounds)
        }};
    }
    let outcome = match algo.as_str() {
        "push-pull" => run_spread!(ModelParams::mobile(0), PushPull::spawn(n, 1)),
        "classical" => run_spread!(ModelParams::classical(), PushPull::spawn(n, 1)),
        "ppush" => run_spread!(ModelParams::mobile(1), Ppush::spawn(n, 1)),
        other => {
            eprintln!("unknown algorithm: {other} (expected push-pull|ppush|classical)");
            return 2;
        }
    };
    match outcome.stabilized_round {
        Some(r) => {
            println!(
                "all {n} nodes informed after {r} rounds; {} connections",
                outcome.metrics.connections
            );
            0
        }
        None => {
            println!("rumor incomplete after {} rounds", a.max_rounds);
            1
        }
    }
}

/// `mtm spread --backend event`: PUSH-PULL / Ppush under the discrete-event
/// simulator. The classical baseline needs accept-all connections, which
/// the event backend does not model.
fn cmd_spread_event(algo: &str, a: &RunArgs) -> i32 {
    let g = match a.source.build(a.seed) {
        Ok(g) if g.is_connected() => g,
        Ok(_) => {
            eprintln!("error: topology must be connected");
            return 2;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let n = g.node_count();
    let delta = g.max_degree();
    let latency = LatencyModel::multipeer(a.latency_spread);
    println!(
        "spreading a rumor: algo={algo} backend=event graph={} n={n} Δ={delta} spread={} seed={}",
        a.source.describe(),
        a.latency_spread,
        a.seed
    );
    let out = match algo {
        "push-pull" => {
            let mut e =
                EventEngine::new(g, ModelParams::mobile(0), PushPull::spawn(n, 1), a.seed, latency);
            e.run_to_full_information(a.max_rounds)
        }
        "ppush" => {
            let mut e =
                EventEngine::new(g, ModelParams::mobile(1), Ppush::spawn(n, 1), a.seed, latency);
            e.run_to_full_information(a.max_rounds)
        }
        "classical" => {
            eprintln!(
                "error: the classical baseline (accept-all) has no event-backend model; \
                 use --backend lockstep"
            );
            return 2;
        }
        other => {
            eprintln!("unknown algorithm: {other} (expected push-pull|ppush|classical)");
            return 2;
        }
    };
    match out.completed_at {
        Some(t) => {
            println!(
                "all {n} nodes informed at tick {t} (mean local round {:.1}); {} connections, {} events",
                out.mean_local_rounds, out.metrics.connections, out.events
            );
            0
        }
        None => {
            println!("rumor incomplete after {} ticks", a.max_rounds);
            1
        }
    }
}

fn cmd_graph(args: &[String]) -> i32 {
    let a = match parse_run_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let g = match a.source.build(a.seed) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let n = g.node_count();
    if let Some(path) = &a.export {
        let text = if path.ends_with(".json") {
            mtm_graph::io::to_json(&g)
        } else {
            mtm_graph::io::to_edge_list(&g)
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: failed to write {path}: {e}");
            return 1;
        }
        println!("exported to {path}");
    }
    println!("graph:       {}", a.source.describe());
    println!("nodes:       {n}");
    println!("edges:       {}", g.edge_count());
    println!("max degree:  {}", g.max_degree());
    println!("min degree:  {}", g.min_degree());
    println!("connected:   {}", g.is_connected());
    if let GraphSource::Family(family, _) = &a.source {
        if let Some(alpha) = family.known_alpha(n) {
            println!("α (analytic): {alpha:.6}");
        }
    }
    if n <= 20 {
        println!("α (exact):    {:.6}", mtm_graph::expansion::alpha_exact(&g));
    } else {
        println!(
            "α (sampled ≤): {:.6}",
            mtm_graph::expansion::alpha_upper_bound_sampled(&g, 30, a.seed)
        );
    }
    if let Some(d) = g.diameter() {
        println!("diameter:    {d}");
    }
    0
}

/// `mtm trace`: run one leader election with per-round tracing and dump a
/// CSV of (round, active, proposals, connections) plus the connection log
/// summary.
fn cmd_trace(args: &[String]) -> i32 {
    let Some(algo) = args.first().cloned() else {
        eprintln!("trace: missing algorithm");
        return 2;
    };
    let a = match parse_run_args(&args[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let (topo, n, delta) = match build_topology(&a) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let uids = UidPool::random(n, a.seed ^ 0x11D);
    let sched = ActivationSchedule::synchronized(n);
    macro_rules! run_traced {
        ($params:expr, $nodes:expr) => {{
            let mut e = Engine::new(topo, $params, sched, $nodes, a.seed);
            e.enable_tracing();
            e.enable_connection_log();
            let out = e.run_to_stabilization(a.max_rounds);
            let mut csv = String::from("round,active,proposals,connections\n");
            for t in e.traces() {
                csv.push_str(&format!(
                    "{},{},{},{}\n",
                    t.round, t.active, t.proposals, t.connections
                ));
            }
            (out, csv, e.connection_log().len())
        }};
    }
    let (outcome, csv, logged) = match algo.as_str() {
        "blind" => run_traced!(ModelParams::mobile(0), BlindGossip::spawn(&uids)),
        "bitconv" => {
            let config = TagConfig::for_network(n, delta);
            run_traced!(
                ModelParams::mobile(1),
                BitConvergence::spawn(&uids, config, a.seed ^ 0x7A6)
            )
        }
        "nonsync" => {
            let config = TagConfig::for_network(n, delta);
            run_traced!(
                ModelParams::mobile(config.nonsync_tag_bits()),
                NonSyncBitConvergence::spawn(&uids, config, a.seed ^ 0x7A6)
            )
        }
        other => {
            eprintln!("unknown algorithm: {other} (expected blind|bitconv|nonsync)");
            return 2;
        }
    };
    match &a.export {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &csv) {
                eprintln!("error: failed to write {path}: {e}");
                return 1;
            }
            println!("trace written to {path} ({} rows)", csv.lines().count() - 1);
        }
        None => print!("{csv}"),
    }
    match outcome.stabilized_round {
        Some(r) => {
            eprintln!("stabilized in {r} rounds ({logged} connections logged)");
            0
        }
        None => {
            eprintln!("did not stabilize within {} rounds", a.max_rounds);
            1
        }
    }
}
