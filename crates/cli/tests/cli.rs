//! End-to-end CLI contract tests, driving the real `mtm` binary.
//!
//! Pinned here:
//! * `mtm spread` exit codes — 0 every node informed, 1 incomplete within
//!   the round budget, 2 usage error (previously asserted only in CI shell
//!   one-liners, which cannot distinguish 1 from 2);
//! * `--threads` actually reaches the engine on `spread` (byte-identical
//!   stdout at 1 vs 2 workers — the regression was parsing the flag and
//!   dropping it);
//! * `--backend event` determinism: same seed ⇒ byte-identical stdout,
//!   different seed ⇒ different timing; flag validation for the
//!   lockstep-only options.

use std::process::{Command, Output};

fn mtm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mtm")).args(args).output().expect("mtm binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("mtm prints UTF-8")
}

#[test]
fn spread_exit_0_when_informed() {
    let out = mtm(&["spread", "push-pull", "clique", "8", "--seed", "1"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("all 8 nodes informed"));
}

#[test]
fn spread_exit_1_when_incomplete() {
    // One round cannot inform a 64-cycle.
    let out = mtm(&["spread", "push-pull", "cycle", "64", "--seed", "1", "--max-rounds", "1"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("rumor incomplete"));
}

#[test]
fn spread_exit_2_on_usage_errors() {
    // Unknown algorithm.
    assert_eq!(mtm(&["spread", "flood", "clique", "8"]).status.code(), Some(2));
    // Missing algorithm entirely.
    assert_eq!(mtm(&["spread"]).status.code(), Some(2));
    // Unknown family.
    assert_eq!(mtm(&["spread", "push-pull", "nonagon", "8"]).status.code(), Some(2));
    // Unknown flag.
    assert_eq!(mtm(&["spread", "push-pull", "clique", "8", "--frobnicate"]).status.code(), Some(2));
    // The classical baseline needs accept-all, which the event backend
    // does not model.
    assert_eq!(
        mtm(&["spread", "classical", "clique", "8", "--backend", "event"]).status.code(),
        Some(2)
    );
    // Unknown backend name.
    assert_eq!(
        mtm(&["spread", "push-pull", "clique", "8", "--backend", "quantum"]).status.code(),
        Some(2)
    );
}

#[test]
fn spread_honors_threads() {
    // The bug: `--threads` parsed but never plumbed into the engine. The
    // sharded executor is bit-identical by construction, so the whole
    // stdout must match across thread counts.
    let base = &["spread", "ppush", "expander8", "128", "--seed", "7"];
    let t1 = mtm(&[base, &["--threads", "1"][..]].concat());
    let t2 = mtm(&[base, &["--threads", "2"][..]].concat());
    assert_eq!(t1.status.code(), Some(0));
    assert_eq!(stdout(&t1), stdout(&t2), "spread output must not depend on --threads");
}

#[test]
fn event_backend_same_seed_same_output() {
    let args = &["spread", "push-pull", "expander8", "64", "--backend", "event", "--seed", "9"];
    let a = mtm(args);
    let b = mtm(args);
    assert_eq!(a.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(stdout(&a), stdout(&b), "event backend must be deterministic per seed");

    let c = mtm(&["spread", "push-pull", "expander8", "64", "--backend", "event", "--seed", "10"]);
    assert_ne!(stdout(&a), stdout(&c), "different seeds should give different timings");
}

#[test]
fn elect_event_backend_completes_and_validates_flags() {
    let out = mtm(&["elect", "blind", "expander8", "64", "--backend", "event", "--seed", "3"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("stabilized at tick"));

    // Lockstep-only flags are rejected, not silently ignored.
    for extra in [&["--tau", "4"][..], &["--detect-stuck"][..], &["--threads", "2"][..]] {
        let mut args = vec!["elect", "blind", "cycle", "16", "--backend", "event"];
        args.extend_from_slice(extra);
        assert_eq!(mtm(&args).status.code(), Some(2), "{extra:?} must be rejected under event");
    }
}
