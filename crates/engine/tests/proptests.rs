//! Property tests for the round executor and its supporting types.

use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, ModelParams, PayloadCost, Protocol, Scan, Tag};
use mtm_graph::{gen, StaticTopology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

/// A minimal min-spreading protocol used to exercise engine mechanics.
#[derive(Clone)]
struct Spread {
    best: u64,
}

#[derive(Clone)]
struct Val(u64);
impl PayloadCost for Val {
    fn uid_count(&self) -> u32 {
        1
    }
    fn extra_bits(&self) -> u32 {
        0
    }
}

impl Protocol for Spread {
    type Payload = Val;
    fn advertise(&mut self, _l: u64, _r: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }
    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> mtm_engine::Action {
        if scan.is_empty() || !rng.gen_bool(0.5) {
            return mtm_engine::Action::Listen;
        }
        mtm_engine::Action::Propose(scan.neighbors[rng.gen_range(0..scan.len())])
    }
    fn payload(&self) -> Val {
        Val(self.best)
    }
    fn on_connect(&mut self, peer: &Val, _r: &mut SmallRng) {
        self.best = self.best.min(peer.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_deterministic_for_any_seed(seed in any::<u64>()) {
        let run = |seed: u64| {
            let n = 12;
            let nodes: Vec<Spread> = (0..n as u64).map(|u| Spread { best: u + 7 }).collect();
            let mut e = Engine::new(
                StaticTopology::new(gen::random_regular(n, 3, 5)),
                ModelParams::mobile(0),
                ActivationSchedule::synchronized(n),
                nodes,
                seed,
            );
            e.run_rounds(150);
            (e.metrics(), e.nodes().iter().map(|p| p.best).collect::<Vec<_>>())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn conservation_under_arbitrary_activation(
        seed in any::<u64>(),
        activations in proptest::collection::vec(1u64..60, 10),
    ) {
        let n = activations.len();
        let nodes: Vec<Spread> = (0..n as u64).map(|u| Spread { best: u }).collect();
        let mut e = Engine::new(
            StaticTopology::new(gen::clique(n)),
            ModelParams::mobile(0),
            ActivationSchedule::explicit(activations.clone()),
            nodes,
            seed,
        );
        e.enable_tracing();
        e.enable_connection_log();
        e.run_rounds(80);
        let m = e.metrics();
        prop_assert_eq!(m.proposals, m.connections + m.rejected_proposals);
        prop_assert_eq!(e.connection_log().len() as u64, m.connections);
        // No connection may involve a node before its activation round.
        for &(round, u, v) in e.connection_log() {
            prop_assert!(round >= activations[u as usize]);
            prop_assert!(round >= activations[v as usize]);
        }
        // Traced active counts are non-decreasing (activations only).
        let actives: Vec<u64> = e.traces().iter().map(|t| t.active).collect();
        prop_assert!(actives.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn min_never_lost_nor_invented(seed in any::<u64>()) {
        let n = 10;
        let nodes: Vec<Spread> = (0..n as u64).map(|u| Spread { best: u * 13 + 3 }).collect();
        let initial_min = 3u64;
        let mut e = Engine::new(
            StaticTopology::new(gen::cycle(n)),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            nodes,
            seed,
        );
        for _ in 0..200 {
            e.step();
            let values: Vec<u64> = e.nodes().iter().map(|p| p.best).collect();
            prop_assert_eq!(*values.iter().min().unwrap(), initial_min,
                "global min must be preserved");
            for &v in &values {
                prop_assert_eq!((v - 3) % 13, 0, "invented value {}", v);
            }
        }
    }

    #[test]
    fn trial_runner_order_and_determinism(
        trials in 0usize..24,
        threads in 1usize..5,
        base_seed in any::<u64>(),
    ) {
        let f = |t: usize, seed: u64| (t, seed.wrapping_mul(3));
        let a = run_trials(trials, base_seed, threads, f);
        let b = run_trials(trials, base_seed, 1, f);
        prop_assert_eq!(a.len(), trials);
        prop_assert_eq!(a, b, "results must not depend on thread count");
    }

    #[test]
    fn activation_schedule_local_rounds_consistent(
        rounds in proptest::collection::vec(1u64..50, 1..20),
        probe in 50u64..100,
    ) {
        let sched = ActivationSchedule::explicit(rounds.clone());
        for (u, &act) in rounds.iter().enumerate() {
            prop_assert!(sched.is_active(u, probe));
            prop_assert_eq!(sched.local_round(u, probe), probe - act + 1);
            prop_assert!(!sched.is_active(u, act - 1) || act == 1);
        }
        prop_assert_eq!(sched.last_activation(), *rounds.iter().max().unwrap());
    }
}
