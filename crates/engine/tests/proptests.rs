//! Property tests for the round executor and its supporting types.
//!
//! Cases are generated deterministically by `mtm-testkit` (the offline
//! replacement for proptest).

use mtm_engine::runner::run_trials;
use mtm_engine::{ActivationSchedule, Engine, ModelParams, PayloadCost, Protocol, Scan, Tag};
use mtm_graph::{gen, StaticTopology};
use mtm_testkit::{run_cases, Rng, SmallRng};

/// A minimal min-spreading protocol used to exercise engine mechanics.
#[derive(Clone)]
struct Spread {
    best: u64,
}

#[derive(Clone)]
struct Val(u64);
impl PayloadCost for Val {
    fn uid_count(&self) -> u32 {
        1
    }
    fn extra_bits(&self) -> u32 {
        0
    }
}

impl Protocol for Spread {
    type Payload = Val;
    fn advertise(&mut self, _l: u64, _r: &mut SmallRng) -> Tag {
        Tag::EMPTY
    }
    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> mtm_engine::Action {
        if scan.is_empty() || !rng.gen_bool(0.5) {
            return mtm_engine::Action::Listen;
        }
        mtm_engine::Action::Propose(scan.neighbors[rng.gen_range(0..scan.len())])
    }
    fn payload(&self) -> Val {
        Val(self.best)
    }
    fn on_connect(&mut self, peer: &Val, _r: &mut SmallRng) {
        self.best = self.best.min(peer.0);
    }
}

#[test]
fn engine_deterministic_for_any_seed() {
    run_cases(0xE701, 24, |_case, rng| {
        let seed = rng.gen::<u64>();
        let run = |seed: u64| {
            let n = 12;
            let nodes: Vec<Spread> = (0..n as u64).map(|u| Spread { best: u + 7 }).collect();
            let mut e = Engine::new(
                StaticTopology::new(gen::random_regular(n, 3, 5)),
                ModelParams::mobile(0),
                ActivationSchedule::synchronized(n),
                nodes,
                seed,
            );
            e.run_rounds(150);
            (e.metrics(), e.nodes().iter().map(|p| p.best).collect::<Vec<_>>())
        };
        assert_eq!(run(seed), run(seed));
    });
}

/// The sharded executor is the sequential executor: for any random
/// (topology, activation, loss, seed) configuration, every thread count
/// yields the same traces, metrics, and final protocol state.
#[test]
fn sharded_executor_matches_sequential_for_any_config() {
    run_cases(0x5AAD, 16, |_case, rng| {
        let seed = rng.gen::<u64>();
        let n = 2 * rng.gen_range(5..20usize);
        let degree = rng.gen_range(2..5usize);
        let graph = gen::random_regular(n, degree, rng.gen::<u64>());
        let loss = if rng.gen_bool(0.5) { rng.gen_range(0.05..0.4) } else { 0.0 };
        let sched = if rng.gen_bool(0.5) {
            ActivationSchedule::synchronized(n)
        } else {
            ActivationSchedule::explicit((0..n).map(|_| rng.gen_range(1..20u64)).collect())
        };
        let run = |threads: usize| {
            let nodes: Vec<Spread> = (0..n as u64).map(|u| Spread { best: u + 3 }).collect();
            let mut e = Engine::new(
                StaticTopology::new(graph.clone()),
                ModelParams::mobile(0),
                sched.clone(),
                nodes,
                seed,
            );
            e.set_threads(threads);
            if loss > 0.0 {
                e.set_proposal_loss(loss);
            }
            e.enable_tracing();
            e.run_rounds(60);
            (e.metrics(), e.traces().to_vec(), e.nodes().iter().map(|p| p.best).collect::<Vec<_>>())
        };
        let sequential = run(1);
        for threads in [2usize, 4, 8] {
            assert_eq!(run(threads), sequential, "threads={threads} diverged from sequential");
        }
    });
}

#[test]
fn conservation_under_arbitrary_activation() {
    run_cases(0xE702, 24, |_case, rng| {
        let seed = rng.gen::<u64>();
        let activations: Vec<u64> = (0..10).map(|_| rng.gen_range(1..60u64)).collect();
        let n = activations.len();
        let nodes: Vec<Spread> = (0..n as u64).map(|u| Spread { best: u }).collect();
        let mut e = Engine::new(
            StaticTopology::new(gen::clique(n)),
            ModelParams::mobile(0),
            ActivationSchedule::explicit(activations.clone()),
            nodes,
            seed,
        );
        e.enable_tracing();
        e.enable_connection_log();
        e.run_rounds(80);
        let m = e.metrics();
        assert_eq!(m.proposals, m.connections + m.rejected_proposals);
        assert_eq!(e.connection_log().len() as u64, m.connections);
        // No connection may involve a node before its activation round.
        for &(round, u, v) in e.connection_log() {
            assert!(round >= activations[u as usize]);
            assert!(round >= activations[v as usize]);
        }
        // Traced active counts are non-decreasing (activations only).
        let actives: Vec<u64> = e.traces().iter().map(|t| t.active).collect();
        assert!(actives.windows(2).all(|w| w[0] <= w[1]));
    });
}

#[test]
fn min_never_lost_nor_invented() {
    run_cases(0xE703, 24, |_case, rng| {
        let seed = rng.gen::<u64>();
        let n = 10;
        let nodes: Vec<Spread> = (0..n as u64).map(|u| Spread { best: u * 13 + 3 }).collect();
        let initial_min = 3u64;
        let mut e = Engine::new(
            StaticTopology::new(gen::cycle(n)),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            nodes,
            seed,
        );
        for _ in 0..200 {
            e.step();
            let values: Vec<u64> = e.nodes().iter().map(|p| p.best).collect();
            assert_eq!(
                *values.iter().min().expect("n > 0"),
                initial_min,
                "global min must be preserved"
            );
            for &v in &values {
                assert_eq!((v - 3) % 13, 0, "invented value {v}");
            }
        }
    });
}

#[test]
fn trial_runner_order_and_determinism() {
    run_cases(0xE704, 24, |_case, rng| {
        let trials = rng.gen_range(0..24usize);
        let threads = rng.gen_range(1..5usize);
        let base_seed = rng.gen::<u64>();
        let f = |t: usize, seed: u64| (t, seed.wrapping_mul(3));
        let a = run_trials(trials, base_seed, threads, f);
        let b = run_trials(trials, base_seed, 1, f);
        assert_eq!(a.len(), trials);
        assert_eq!(a, b, "results must not depend on thread count");
    });
}

#[test]
fn activation_schedule_local_rounds_consistent() {
    run_cases(0xE705, 24, |_case, rng| {
        let rounds: Vec<u64> =
            (0..rng.gen_range(1..20usize)).map(|_| rng.gen_range(1..50u64)).collect();
        let probe = rng.gen_range(50..100u64);
        let sched = ActivationSchedule::explicit(rounds.clone());
        for (u, &act) in rounds.iter().enumerate() {
            assert!(sched.is_active(u, probe));
            assert_eq!(sched.local_round(u, probe), probe - act + 1);
            assert!(!sched.is_active(u, act - 1) || act == 1);
        }
        assert_eq!(sched.last_activation(), *rounds.iter().max().expect("nonempty"));
    });
}

/// Same-seed executions must produce byte-identical `RoundTrace` sequences
/// across topologies — the determinism contract the audit subsystem checks
/// (see `mtm_engine::audit`); here it is exercised for the raw engine
/// across several graph families and both connection policies.
#[test]
fn same_seed_traces_identical_across_topologies() {
    let topologies: &[fn(usize) -> mtm_graph::Graph] =
        &[gen::clique, gen::cycle, gen::path, gen::star];
    run_cases(0xE706, 16, |case, rng| {
        let seed = rng.gen::<u64>();
        let build = |params: ModelParams, seed: u64| {
            let n = 9;
            let g = topologies[case as usize % topologies.len()](n);
            let nodes: Vec<Spread> = (0..n as u64).map(|u| Spread { best: u + 1 }).collect();
            let mut e = Engine::new(
                StaticTopology::new(g),
                params,
                ActivationSchedule::synchronized(n),
                nodes,
                seed,
            );
            e.enable_tracing();
            e.run_rounds(120);
            (e.metrics(), e.traces().to_vec())
        };
        for params in [ModelParams::mobile(0), ModelParams::classical()] {
            let (ma, ta) = build(params, seed);
            let (mb, tb) = build(params, seed);
            assert_eq!(ma, mb, "metrics must be a pure function of (seed, config)");
            assert_eq!(ta, tb, "round traces must be a pure function of (seed, config)");
        }
    });
}
