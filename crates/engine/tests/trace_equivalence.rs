//! Trace equivalence: the optimized round executor against a straight-line
//! reference implementation of the model's round structure.
//!
//! [`Engine::step`] earns its speed from an active-set bitmap, a zero-copy
//! scan fast path, a flat proposal arena, and a sharded worker-pool path —
//! none of which may change a single observable bit, because the RNG
//! consumption order is part of the public contract (every recorded
//! `results/*.csv` depends on it; engine semantics v2, see
//! [`mtm_engine::ENGINE_SEMANTICS_VERSION`]). The reference executor here
//! is deliberately naive: it re-queries the activation schedule in every
//! phase, filters visible neighbors into fresh `Vec`s, and keeps incoming
//! proposals as one `Vec` per receiver. The property: across random
//! (topology, schedule, tag_bits, loss, policy, acceptance, seed)
//! configurations — and at every thread count in {1, 2, 4, 8} — engine and
//! reference produce identical round traces, connection logs, metrics, and
//! final node states.

// The reference executor is written in deliberately plain indexed style —
// it should read like the model's pseudocode, not like optimized Rust.
#![allow(clippy::needless_range_loop, clippy::manual_is_multiple_of)]

use mtm_engine::model::Acceptance;
use mtm_engine::{
    Action, ActivationSchedule, ConnectionPolicy, Engine, ModelParams, PayloadCost, Protocol,
    RoundTrace, Scan, Tag,
};
use mtm_graph::dynamic::RelabelingAdversary;
use mtm_graph::{gen, DynamicTopology, Graph, NodeId, StaticTopology};
use mtm_testkit::{run_cases, Rng, SmallRng};
use rand::seq::SliceRandom;

/// A protocol that draws randomness in every hook and folds everything it
/// observes (tags, payloads, local rounds) into its state, so any deviation
/// in call order or RNG stream shows up in the final state comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Chatty {
    tag_bits: u32,
    state: u64,
}

#[derive(Clone)]
struct Word(u64);
impl PayloadCost for Word {
    fn uid_count(&self) -> u32 {
        1
    }
    fn extra_bits(&self) -> u32 {
        64
    }
}

impl Protocol for Chatty {
    type Payload = Word;

    fn advertise(&mut self, local_round: u64, rng: &mut SmallRng) -> Tag {
        // Draws even when b = 0: advertising is allowed to consume
        // randomness regardless of the tag width.
        let r = rng.gen::<u32>();
        self.state = self.state.wrapping_add(u64::from(r)).rotate_left(7) ^ local_round;
        if self.tag_bits == 0 {
            Tag(0)
        } else {
            Tag(r & ((1 << self.tag_bits) - 1))
        }
    }

    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
        // Protocols know their own b and must not read tags when b = 0
        // (the engine hands over an empty tag slice in that case).
        if self.tag_bits > 0 {
            for (i, &t) in scan.tags.iter().enumerate() {
                self.state ^= (u64::from(t.0) << (i % 32)).wrapping_mul(0x9E37_79B9);
            }
        }
        if scan.neighbors.is_empty() || !rng.gen_bool(0.6) {
            return Action::Listen;
        }
        Action::Propose(scan.neighbors[rng.gen_range(0..scan.neighbors.len())])
    }

    fn payload(&self) -> Word {
        Word(self.state)
    }

    fn on_connect(&mut self, peer: &Word, rng: &mut SmallRng) {
        self.state = self.state.rotate_left(13) ^ peer.0 ^ rng.gen::<u64>();
    }

    fn end_round(&mut self, local_round: u64, rng: &mut SmallRng) {
        if local_round % 3 == 0 {
            self.state ^= rng.gen::<u64>();
        }
    }

    fn state_fingerprint(&self) -> Option<u64> {
        Some(self.state)
    }
}

/// Everything observable about one execution.
#[derive(Debug, PartialEq)]
struct Observed {
    traces: Vec<RoundTrace>,
    connection_log: Vec<(u64, NodeId, NodeId)>,
    proposals: u64,
    connections: u64,
    rejected: u64,
    dropped: u64,
    states: Vec<u64>,
}

/// Straight-line reference executor: the round structure of Section III
/// transcribed phase by phase, with no caching and no shared buffers.
struct Reference<T: DynamicTopology> {
    topology: T,
    params: ModelParams,
    schedule: ActivationSchedule,
    nodes: Vec<Chatty>,
    rngs: Vec<SmallRng>,
    loss_prob: f64,
    loss_seed: u64,
    round: u64,
    traces: Vec<RoundTrace>,
    connection_log: Vec<(u64, NodeId, NodeId)>,
    proposals: u64,
    connections: u64,
    rejected: u64,
    dropped: u64,
}

impl<T: DynamicTopology> Reference<T> {
    fn new(
        topology: T,
        params: ModelParams,
        schedule: ActivationSchedule,
        nodes: Vec<Chatty>,
        seed: u64,
        loss_prob: f64,
    ) -> Self {
        let n = nodes.len();
        Reference {
            topology,
            params,
            schedule,
            nodes,
            rngs: (0..n as u64).map(|u| mtm_graph::rng::stream_rng(seed, u)).collect(),
            loss_prob,
            loss_seed: mtm_graph::rng::derive_seed(seed, u64::MAX),
            round: 0,
            traces: Vec::new(),
            connection_log: Vec::new(),
            proposals: 0,
            connections: 0,
            rejected: 0,
            dropped: 0,
        }
    }

    fn step(&mut self) {
        self.round += 1;
        let round = self.round;
        let n = self.nodes.len();
        let graph: Graph = self.topology.graph_at(round).clone();
        let schedule = self.schedule.clone();
        let active = |u: usize| schedule.is_active(u, round);
        let active_count = (0..n).filter(|&u| active(u)).count() as u64;
        let proposals_before = self.proposals;
        let connections_before = self.connections;

        // Phase 1: every active node advertises a tag.
        let mut tags = vec![Tag(0); n];
        for u in 0..n {
            if active(u) {
                let lr = self.schedule.local_round(u, round);
                tags[u] = self.nodes[u].advertise(lr, &mut self.rngs[u]);
                assert!(tags[u].fits(self.params.tag_bits));
            }
        }

        // Phases 2-3: every active node scans its active neighbors and
        // decides to listen or propose. None = inactive, Some(None) =
        // listen, Some(Some(v)) = propose to v.
        let mut decisions: Vec<Option<Option<NodeId>>> = vec![None; n];
        for u in 0..n {
            if !active(u) {
                continue;
            }
            let visible: Vec<NodeId> = graph
                .neighbors(u as NodeId)
                .iter()
                .copied()
                .filter(|&v| active(v as usize))
                .collect();
            let visible_tags: Vec<Tag> = if self.params.tag_bits > 0 {
                visible.iter().map(|&v| tags[v as usize]).collect()
            } else {
                Vec::new()
            };
            let scan = Scan {
                neighbors: &visible,
                tags: &visible_tags,
                round,
                local_round: self.schedule.local_round(u, round),
            };
            decisions[u] = Some(match self.nodes[u].act(&scan, &mut self.rngs[u]) {
                Action::Listen => None,
                Action::Propose(v) => {
                    assert!(visible.contains(&v));
                    Some(v)
                }
            });
        }

        // Phase 4: proposals land (each proposal's loss coin is the pure
        // counter draw of engine semantics v2, evaluated only when loss is
        // enabled); receivers collect them in one Vec each.
        let mut incoming: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for u in 0..n {
            if let Some(Some(v)) = decisions[u] {
                self.proposals += 1;
                if self.loss_prob > 0.0
                    && mtm_graph::rng::counter_coin(self.loss_seed, round, u as u64)
                        < self.loss_prob
                {
                    self.dropped += 1;
                    continue;
                }
                let vi = v as usize;
                if decisions[vi] == Some(None) {
                    incoming[vi].push(u as NodeId);
                } else {
                    self.rejected += 1;
                }
            }
        }

        // Phase 4a: each receiver resolves its proposals, in ascending
        // node id (the canonical v2 delivery order).
        let mut accepted: Vec<(NodeId, NodeId)> = Vec::new();
        for vi in 0..n {
            if incoming[vi].is_empty() {
                continue;
            }
            let v = vi as NodeId;
            let inc = &incoming[vi];
            match self.params.policy {
                ConnectionPolicy::SingleUniform => {
                    let u = match self.params.acceptance {
                        Acceptance::UniformIndex => {
                            let pick = if inc.len() == 1 {
                                0
                            } else {
                                self.rngs[vi].gen_range(0..inc.len())
                            };
                            inc[pick]
                        }
                        Acceptance::SelectionPermutation => {
                            let mut perm: Vec<NodeId> = graph
                                .neighbors(v)
                                .iter()
                                .copied()
                                .filter(|&w| active(w as usize))
                                .collect();
                            perm.shuffle(&mut self.rngs[vi]);
                            *perm
                                .iter()
                                .find(|cand| inc.contains(cand))
                                .expect("every proposer is an active neighbor")
                        }
                    };
                    self.rejected += inc.len() as u64 - 1;
                    accepted.push((u, v));
                }
                ConnectionPolicy::AcceptAll => {
                    for &u in inc {
                        accepted.push((u, v));
                    }
                }
            }
        }

        // Phase 4b: payload exchanges, proposer's hook before receiver's.
        for (u, v) in accepted {
            self.connection_log.push((round, u, v));
            let pu = self.nodes[u as usize].payload();
            let pv = self.nodes[v as usize].payload();
            self.nodes[u as usize].on_connect(&pv, &mut self.rngs[u as usize]);
            self.nodes[v as usize].on_connect(&pu, &mut self.rngs[v as usize]);
            self.connections += 1;
        }

        // Phase 5: end of round.
        for u in 0..n {
            if active(u) {
                let lr = self.schedule.local_round(u, round);
                self.nodes[u].end_round(lr, &mut self.rngs[u]);
            }
        }

        self.traces.push(RoundTrace {
            round,
            active: active_count,
            proposals: self.proposals - proposals_before,
            connections: self.connections - connections_before,
        });
    }

    fn run(mut self, rounds: u64) -> Observed {
        for _ in 0..rounds {
            self.step();
        }
        Observed {
            traces: self.traces,
            connection_log: self.connection_log,
            proposals: self.proposals,
            connections: self.connections,
            rejected: self.rejected,
            dropped: self.dropped,
            states: self.nodes.iter().map(|p| p.state).collect(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_engine<T: DynamicTopology>(
    topology: T,
    params: ModelParams,
    schedule: ActivationSchedule,
    nodes: Vec<Chatty>,
    seed: u64,
    loss_prob: f64,
    rounds: u64,
    threads: usize,
) -> Observed {
    let mut e = Engine::new(topology, params, schedule, nodes, seed);
    e.enable_tracing();
    e.enable_connection_log();
    e.set_threads(threads);
    if loss_prob > 0.0 {
        e.set_proposal_loss(loss_prob);
    }
    e.run_rounds(rounds);
    let m = e.metrics();
    Observed {
        traces: e.traces().to_vec(),
        connection_log: e.connection_log().to_vec(),
        proposals: m.proposals,
        connections: m.connections,
        rejected: m.rejected_proposals,
        dropped: m.dropped_proposals,
        states: e.nodes().iter().map(|p| p.state).collect(),
    }
}

/// One random configuration drawn from the case RNG.
struct Config {
    graph: Graph,
    dynamic_tau: Option<u64>,
    params: ModelParams,
    schedule: ActivationSchedule,
    tag_bits: u32,
    loss_prob: f64,
    seed: u64,
    rounds: u64,
}

fn sample_config(rng: &mut SmallRng) -> Config {
    let n = rng.gen_range(4..20usize);
    let graph = match rng.gen_range(0..5u32) {
        0 => gen::clique(n),
        1 => gen::cycle(n),
        2 => gen::path(n),
        3 => gen::star(n),
        _ => gen::random_regular(n + n % 2, 3, rng.gen::<u64>()),
    };
    let n = graph.node_count();
    let tag_bits = rng.gen_range(0..4u32);
    let params = match rng.gen_range(0..3u32) {
        0 => ModelParams::mobile(tag_bits),
        1 => ModelParams::mobile_with_permutation(tag_bits),
        _ => ModelParams { tag_bits, ..ModelParams::classical() },
    };
    let schedule = match rng.gen_range(0..3u32) {
        0 => ActivationSchedule::synchronized(n),
        1 => ActivationSchedule::explicit((0..n).map(|_| rng.gen_range(1..25u64)).collect()),
        _ => ActivationSchedule::staggered_uniform(n, rng.gen_range(1..30u64), rng.gen::<u64>()),
    };
    Config {
        graph,
        dynamic_tau: if rng.gen_bool(0.3) { Some(rng.gen_range(1..6u64)) } else { None },
        params,
        schedule,
        tag_bits,
        loss_prob: if rng.gen_bool(0.4) { 0.3 } else { 0.0 },
        seed: rng.gen::<u64>(),
        rounds: rng.gen_range(20..60u64),
    }
}

#[test]
fn optimized_step_matches_reference_executor() {
    run_cases(0xE901, 48, |case, rng| {
        let cfg = sample_config(rng);
        let n = cfg.graph.node_count();
        let nodes: Vec<Chatty> = (0..n as u64)
            .map(|u| Chatty { tag_bits: cfg.tag_bits, state: u.wrapping_mul(0xA5A5_A5A5) ^ 1 })
            .collect();

        // One reference run, checked against the engine at every thread
        // count — including 2/4/8 on a sharded path whose shard boundaries
        // differ each time.
        if let Some(tau) = cfg.dynamic_tau {
            let topo = || RelabelingAdversary::new(cfg.graph.clone(), tau, cfg.seed ^ 0xD15C);
            let want = Reference::new(
                topo(),
                cfg.params,
                cfg.schedule.clone(),
                nodes.clone(),
                cfg.seed,
                cfg.loss_prob,
            )
            .run(cfg.rounds);
            for threads in [1usize, 2, 4, 8] {
                let got = run_engine(
                    topo(),
                    cfg.params,
                    cfg.schedule.clone(),
                    nodes.clone(),
                    cfg.seed,
                    cfg.loss_prob,
                    cfg.rounds,
                    threads,
                );
                assert_eq!(
                    got, want,
                    "case {case}: executor at {threads} threads diverged from the \
                     reference (n = {n}, b = {}, loss = {}, rounds = {})",
                    cfg.tag_bits, cfg.loss_prob, cfg.rounds
                );
            }
        } else {
            let topo = || StaticTopology::new(cfg.graph.clone());
            let want = Reference::new(
                topo(),
                cfg.params,
                cfg.schedule.clone(),
                nodes.clone(),
                cfg.seed,
                cfg.loss_prob,
            )
            .run(cfg.rounds);
            for threads in [1usize, 2, 4, 8] {
                let got = run_engine(
                    topo(),
                    cfg.params,
                    cfg.schedule.clone(),
                    nodes.clone(),
                    cfg.seed,
                    cfg.loss_prob,
                    cfg.rounds,
                    threads,
                );
                assert_eq!(
                    got, want,
                    "case {case}: executor at {threads} threads diverged from the \
                     reference (n = {n}, b = {}, loss = {}, rounds = {})",
                    cfg.tag_bits, cfg.loss_prob, cfg.rounds
                );
            }
        }
    });
}

/// The same property through the blind-gossip stack used by the recorded
/// experiments: final leader agreement and metrics must match a reference
/// run exactly (guards the exact workload the CSVs depend on).
#[test]
fn reference_equivalence_holds_for_recorded_workload_shape() {
    run_cases(0xE902, 12, |_case, rng| {
        let seed = rng.gen::<u64>();
        let n = 16;
        let graph = gen::random_regular(n, 4, seed ^ 0xF00D);
        let nodes: Vec<Chatty> =
            (0..n as u64).map(|u| Chatty { tag_bits: 0, state: u + 100 }).collect();
        let want = Reference::new(
            StaticTopology::new(graph.clone()),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            nodes.clone(),
            seed,
            0.0,
        )
        .run(80);
        for threads in [1usize, 2, 4, 8] {
            let got = run_engine(
                StaticTopology::new(graph.clone()),
                ModelParams::mobile(0),
                ActivationSchedule::synchronized(n),
                nodes.clone(),
                seed,
                0.0,
                80,
                threads,
            );
            assert_eq!(got, want, "{threads} threads diverged");
        }
    });
}
