//! Model parameters: tag length `b`, payload budget, connection policy.

/// A `b`-bit advertising tag.
///
/// Tags are the only information a node broadcasts to its whole neighborhood
/// before connections form; the engine enforces that each advertised tag
/// fits in the model's `b` bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Tag(pub u32);

impl Tag {
    /// The empty tag (the only legal tag when `b = 0`).
    pub const EMPTY: Tag = Tag(0);

    /// Number of bits needed to represent this tag value.
    #[inline]
    pub fn bits(self) -> u32 {
        32 - self.0.leading_zeros()
    }

    /// True iff the tag fits in `b` bits.
    #[inline]
    pub fn fits(self, b: u32) -> bool {
        self.bits() <= b
    }
}

/// How a listening node resolves incoming proposals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnectionPolicy {
    /// Mobile telephone model: accept exactly one incoming proposal,
    /// chosen uniformly at random (Section III).
    SingleUniform,
    /// Classical telephone model: accept every incoming proposal. Used only
    /// as the baseline in the model-gap experiment (F6).
    AcceptAll,
}

/// How the uniform acceptance choice is realized under
/// [`ConnectionPolicy::SingleUniform`]. Both are distributionally
/// identical; the permutation form exists because §VI's analysis phrases
/// acceptance that way ("u first generates a random permutation of its
/// neighbors… selects the proposal highest ranked"), and implementing it
/// lets tests verify the equivalence rather than assume it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acceptance {
    /// Pick a uniformly random index into the incoming-proposal list.
    UniformIndex,
    /// Shuffle the receiver's full neighbor list and accept the incoming
    /// proposal whose sender ranks first (Definition VI.2's device).
    SelectionPermutation,
}

/// Static parameters of a model instance.
#[derive(Clone, Copy, Debug)]
pub struct ModelParams {
    /// Tag length `b ≥ 0` in bits.
    pub tag_bits: u32,
    /// Maximum number of UIDs a single connection may carry (the paper
    /// allows O(1); our protocols need at most 2 — a UID and its ID tag
    /// travel together as an ID pair).
    pub max_payload_uids: u32,
    /// Maximum extra (non-UID) bits per connection; the paper allows
    /// `O(polylog N)`.
    pub max_payload_bits: u32,
    /// Proposal-acceptance policy.
    pub policy: ConnectionPolicy,
    /// Realization of the uniform acceptance choice.
    pub acceptance: Acceptance,
}

impl ModelParams {
    /// Mobile telephone model with tag length `b` and the default payload
    /// budget (2 UIDs + 256 extra bits, comfortably `O(polylog N)`).
    pub fn mobile(tag_bits: u32) -> Self {
        ModelParams {
            tag_bits,
            max_payload_uids: 2,
            max_payload_bits: 256,
            policy: ConnectionPolicy::SingleUniform,
            acceptance: Acceptance::UniformIndex,
        }
    }

    /// Classical telephone model (`b = 0`, unbounded acceptance).
    pub fn classical() -> Self {
        ModelParams {
            tag_bits: 0,
            max_payload_uids: 2,
            max_payload_bits: 256,
            policy: ConnectionPolicy::AcceptAll,
            acceptance: Acceptance::UniformIndex,
        }
    }

    /// Mobile model using the §VI selection-permutation acceptance device.
    pub fn mobile_with_permutation(tag_bits: u32) -> Self {
        ModelParams { acceptance: Acceptance::SelectionPermutation, ..Self::mobile(tag_bits) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_bits_counts_width() {
        assert_eq!(Tag(0).bits(), 0);
        assert_eq!(Tag(1).bits(), 1);
        assert_eq!(Tag(2).bits(), 2);
        assert_eq!(Tag(3).bits(), 2);
        assert_eq!(Tag(4).bits(), 3);
        assert_eq!(Tag(255).bits(), 8);
    }

    #[test]
    fn tag_fits_budget() {
        assert!(Tag(0).fits(0));
        assert!(!Tag(1).fits(0));
        assert!(Tag(1).fits(1));
        assert!(!Tag(2).fits(1));
        assert!(Tag(7).fits(3));
        assert!(!Tag(8).fits(3));
    }

    #[test]
    fn param_presets() {
        let m = ModelParams::mobile(1);
        assert_eq!(m.tag_bits, 1);
        assert_eq!(m.policy, ConnectionPolicy::SingleUniform);
        let c = ModelParams::classical();
        assert_eq!(c.tag_bits, 0);
        assert_eq!(c.policy, ConnectionPolicy::AcceptAll);
    }
}
