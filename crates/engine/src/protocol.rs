//! The [`Protocol`] trait: what a distributed algorithm looks like to the
//! round executor.
//!
//! One `Protocol` value is the local state of one node. The engine drives
//! all nodes through the per-round phases described in the crate docs; all
//! randomness flows through the per-node RNG the engine passes in, which
//! keeps trials deterministic and lets the analysis-style independence
//! arguments (every node flips its own coins) hold by construction.

use mtm_graph::NodeId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::model::Tag;

/// What a node sees after scanning in a round: its *active* neighbors and
/// their advertised tags, plus round counters.
pub struct Scan<'a> {
    /// Active neighbors in this round's topology, ascending id order.
    /// Inactive (not-yet-activated) nodes are invisible, matching §VIII's
    /// activation semantics.
    pub neighbors: &'a [NodeId],
    /// `tags[i]` is the tag advertised by `neighbors[i]` this round. Empty
    /// slice when the model has `b = 0`.
    pub tags: &'a [Tag],
    /// Global engine round, 1-based. Only protocols that assume
    /// synchronized starts may key behaviour on this.
    pub round: u64,
    /// Rounds since this node activated, 1-based: the only counter
    /// available to asynchronous-activation protocols (§VIII).
    pub local_round: u64,
}

impl<'a> Scan<'a> {
    /// Tag of the `i`-th visible neighbor ([`Tag::EMPTY`] when `b = 0`).
    #[inline]
    pub fn tag_of(&self, i: usize) -> Tag {
        if self.tags.is_empty() {
            Tag::EMPTY
        } else {
            self.tags[i]
        }
    }

    /// Number of visible neighbors.
    #[inline]
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True iff no neighbor is visible.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }
}

/// A node's decision after scanning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Send a connection proposal to this neighbor (must be visible in the
    /// scan). The node forfeits its ability to receive this round.
    Propose(NodeId),
    /// Receive: accept an incoming proposal per the model's policy.
    Listen,
}

/// Budget accounting for connection payloads. The engine debug-asserts each
/// exchanged payload against [`crate::model::ModelParams`]'s budget,
/// enforcing the problem statement's "O(1) UIDs and O(polylog N) additional
/// bits per connection".
pub trait PayloadCost {
    /// Number of UIDs this payload carries.
    fn uid_count(&self) -> u32;
    /// Non-UID payload bits.
    fn extra_bits(&self) -> u32;
}

/// The local algorithm run by each node.
pub trait Protocol: Send {
    /// Data exchanged over one connection (both directions symmetrically).
    type Payload: Clone + PayloadCost;

    /// Phase 1: choose this round's advertising tag. Must fit the model's
    /// `b` bits (engine-enforced). `local_round` is 1-based.
    fn advertise(&mut self, local_round: u64, rng: &mut SmallRng) -> Tag;

    /// Phase 3: act on the scan — propose to one visible neighbor or
    /// listen.
    fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action;

    /// Phase 4a: produce the payload to send if a connection forms this
    /// round. Called at most once per round, before any `on_connect`.
    fn payload(&self) -> Self::Payload;

    /// Phase 4b: receive the peer's payload over an established connection.
    /// Under the classical policy a node may receive several of these in
    /// one round.
    fn on_connect(&mut self, peer: &Self::Payload, rng: &mut SmallRng);

    /// Phase 5: end-of-round bookkeeping (e.g. bit-convergence nodes adopt
    /// pending ID pairs at phase boundaries). Default: nothing.
    fn end_round(&mut self, _local_round: u64, _rng: &mut SmallRng) {}

    /// A digest of this node's *durable* state, or `None` (the default)
    /// when the protocol does not support progress tracking.
    ///
    /// Consumed by the engine's stuck-run detector (see
    /// [`Engine::enable_stuck_detection`]): a window of rounds in which no
    /// node's fingerprint changes is evidence the run can no longer make
    /// progress. The digest must cover exactly the state whose change
    /// constitutes progress (e.g. the smallest ID pair seen so far) and
    /// must *exclude* per-round scratch that is re-randomized without
    /// reflecting progress (e.g. which bit position a node happens to be
    /// advertising this group) — including such scratch would make a
    /// deadlocked network look permanently busy. Build the digest with
    /// [`crate::fingerprint::of_words`]. Support must be constant over a
    /// node's lifetime: return `Some` always or `None` always.
    ///
    /// [`Engine::enable_stuck_detection`]: crate::Engine::enable_stuck_detection
    fn state_fingerprint(&self) -> Option<u64> {
        None
    }

    // ─── Model-checking interface (consumed by `mtm-check`) ──────────────
    //
    // The checker (crates/check) explores the protocol × topology product
    // automaton exhaustively: instead of letting `advertise`/`act` draw
    // from the per-node RNG, it enumerates every alternative the protocol
    // could randomize over and branches on each. A protocol that opts in
    // must satisfy two structural requirements the checker relies on:
    //
    // * `on_connect` and `end_round` are *deterministic* — they may not
    //   read their RNG argument (true of every protocol in `crates/core`);
    // * all `advertise`/`act` randomness is captured by the enumerations
    //   below, i.e. replaying an enumerated (choice, action) pair with
    //   `apply_choice`/`apply_action` reaches exactly the state the random
    //   implementation could have reached.

    /// True iff this protocol implements the model-checking interface
    /// (`enumerate_choices` / `apply_choice` / `enumerate_actions` /
    /// `apply_action` / `state_words`) and meets its determinism
    /// requirements. Default: not checkable.
    fn supports_check(&self) -> bool {
        false
    }

    /// Every alternative the advertise phase (phase 1) can randomize over
    /// this round. Most protocols advertise deterministically and return
    /// the single choice `[0]` (the default); `NonSyncBitConvergence`
    /// returns one entry per tag-bit position at local group starts.
    /// Protocols whose `advertise` draws randomness MUST override both
    /// this and [`Protocol::apply_choice`].
    fn enumerate_choices(&self, _local_round: u64) -> Vec<u32> {
        vec![0]
    }

    /// Deterministic advertise: apply `choice` (an element of
    /// [`Protocol::enumerate_choices`]) and return the advertised tag,
    /// performing exactly the state updates `advertise` would. The default
    /// forwards to `advertise` with a throwaway RNG and is only correct
    /// for protocols whose advertise phase draws no randomness.
    fn apply_choice(&mut self, local_round: u64, _choice: u32) -> Tag {
        let mut rng = SmallRng::seed_from_u64(0);
        self.advertise(local_round, &mut rng)
    }

    /// Every action the act phase (phase 3) can randomize over, given this
    /// scan. Coin-flip protocols return `Listen` plus one `Propose` per
    /// visible neighbor; forced-propose protocols (PPUSH, bit convergence
    /// on a 0-bit) return only their eligible proposals, with `Listen`
    /// offered *only* when no neighbor is eligible — the checker must not
    /// be able to schedule an action the protocol cannot take. The default
    /// returns an empty set (unsupported; see
    /// [`Protocol::supports_check`]).
    fn enumerate_actions(&self, _scan: &Scan<'_>) -> Vec<Action> {
        Vec::new()
    }

    /// Deterministic act: record that this node takes `action` (an element
    /// of [`Protocol::enumerate_actions`]) this round, performing exactly
    /// the side effects `act` would — e.g. `MaintainedGossip` latches
    /// whether it saw neighbors, the rumor ablations set their per-round
    /// receptivity flags. Default: no side effects.
    fn apply_action(&mut self, _scan: &Scan<'_>, _action: Action) {}

    /// Push this node's *exact* durable state onto `out`, as words. Unlike
    /// [`Protocol::state_fingerprint`] (a hash, collisions tolerable) the
    /// checker keys its visited-state set on these words, so they must
    /// determine all future behaviour together with the round counter
    /// modulo the protocol's period — include durable counters the
    /// fingerprint elides (e.g. maintenance age/grace, the non-synchronized
    /// protocol's current bit position) and exclude per-round scratch that
    /// is rewritten before use. Default: pushes nothing (unsupported).
    fn state_words(&self, _out: &mut Vec<u64>) {}
}

/// Read access to a leader-election protocol's current `leader` variable.
///
/// The leader election problem (Section IV): every node maintains `leader`
/// (initially its own UID); the system is *stabilized* once every node's
/// `leader` holds the same UID forever after.
pub trait LeaderView {
    /// The UID currently stored in this node's `leader` variable.
    fn leader(&self) -> u64;

    /// This node's own UID.
    fn uid(&self) -> u64;
}

/// Read access to an epoch-numbered leadership-maintenance protocol's term
/// counter (service mode — see [`crate::service`]).
///
/// Terms are totally ordered: state tagged with a higher epoch always
/// supersedes state from a lower epoch, and within one epoch the ordinary
/// min-UID election rule applies. A protocol starts every node in epoch 0
/// and bumps the epoch exactly when its failure detector declares the
/// current leader dead.
pub trait EpochView {
    /// The leadership term this node currently participates in.
    fn epoch(&self) -> u64;
}

/// Read access to a rumor-spreading protocol's informed flag.
pub trait RumorView {
    /// True iff this node knows the rumor.
    fn informed(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_tag_of_handles_b0() {
        let neighbors = [1u32, 2, 3];
        let scan = Scan { neighbors: &neighbors, tags: &[], round: 1, local_round: 1 };
        assert_eq!(scan.tag_of(0), Tag::EMPTY);
        assert_eq!(scan.tag_of(2), Tag::EMPTY);
        assert_eq!(scan.len(), 3);
        assert!(!scan.is_empty());
    }

    #[test]
    fn scan_tag_of_indexes_parallel_slice() {
        let neighbors = [5u32, 9];
        let tags = [Tag(1), Tag(0)];
        let scan = Scan { neighbors: &neighbors, tags: &tags, round: 3, local_round: 2 };
        assert_eq!(scan.tag_of(0), Tag(1));
        assert_eq!(scan.tag_of(1), Tag(0));
    }
}
