//! Round-based simulator for the **mobile telephone model** (Newport,
//! IPDPS 2017, Section III) and the classical telephone model baseline.
//!
//! The model: time proceeds in synchronized rounds over a (possibly
//! dynamic) connected topology graph. In each round every node
//!
//! 1. chooses a `b`-bit advertising tag,
//! 2. scans its neighborhood, learning neighbor ids and tags,
//! 3. either sends **one** connection proposal to a neighbor or listens,
//! 4. a listening node with incoming proposals accepts one chosen
//!    **uniformly at random**; the connected pair exchanges a bounded
//!    payload (at most O(1) UIDs plus `O(polylog N)` extra bits),
//! 5. performs local end-of-round bookkeeping.
//!
//! A node that proposes cannot also accept. Each node participates in at
//! most one connection per round. The *classical* telephone model baseline
//! ([`ConnectionPolicy::AcceptAll`]) differs in exactly one way: a listener
//! accepts **every** incoming proposal — the difference Daum et al. and the
//! paper identify as the reason classical results don't transfer to
//! smartphone peer-to-peer networks.
//!
//! Algorithms implement the [`Protocol`] trait and run unchanged under
//! either policy, any [`mtm_graph::DynamicTopology`], and any
//! [`ActivationSchedule`] (Section VIII's asynchronous activations).
//!
//! Everything is deterministic given a trial seed: per-node RNG streams are
//! derived with SplitMix64, so a trial is a pure function of
//! `(topology, protocol construction, seed)`.
//!
//! With the default-on `audit` cargo feature every executed round is
//! additionally validated against the model contract (tag width, payload
//! budget, proposal visibility, matching-shaped acceptance) — see [`audit`].

pub mod activation;
pub mod audit;
pub mod engine;
pub mod event;
pub mod executor;
pub mod fingerprint;
pub mod metrics;
pub mod model;
pub mod protocol;
pub mod runner;
pub mod service;

pub use activation::ActivationSchedule;
pub use audit::determinism_self_check;
pub use engine::{
    rounds_after_activation, Engine, RoundScript, RunOutcome, RunStatus, StuckReport,
    ENGINE_SEMANTICS_VERSION,
};
pub use event::{EventEngine, EventKind, EventOutcome, EventRecord, LatencyModel};
pub use executor::{uniform_accept_index, ExecutorSet, RoundExecuter};
pub use metrics::{Metrics, RoundTrace, ServiceMetrics};
pub use model::{ConnectionPolicy, ModelParams, Tag};
pub use protocol::{Action, EpochView, LeaderView, PayloadCost, Protocol, RumorView, Scan};
pub use service::{EpochRecord, ServiceConfig, ServiceOutcome, ServiceStatus};
