//! Service mode: continuous leadership maintenance under churn.
//!
//! The run-to-* helpers in [`crate::engine`] treat an execution as one
//! elect-once-and-stop trial. Real smartphone swarms need the opposite: a
//! leader is elected, *serves*, dies, and is replaced — repeatedly, for as
//! long as the app is open. [`Engine::run_service`] drives exactly that
//! multi-epoch loop for any protocol implementing [`LeaderView`] +
//! [`EpochView`] (e.g. `mtm_core`'s maintenance protocol), surveying the
//! network after every round and accounting three service-level quantities:
//!
//! * **leaderless downtime** — rounds with no up claimant (nobody serving);
//! * **dual-leader exposure** — rounds with ≥ 2 up claimants (split brain);
//! * **re-elections** — observed increases of the network's maximum epoch.
//!
//! A *claimant* is a node whose `leader` variable holds its own UID; the
//! survey only counts nodes that are activated and up (see
//! [`DynamicTopology::is_node_up`]), because a crashed ex-leader can
//! neither serve nor collide until it recovers.
//!
//! # Wedge diagnosis, not timeouts
//!
//! A service run has no stabilization predicate to time out on — healthy
//! steady state and a permanently split network both just keep executing
//! rounds. The loop therefore reuses the stuck-run fingerprint machinery:
//! if the network's durable state (the fold of every node's
//! [`state_fingerprint`](crate::Protocol::state_fingerprint)) freezes for a
//! full window of rounds *while the up participants disagree* and the
//! topology holds still, no future round can differ from the last one and
//! the run is diagnosed [`ServiceStatus::Wedged`] with the same
//! [`StuckReport`] evidence the single-shot path produces. Agreement
//! resets the window — a frozen fingerprint under full agreement is the
//! *goal* state, not a wedge.

use mtm_graph::{nid, DynamicTopology};

use crate::engine::{Engine, StuckReport};
use crate::metrics::{Metrics, ServiceMetrics};
use crate::protocol::{EpochView, LeaderView, Protocol};

/// Parameters for one [`Engine::run_service`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Rounds to execute (on top of any rounds the engine already ran).
    pub horizon: u64,
    /// Wedge-detection window in rounds; `0` disables the detector. Size it
    /// like a stuck-detection window: longer than the longest legitimate
    /// gap between durable-state changes during a live re-election.
    pub wedge_window: u64,
}

impl ServiceConfig {
    /// Run `horizon` rounds with wedge detection off.
    pub fn rounds(horizon: u64) -> ServiceConfig {
        ServiceConfig { horizon, wedge_window: 0 }
    }

    /// Enable wedge diagnosis with the given window.
    pub fn with_wedge_window(mut self, window: u64) -> ServiceConfig {
        self.wedge_window = window;
        self
    }
}

/// Why [`Engine::run_service`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceStatus {
    /// The full horizon was executed. Service quality is in the metrics —
    /// a completed run may still have been leaderless for most of it.
    Completed,
    /// The wedge detector fired: durable state froze for a full window with
    /// the up participants in disagreement and the topology still. The run
    /// was cut short because no future round can differ.
    Wedged(StuckReport),
}

/// One observed leadership term.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochRecord {
    /// The term number (the network-wide maximum epoch while this record
    /// was current).
    pub epoch: u64,
    /// Round at the end of which this epoch was first observed (0 for the
    /// initial epoch of a fresh engine).
    pub started_round: u64,
    /// First round at the end of which every up participant agreed on this
    /// epoch and one leader, if that happened before the term ended.
    pub agreed_round: Option<u64>,
    /// The agreed leader's UID, once `agreed_round` is set.
    pub leader: Option<u64>,
}

/// Everything [`Engine::run_service`] learned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// Why the loop returned.
    pub status: ServiceStatus,
    /// Rounds actually executed by this call (equals the horizon unless the
    /// wedge detector cut the run short).
    pub rounds: u64,
    /// The network-wide maximum epoch at the end of the run.
    pub final_epoch: u64,
    /// The agreed `(epoch, leader)` UID at the last executed round, if the
    /// up participants agreed.
    pub final_leader: Option<u64>,
    /// Safety/liveness counters (see [`ServiceMetrics`]).
    pub service: ServiceMetrics,
    /// Every leadership term observed, in order. The multi-epoch trace —
    /// deterministic for fixed `(seed, config)`.
    pub epochs: Vec<EpochRecord>,
    /// Engine-level counters for the whole execution so far.
    pub metrics: Metrics,
}

/// Per-round survey of the service state: who is up, who claims, whether
/// the up participants agree.
struct Survey {
    participants: u64,
    claimants: u64,
    max_epoch: u64,
    /// `Some((epoch, leader))` iff `participants ≥ 1` and all agree.
    agreement: Option<(u64, u64)>,
}

impl<P, T> Engine<P, T>
where
    P: Protocol + LeaderView + EpochView,
    T: DynamicTopology,
{
    /// Survey the current round's service state. Must run after `step()` so
    /// fault chains are advanced through the current round.
    fn survey(&self) -> Survey {
        let round = self.round();
        let mut participants = 0u64;
        let mut claimants = 0u64;
        let mut max_epoch = 0u64;
        let mut agreement: Option<(u64, u64)> = None;
        let mut agreed = true;
        for (u, node) in self.nodes().iter().enumerate() {
            if !self.is_active(u) || !self.topology().is_node_up(nid(u), round) {
                continue;
            }
            participants += 1;
            let view = (node.epoch(), node.leader());
            max_epoch = max_epoch.max(view.0);
            if node.leader() == node.uid() {
                claimants += 1;
            }
            match agreement {
                None => agreement = Some(view),
                Some(first) => agreed &= first == view,
            }
        }
        Survey { participants, claimants, max_epoch, agreement: agreement.filter(|_| agreed) }
    }

    /// Run the service loop for `cfg.horizon` rounds (or until wedged),
    /// accounting leaderless downtime, dual-leader exposure and
    /// re-elections. See the module docs for the exact definitions.
    ///
    /// The call composes: a second `run_service` continues from the current
    /// round with fresh counters, so a scenario can be phased (elect, then
    /// crash, then measure recovery) while remaining one deterministic
    /// execution.
    pub fn run_service(&mut self, cfg: &ServiceConfig) -> ServiceOutcome {
        let start_round = self.round();
        let end_round = start_round + cfg.horizon;
        let mut service = ServiceMetrics::default();
        let mut status = ServiceStatus::Completed;

        // Seed the epoch history from the pre-run state (epoch 0 for a
        // fresh engine, or wherever a previous phase left the network).
        let initial_epoch = self.nodes().iter().map(EpochView::epoch).max().unwrap_or(0);
        let mut epochs = vec![EpochRecord {
            epoch: initial_epoch,
            started_round: start_round,
            agreed_round: None,
            leader: None,
        }];

        // Wedge-detector state, mirroring the engine's stuck detector.
        let mut last_fp: Option<u64> = None;
        let mut frozen_rounds = 0u64;
        let mut frozen_since = start_round;
        let mut connections_at_freeze = self.metrics().connections;

        let mut final_agreement: Option<(u64, u64)> = None;
        while self.round() < end_round {
            self.step();
            let round = self.round();
            let s = self.survey();

            if s.claimants == 0 {
                service.leaderless_rounds += 1;
            } else if s.claimants >= 2 {
                service.dual_leader_rounds += 1;
            }
            service.max_concurrent_claimants = service.max_concurrent_claimants.max(s.claimants);

            // Epoch bookkeeping: an increase of the network max epoch ends
            // the current term and starts a new one.
            let current = epochs.last_mut().expect("history starts non-empty");
            if s.max_epoch > current.epoch {
                service.re_elections += 1;
                epochs.push(EpochRecord {
                    epoch: s.max_epoch,
                    started_round: round,
                    agreed_round: None,
                    leader: None,
                });
            } else if let Some((epoch, leader)) = s.agreement {
                if epoch == current.epoch && current.agreed_round.is_none() {
                    current.agreed_round = Some(round);
                    current.leader = Some(leader);
                }
            }
            if s.agreement.is_some() && s.claimants == 1 {
                service.stable_rounds += 1;
            }
            final_agreement = s.agreement.filter(|_| s.participants > 0);

            // Wedge diagnosis (see module docs). Barriers match the stuck
            // detector: a frozen state only evidences a dead end while the
            // topology holds still and every node has activated.
            if cfg.wedge_window > 0 {
                if let Some(fp) = self.network_fingerprint() {
                    let barrier = self.topology().may_change_at(round)
                        || round <= self.schedule().last_activation();
                    if barrier || last_fp != Some(fp) || s.agreement.is_some() {
                        last_fp = Some(fp);
                        frozen_rounds = 0;
                        frozen_since = round;
                        connections_at_freeze = self.metrics().connections;
                    } else {
                        frozen_rounds += 1;
                        if frozen_rounds >= cfg.wedge_window {
                            status = ServiceStatus::Wedged(StuckReport {
                                fixed_since: frozen_since,
                                detected_round: round,
                                window: cfg.wedge_window,
                                idle_connections: self.metrics().connections
                                    - connections_at_freeze,
                            });
                            break;
                        }
                    }
                }
            }
        }

        ServiceOutcome {
            status,
            rounds: self.round() - start_round,
            final_epoch: epochs.last().map_or(initial_epoch, |e| e.epoch),
            final_leader: final_agreement.map(|(_, leader)| leader),
            service,
            epochs,
            metrics: self.metrics(),
        }
    }
}
