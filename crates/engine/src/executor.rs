//! Typed per-node round executors: the backend-independent protocol
//! surface.
//!
//! A [`RoundExecuter`] binds one node's [`Protocol`] state to its private
//! RNG stream and exposes the round phases as *typed message I/O*: every
//! phase method consumes plain data (a [`Scan`], a payload) and returns
//! plain data (a [`Tag`], an [`Action`], an acceptance index). Nothing in
//! this module knows how rounds are scheduled — that is a backend's job —
//! so the same executors drive both
//!
//! * the **lockstep backend** ([`crate::Engine`]): global synchronized
//!   rounds, sequential or sharded (`set_threads`), batched over
//!   struct-of-arrays state for the hot path; and
//! * the **event backend** ([`crate::event::EventEngine`]): a discrete-event
//!   simulation with per-link latencies and no global round clock, which
//!   owns a `Vec<RoundExecuter<P>>` and calls these methods one event at a
//!   time.
//!
//! The split follows tofn's `RoundExecuter`/`ProtocolBuilder` idiom
//! (SNIPPETS.md §2–3): protocol logic produces and consumes messages as
//! values; the engine that moves those messages is swappable.
//!
//! # RNG binding is part of the determinism contract
//!
//! [`ExecutorSet::spawn`] is the **single definition** of the node↔stream
//! binding: node `u` executes on `stream_rng(seed, u)`, and every random
//! choice a node makes — advertise, act, the acceptance draw when it
//! listens — comes from its own executor's stream. Backends may not draw
//! node randomness from anywhere else. The lockstep engine's recorded
//! tables depend on the exact draw order within a round (see the
//! [`crate::engine`] module docs); the event backend interleaves the same
//! per-node streams in event order instead, which is its own recorded
//! semantics.

use mtm_graph::NodeId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::model::Tag;
use crate::protocol::{Action, Protocol, Scan};

/// The uniform acceptance draw shared by every backend: a listener with
/// `k ≥ 1` buffered proposals accepts index `gen_range(0..k)` from its own
/// stream — except that `k = 1` consumes **no** randomness (part of the
/// recorded RNG contract; both engine paths and the trace-equivalence
/// reference implement exactly this rule).
#[inline]
pub fn uniform_accept_index(rng: &mut SmallRng, k: usize) -> usize {
    debug_assert!(k >= 1, "acceptance draw over an empty proposal set");
    if k == 1 {
        0
    } else {
        rng.gen_range(0..k)
    }
}

/// One node's typed round executor: protocol state + its private RNG
/// stream, with each phase exposed as data-in/data-out.
pub struct RoundExecuter<P: Protocol> {
    proto: P,
    rng: SmallRng,
}

impl<P: Protocol> RoundExecuter<P> {
    /// Bind an already-derived RNG stream to a protocol instance. Prefer
    /// [`ExecutorSet::spawn`], which derives the canonical per-node
    /// streams; this constructor exists for backends that re-assemble
    /// executors from the engine's struct-of-arrays state.
    pub fn from_parts(proto: P, rng: SmallRng) -> Self {
        RoundExecuter { proto, rng }
    }

    /// Split back into `(protocol, rng)` — the lockstep engine stores the
    /// two halves in parallel arrays so its phase loops stream linearly.
    pub fn into_parts(self) -> (P, SmallRng) {
        (self.proto, self.rng)
    }

    /// Phase 1: choose this round's advertising tag (out-message: the tag
    /// posted to the whole neighborhood).
    #[inline]
    pub fn advertise(&mut self, local_round: u64) -> Tag {
        self.proto.advertise(local_round, &mut self.rng)
    }

    /// Phase 3: act on a scan — the out-message is either one proposal
    /// ([`Action::Propose`]) or the decision to listen.
    #[inline]
    pub fn act(&mut self, scan: &Scan<'_>) -> Action {
        self.proto.act(scan, &mut self.rng)
    }

    /// Phase 4 (listener side): resolve `k` buffered proposals to the index
    /// of the accepted one, drawing from this node's own stream (see
    /// [`uniform_accept_index`]).
    #[inline]
    pub fn accept_index(&mut self, k: usize) -> usize {
        uniform_accept_index(&mut self.rng, k)
    }

    /// Phase 4 (listener side, §VI selection-permutation device): shuffle
    /// the candidate neighbor list with this node's stream; the caller
    /// accepts the buffered proposer that ranks first.
    #[inline]
    pub fn shuffle_candidates(&mut self, candidates: &mut [NodeId]) {
        candidates.shuffle(&mut self.rng);
    }

    /// Phase 4a: the payload this node attaches to a connection
    /// (out-message data; computed before any delivery of the round).
    #[inline]
    pub fn payload(&self) -> P::Payload {
        self.proto.payload()
    }

    /// Phase 4b: take delivery of a peer's payload (in-message data).
    #[inline]
    pub fn deliver(&mut self, peer: &P::Payload) {
        self.proto.on_connect(peer, &mut self.rng);
    }

    /// Phase 5: end-of-round bookkeeping.
    #[inline]
    pub fn end_round(&mut self, local_round: u64) {
        self.proto.end_round(local_round, &mut self.rng);
    }

    /// The node's durable-state digest (see
    /// [`Protocol::state_fingerprint`]).
    #[inline]
    pub fn fingerprint(&self) -> Option<u64> {
        self.proto.state_fingerprint()
    }

    /// Read access to the protocol state.
    #[inline]
    pub fn protocol(&self) -> &P {
        &self.proto
    }

    /// Consume the executor, returning the protocol state.
    pub fn into_protocol(self) -> P {
        self.proto
    }
}

/// The full network's executors plus the trial seed they were derived from
/// — the analog of tofn's `ProtocolBuilder`: constructed once from
/// `(protocols, seed)`, then handed to a backend.
pub struct ExecutorSet<P: Protocol> {
    execs: Vec<RoundExecuter<P>>,
    seed: u64,
}

impl<P: Protocol> ExecutorSet<P> {
    /// Spawn one executor per protocol instance. Node `u` is bound to RNG
    /// stream `stream_rng(seed, u)` — the canonical binding every backend
    /// inherits by construction.
    pub fn spawn(protocols: Vec<P>, seed: u64) -> Self {
        let execs = protocols
            .into_iter()
            .enumerate()
            .map(|(u, proto)| {
                RoundExecuter::from_parts(proto, mtm_graph::rng::stream_rng(seed, u as u64))
            })
            .collect();
        ExecutorSet { execs, seed }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.execs.len()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.execs.is_empty()
    }

    /// The trial seed the streams were derived from. Backends derive their
    /// *non-node* randomness (loss coins, latency draws) from dedicated
    /// sub-streams of this seed so node streams are never perturbed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-node executors, consuming the set.
    pub fn into_executors(self) -> Vec<RoundExecuter<P>> {
        self.execs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PayloadCost;
    use rand::SeedableRng;

    struct Probe {
        best: u64,
        ended: u64,
    }

    #[derive(Clone)]
    struct P64(u64);
    impl PayloadCost for P64 {
        fn uid_count(&self) -> u32 {
            1
        }
        fn extra_bits(&self) -> u32 {
            0
        }
    }

    impl Protocol for Probe {
        type Payload = P64;
        fn advertise(&mut self, _lr: u64, _rng: &mut SmallRng) -> Tag {
            Tag::EMPTY
        }
        fn act(&mut self, scan: &Scan<'_>, _rng: &mut SmallRng) -> Action {
            if scan.is_empty() {
                Action::Listen
            } else {
                Action::Propose(scan.neighbors[0])
            }
        }
        fn payload(&self) -> P64 {
            P64(self.best)
        }
        fn on_connect(&mut self, peer: &P64, _rng: &mut SmallRng) {
            self.best = self.best.min(peer.0);
        }
        fn end_round(&mut self, _lr: u64, _rng: &mut SmallRng) {
            self.ended += 1;
        }
    }

    #[test]
    fn executor_routes_phases_to_protocol() {
        let set = ExecutorSet::spawn(vec![Probe { best: 9, ended: 0 }], 7);
        assert_eq!(set.len(), 1);
        assert_eq!(set.seed(), 7);
        let mut ex = set.into_executors().pop().expect("one executor was spawned");
        assert_eq!(ex.advertise(1), Tag::EMPTY);
        let nbrs = [3u32];
        let scan = Scan { neighbors: &nbrs, tags: &[], round: 1, local_round: 1 };
        assert_eq!(ex.act(&scan), Action::Propose(3));
        ex.deliver(&P64(4));
        ex.end_round(1);
        assert_eq!(ex.payload().0, 4);
        let proto = ex.into_protocol();
        assert_eq!(proto.ended, 1);
    }

    #[test]
    fn spawn_binds_canonical_streams() {
        // The executor's stream must be exactly stream_rng(seed, u): draws
        // from the two must coincide.
        let set =
            ExecutorSet::spawn(vec![Probe { best: 0, ended: 0 }, Probe { best: 1, ended: 0 }], 42);
        for (u, ex) in set.into_executors().into_iter().enumerate() {
            let (_, mut rng) = ex.into_parts();
            let mut reference = mtm_graph::rng::stream_rng(42, u as u64);
            for _ in 0..8 {
                assert_eq!(rng.gen::<u64>(), reference.gen::<u64>());
            }
        }
    }

    #[test]
    fn accept_index_draw_rule() {
        // k = 1 consumes no randomness; k > 1 draws gen_range(0..k).
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        assert_eq!(uniform_accept_index(&mut a, 1), 0);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "k = 1 must not advance the stream");
        let mut c = SmallRng::seed_from_u64(9);
        let mut d = SmallRng::seed_from_u64(9);
        assert_eq!(uniform_accept_index(&mut c, 5), d.gen_range(0..5));
    }
}
