//! Activation schedules for the asynchronous-activation setting (§VIII).
//!
//! Each node has an activation round; before it, the node does not
//! advertise, does not appear in scans, cannot be proposed to, and executes
//! no protocol phases. Its local round counter starts at 1 on activation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// When each node activates (1-based engine rounds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActivationSchedule {
    rounds: Vec<u64>,
}

impl ActivationSchedule {
    /// All `n` nodes activate in round 1 (the synchronized-start setting of
    /// §VI and §VII).
    pub fn synchronized(n: usize) -> Self {
        ActivationSchedule { rounds: vec![1; n] }
    }

    /// Explicit per-node activation rounds (all must be ≥ 1).
    pub fn explicit(rounds: Vec<u64>) -> Self {
        assert!(rounds.iter().all(|&r| r >= 1), "activation rounds are 1-based");
        assert!(!rounds.is_empty(), "empty schedule");
        ActivationSchedule { rounds }
    }

    /// Each node activates uniformly at random in `1..=window`, except node
    /// 0 which activates in round 1 (so the network is never empty).
    pub fn staggered_uniform(n: usize, window: u64, seed: u64) -> Self {
        assert!(window >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rounds: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=window)).collect();
        if let Some(first) = rounds.first_mut() {
            *first = 1;
        }
        ActivationSchedule { rounds }
    }

    /// Two waves: nodes `0..split` activate in round 1, the rest in round
    /// `second_wave`. Models late-joining groups (self-stabilization).
    pub fn two_wave(n: usize, split: usize, second_wave: u64) -> Self {
        assert!(split <= n && second_wave >= 1);
        let rounds = (0..n).map(|u| if u < split { 1 } else { second_wave }).collect();
        ActivationSchedule { rounds }
    }

    /// Number of nodes in the schedule.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True iff the schedule covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Activation round of node `u`.
    #[inline]
    pub fn activation_round(&self, u: usize) -> u64 {
        self.rounds[u]
    }

    /// True iff node `u` is active in engine round `round`.
    #[inline]
    pub fn is_active(&self, u: usize, round: u64) -> bool {
        round >= self.rounds[u]
    }

    /// Node `u`'s 1-based local round counter during engine round `round`
    /// (only valid when active).
    #[inline]
    pub fn local_round(&self, u: usize, round: u64) -> u64 {
        debug_assert!(self.is_active(u, round));
        round - self.rounds[u] + 1
    }

    /// The round by which every node has activated.
    pub fn last_activation(&self) -> u64 {
        self.rounds.iter().copied().max().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_all_round_one() {
        let s = ActivationSchedule::synchronized(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.last_activation(), 1);
        for u in 0..4 {
            assert!(s.is_active(u, 1));
            assert_eq!(s.local_round(u, 5), 5);
        }
    }

    #[test]
    fn staggered_within_window_and_node0_first() {
        let s = ActivationSchedule::staggered_uniform(50, 20, 7);
        assert_eq!(s.activation_round(0), 1);
        for u in 0..50 {
            let r = s.activation_round(u);
            assert!((1..=20).contains(&r));
        }
        assert!(s.last_activation() <= 20);
    }

    #[test]
    fn staggered_is_deterministic() {
        let a = ActivationSchedule::staggered_uniform(10, 5, 3);
        let b = ActivationSchedule::staggered_uniform(10, 5, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn two_wave_split() {
        let s = ActivationSchedule::two_wave(6, 2, 10);
        assert!(s.is_active(0, 1));
        assert!(s.is_active(1, 1));
        assert!(!s.is_active(2, 9));
        assert!(s.is_active(2, 10));
        assert_eq!(s.last_activation(), 10);
        assert_eq!(s.local_round(3, 12), 3);
    }

    #[test]
    fn local_round_counts_from_activation() {
        let s = ActivationSchedule::explicit(vec![1, 4]);
        assert_eq!(s.local_round(0, 4), 4);
        assert_eq!(s.local_round(1, 4), 1);
        assert_eq!(s.local_round(1, 6), 3);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn explicit_rejects_round_zero() {
        ActivationSchedule::explicit(vec![0, 1]);
    }
}
