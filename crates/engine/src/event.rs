//! The event-driven backend: a deterministic discrete-event simulation of
//! the mobile telephone model with **no global round clock**.
//!
//! The lockstep [`Engine`](crate::Engine) advances every node through the
//! same numbered round. Real smartphone meshes (Multipeer, Wi-Fi Direct)
//! do nothing of the sort: scans take device-dependent time, link latencies
//! vary per pair and per message, and each node runs its *own* round loop,
//! drifting freely against its neighbors. This backend models exactly
//! that, driving the same typed [`RoundExecuter`]s as the lockstep engine
//! (see [`crate::executor`]) through an event queue:
//!
//! * **RoundStart(u)** — `u` begins local round `r`: it advertises
//!   (executor draw) and posts the tag to the shared blackboard, then its
//!   scan completes after `scan` ticks.
//! * **Act(u)** — `u` scans the *current* tags of every neighbor that has
//!   started (a drifted neighbor may be mid-round — that is the point) and
//!   acts. A proposal travels as a message carrying the proposer's payload
//!   snapshot and arrives after a per-link latency; a listener opens a
//!   listen window of `listen` ticks.
//! * **Proposal(u → v)** — buffered if `v` is inside a listen window,
//!   otherwise rejected immediately (reject response after the return
//!   latency).
//! * **ListenEnd(v)** — `v` resolves its buffer: one proposal accepted
//!   uniformly (the [`RoundExecuter::accept_index`] draw from `v`'s own
//!   stream — the same rule as the lockstep backend), the rest rejected;
//!   responses carry `v`'s payload snapshot back to the accepted proposer.
//!   `v` ends its round and immediately starts the next.
//! * **Response(v → u)** — unblocks the proposer; an accepting response
//!   delivers `v`'s payload. `u` ends its round and starts the next.
//!
//! # Determinism contract
//!
//! An execution is a pure function of `(graph, protocols, seed, latency
//! model, loss)`:
//!
//! * **All latency draws are counter-based** (like the v2 loss coins): a
//!   duration is `min + ⌊coin · (spread+1)⌋` with
//!   `coin = counter_coin(stream_seed, key, counter)` — a pure function of
//!   its keys, independent of event-processing order. Scan and listen
//!   windows are keyed on `(node, local round)`; link latencies on
//!   `(sender, receiver)` and the sender's message counter; per-node start
//!   jitter on the node id. Stream seeds are derived from the trial seed
//!   far outside the per-node range, so node randomness is never perturbed.
//! * **Event order is total**: the queue pops by `(time, node id,
//!   scheduling sequence)` — ties at one instant resolve by node id, and
//!   a node's same-instant events by the (deterministic) order they were
//!   scheduled in.
//! * **Node randomness** flows only through each node's own
//!   [`RoundExecuter`] stream, exactly as in the lockstep backend; only
//!   the interleaving differs.
//!
//! Same seed ⇒ same event trace, byte for byte (pinned by tests here and
//! by `tests/event_backend.rs`).
//!
//! Proposal loss (`set_proposal_loss`) drops the proposal message itself;
//! the proposer is unblocked by a timeout scheduled at the instant the
//! reject would have arrived (one round trip), so loss never deadlocks the
//! run. Crash/churn fault layers are a lockstep-only feature for now — the
//! backend runs on a static [`Graph`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mtm_graph::rng::{counter_coin, derive_seed};
use mtm_graph::{Graph, NodeId};

use crate::executor::{ExecutorSet, RoundExecuter};
use crate::metrics::Metrics;
use crate::model::{Acceptance, ConnectionPolicy, ModelParams, Tag};
use crate::protocol::{Action, LeaderView, PayloadCost, Protocol, RumorView, Scan};

/// Per-phase timing distributions, in integer ticks. Every duration is
/// drawn uniformly from `[min, min + spread]` via a counter-based coin —
/// `spread = 0` makes the phase deterministic while the composition stays
/// asynchronous (nodes still drift through accumulated round-trip
/// differences and start jitter).
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Minimum ticks for a scan (neighborhood discovery) to complete.
    pub scan_min: u64,
    /// Extra uniform spread on the scan time.
    pub scan_spread: u64,
    /// Minimum one-way link latency per message.
    pub link_min: u64,
    /// Extra uniform spread on each link latency.
    pub link_spread: u64,
    /// Minimum length of a listener's accept window.
    pub listen_min: u64,
    /// Extra uniform spread on the listen window.
    pub listen_spread: u64,
    /// Per-node start jitter: node `u` begins its first round at a uniform
    /// time in `[0, start_spread]`.
    pub start_spread: u64,
}

impl LatencyModel {
    /// A Multipeer-flavored model parameterized by one `spread` knob (the
    /// AS1/AS2 sweep axis): discovery is the slow phase, links are fast,
    /// and all spreads scale together. `spread = 0` gives fixed durations.
    pub fn multipeer(spread: u64) -> Self {
        LatencyModel {
            scan_min: 4,
            scan_spread: spread,
            link_min: 1,
            link_spread: spread / 2,
            listen_min: 6,
            listen_spread: spread,
            start_spread: 4 * spread,
        }
    }

    /// Nominal ticks of one listen-shaped round (scan + listen window at
    /// the distribution means) — the conversion factor between lockstep
    /// rounds and event time used by the AS experiments' bound column.
    pub fn nominal_round_ticks(&self) -> f64 {
        self.scan_min as f64
            + self.scan_spread as f64 / 2.0
            + self.listen_min as f64
            + self.listen_spread as f64 / 2.0
    }

    fn validate(&self) {
        assert!(
            self.scan_min >= 1 && self.link_min >= 1 && self.listen_min >= 1,
            "phase minimums must be ≥ 1 tick so local time always advances"
        );
    }
}

/// What happened at one event, for the recorded trace (see
/// [`EventEngine::enable_event_trace`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A node began a local round (advertised).
    RoundStart,
    /// A node's scan completed and it acted.
    Act,
    /// A proposal message arrived at its receiver.
    Proposal,
    /// A listener's window closed and its buffer was resolved.
    ListenEnd,
    /// A response (accept/reject/timeout) arrived at a proposer.
    Response,
}

/// One entry of the recorded event trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Simulation time the event was processed at.
    pub time: u64,
    /// The node the event was processed *at*.
    pub node: NodeId,
    /// Event kind.
    pub kind: EventKind,
}

/// Outcome of an event-backend run helper.
#[derive(Clone, Copy, Debug)]
pub struct EventOutcome {
    /// Simulation time (ticks) at which the target predicate first held,
    /// if it did within the time budget.
    pub completed_at: Option<u64>,
    /// The agreed leader UID (election runs only).
    pub winner: Option<u64>,
    /// Aggregate counters. `rounds` holds the *maximum* local round any
    /// node reached — there is no global round number.
    pub metrics: Metrics,
    /// Mean local round across nodes when the run ended.
    pub mean_local_rounds: f64,
    /// Events processed.
    pub events: u64,
}

/// The payload-carrying message vocabulary of the backend.
enum Ev<PL> {
    RoundStart,
    Act,
    /// A proposal from `from`, carrying its payload snapshot.
    Proposal {
        from: NodeId,
        payload: PL,
    },
    ListenEnd,
    /// The response to this node's pending proposal: `Some(payload)` =
    /// accepted (the responder's payload snapshot), `None` = rejected or
    /// the loss timeout.
    Response {
        accepted: Option<PL>,
    },
}

impl<PL> Ev<PL> {
    fn kind(&self) -> EventKind {
        match self {
            Ev::RoundStart => EventKind::RoundStart,
            Ev::Act => EventKind::Act,
            Ev::Proposal { .. } => EventKind::Proposal,
            Ev::ListenEnd => EventKind::ListenEnd,
            Ev::Response { .. } => EventKind::Response,
        }
    }
}

/// Heap entry. Ordered by `(time, node, seq)` — `seq` is the global
/// scheduling counter, unique per event, so the order is total and
/// deterministic.
struct QueuedEvent<PL> {
    time: u64,
    node: NodeId,
    seq: u64,
    ev: Ev<PL>,
}

impl<PL> QueuedEvent<PL> {
    fn key(&self) -> (u64, NodeId, u64) {
        (self.time, self.node, self.seq)
    }
}

impl<PL> PartialEq for QueuedEvent<PL> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<PL> Eq for QueuedEvent<PL> {}
impl<PL> PartialOrd for QueuedEvent<PL> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<PL> Ord for QueuedEvent<PL> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other.key().cmp(&self.key())
    }
}

/// Where a node is inside its local round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Between RoundStart and Act (scan in flight).
    Scanning,
    /// Inside a listen window (buffering proposals).
    Listening,
    /// Proposal sent, waiting for the response.
    Waiting,
}

/// Uniform integer draw in `[min, min + spread]` from a counter-based coin
/// — a pure function of `(seed, a, b)`, independent of evaluation order.
#[inline]
fn draw(seed: u64, a: u64, b: u64, min: u64, spread: u64) -> u64 {
    min + (counter_coin(seed, a, b) * (spread + 1) as f64) as u64
}

/// Directed-link key for latency/loss coins.
#[inline]
fn link_key(from: NodeId, to: NodeId) -> u64 {
    ((from as u64) << 32) | to as u64
}

/// The discrete-event executor. See the module docs for the event
/// vocabulary and the determinism contract.
pub struct EventEngine<P: Protocol> {
    graph: Graph,
    params: ModelParams,
    latency: LatencyModel,
    execs: Vec<RoundExecuter<P>>,
    loss_prob: f64,
    // Dedicated counter-coin streams (derived far from the node range).
    start_seed: u64,
    scan_seed: u64,
    listen_seed: u64,
    link_seed: u64,
    loss_seed: u64,
    now: u64,
    seq: u64,
    heap: BinaryHeap<QueuedEvent<P::Payload>>,
    phase: Vec<Phase>,
    local_round: Vec<u64>,
    /// A node is visible to scans once it has advertised at least once.
    started: Vec<bool>,
    tags: Vec<Tag>,
    /// Listener buffers: proposals that arrived inside the open window.
    buffers: Vec<Vec<(NodeId, P::Payload)>>,
    /// Per-node outgoing message counter (link-coin counter).
    msg_seq: Vec<u64>,
    metrics: Metrics,
    events: u64,
    trace: Option<Vec<EventRecord>>,
    // Scan scratch, reused across events.
    vis: Vec<NodeId>,
    vis_tags: Vec<Tag>,
}

impl<P: Protocol> EventEngine<P> {
    /// Build an event backend for `protocols` over the static `graph`.
    ///
    /// `seed` plays the same role as for the lockstep engine: node `u`
    /// executes on `stream_rng(seed, u)` (via [`ExecutorSet::spawn`]), and
    /// the latency/loss coin streams are derived from dedicated
    /// sub-streams. Only [`ConnectionPolicy::SingleUniform`] with
    /// [`Acceptance::UniformIndex`] is modeled — the mobile telephone
    /// model's acceptance rule.
    pub fn new(
        graph: Graph,
        params: ModelParams,
        protocols: Vec<P>,
        seed: u64,
        latency: LatencyModel,
    ) -> Self {
        latency.validate();
        assert_eq!(
            params.policy,
            ConnectionPolicy::SingleUniform,
            "the event backend models the mobile model's single-accept rule"
        );
        assert_eq!(
            params.acceptance,
            Acceptance::UniformIndex,
            "the event backend resolves acceptance by uniform index draw"
        );
        let n = graph.node_count();
        assert_eq!(protocols.len(), n, "one protocol instance per graph node");
        let set = ExecutorSet::spawn(protocols, seed);
        // One dedicated stream per coin family, derived far outside the
        // per-node stream range (the lockstep engine reserves u64::MAX for
        // its loss stream; this backend derives from u64::MAX - 1).
        let base = derive_seed(seed, u64::MAX - 1);
        let mut engine = EventEngine {
            graph,
            params,
            latency,
            execs: set.into_executors(),
            loss_prob: 0.0,
            start_seed: derive_seed(base, 0),
            scan_seed: derive_seed(base, 1),
            listen_seed: derive_seed(base, 2),
            link_seed: derive_seed(base, 3),
            loss_seed: derive_seed(base, 4),
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            phase: vec![Phase::Scanning; n],
            local_round: vec![0; n],
            started: vec![false; n],
            tags: vec![Tag::EMPTY; n],
            buffers: (0..n).map(|_| Vec::new()).collect(),
            msg_seq: vec![0; n],
            metrics: Metrics::default(),
            events: 0,
            trace: None,
            vis: Vec::new(),
            vis_tags: Vec::new(),
        };
        for u in 0..n {
            let jitter = draw(engine.start_seed, u as u64, 0, 0, engine.latency.start_spread);
            // node count fits a NodeId by graph construction. mtm-lint: allow(truncating-cast)
            engine.schedule(jitter, u as NodeId, Ev::RoundStart);
        }
        engine
    }

    /// Inject message loss: each proposal message is independently dropped
    /// with probability `prob` (counter-based coin on the directed link and
    /// the sender's message counter). The proposer is unblocked by a
    /// timeout at reject-round-trip time, so a lossy run cannot deadlock.
    pub fn set_proposal_loss(&mut self, prob: f64) {
        assert!((0.0..=1.0).contains(&prob), "loss probability must be in [0, 1], got {prob}");
        self.loss_prob = prob;
    }

    /// Record an [`EventRecord`] for every processed event.
    pub fn enable_event_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace (empty unless enabled).
    pub fn event_trace(&self) -> &[EventRecord] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Aggregate counters. `rounds` = the maximum local round reached.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Current simulation time (ticks).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.execs.len()
    }

    /// Immutable view of node `u`'s protocol state.
    pub fn node(&self, u: usize) -> &P {
        self.execs[u].protocol()
    }

    /// Iterate over all protocol states in node order.
    pub fn protocols(&self) -> impl Iterator<Item = &P> {
        self.execs.iter().map(RoundExecuter::protocol)
    }

    /// Mean local round across nodes.
    pub fn mean_local_rounds(&self) -> f64 {
        if self.local_round.is_empty() {
            return 0.0;
        }
        self.local_round.iter().sum::<u64>() as f64 / self.local_round.len() as f64
    }

    fn schedule(&mut self, time: u64, node: NodeId, ev: Ev<P::Payload>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(QueuedEvent { time, node, seq, ev });
    }

    #[inline]
    fn link_delay(&self, from: NodeId, to: NodeId, counter: u64) -> u64 {
        draw(
            self.link_seed,
            link_key(from, to),
            counter,
            self.latency.link_min,
            self.latency.link_spread,
        )
    }

    /// Next outgoing-message counter for `u` (keys the link/loss coins).
    #[inline]
    fn next_msg(&mut self, u: NodeId) -> u64 {
        let s = self.msg_seq[u as usize];
        self.msg_seq[u as usize] += 1;
        s
    }

    #[cfg(debug_assertions)]
    fn check_payload_budget(&self, pl: &P::Payload) {
        debug_assert!(
            pl.uid_count() <= self.params.max_payload_uids
                && pl.extra_bits() <= self.params.max_payload_bits,
            "payload exceeds the model budget"
        );
    }
    #[cfg(not(debug_assertions))]
    fn check_payload_budget(&self, _pl: &P::Payload) {}

    /// Process one event; returns true iff a payload was delivered (the
    /// only occasions protocol state can change through messages).
    fn process(&mut self, node: NodeId, ev: Ev<P::Payload>) -> bool {
        let ui = node as usize;
        match ev {
            Ev::RoundStart => {
                self.local_round[ui] += 1;
                let lr = self.local_round[ui];
                self.metrics.rounds = self.metrics.rounds.max(lr);
                let tag = self.execs[ui].advertise(lr);
                assert!(
                    tag.fits(self.params.tag_bits),
                    "node {ui} advertised tag {tag:?} exceeding b = {} bits",
                    self.params.tag_bits
                );
                self.tags[ui] = tag;
                self.started[ui] = true;
                self.phase[ui] = Phase::Scanning;
                let d = draw(
                    self.scan_seed,
                    node as u64,
                    lr,
                    self.latency.scan_min,
                    self.latency.scan_spread,
                );
                self.schedule(self.now + d, node, Ev::Act);
                false
            }
            Ev::Act => {
                let lr = self.local_round[ui];
                // Scan the blackboard: every *started* neighbor is visible
                // with its current tag (neighbors mid-round show the tag of
                // the round they are in — clock drift made visible).
                self.vis.clear();
                self.vis_tags.clear();
                let tag_bits = self.params.tag_bits;
                for &v in self.graph.neighbors(node) {
                    if self.started[v as usize] {
                        self.vis.push(v);
                        if tag_bits > 0 {
                            self.vis_tags.push(self.tags[v as usize]);
                        }
                    }
                }
                let scan =
                    Scan { neighbors: &self.vis, tags: &self.vis_tags, round: lr, local_round: lr };
                match self.execs[ui].act(&scan) {
                    Action::Listen => {
                        self.phase[ui] = Phase::Listening;
                        self.buffers[ui].clear();
                        let d = draw(
                            self.listen_seed,
                            node as u64,
                            lr,
                            self.latency.listen_min,
                            self.latency.listen_spread,
                        );
                        self.schedule(self.now + d, node, Ev::ListenEnd);
                    }
                    Action::Propose(v) => {
                        assert!(
                            self.vis.binary_search(&v).is_ok(),
                            "node {ui} proposed to {v}, not a visible neighbor"
                        );
                        self.metrics.proposals += 1;
                        self.phase[ui] = Phase::Waiting;
                        let s = self.next_msg(node);
                        let d = self.link_delay(node, v, s);
                        if self.loss_prob > 0.0
                            && counter_coin(self.loss_seed, link_key(node, v), s) < self.loss_prob
                        {
                            // The message vanishes; unblock the proposer at
                            // the instant an immediate reject would have
                            // arrived (one full round trip).
                            self.metrics.dropped_proposals += 1;
                            let back = self.link_delay(v, node, s);
                            self.schedule(
                                self.now + d + back,
                                node,
                                Ev::Response { accepted: None },
                            );
                        } else {
                            let pl = self.execs[ui].payload();
                            self.check_payload_budget(&pl);
                            self.schedule(
                                self.now + d,
                                v,
                                Ev::Proposal { from: node, payload: pl },
                            );
                        }
                    }
                }
                false
            }
            Ev::Proposal { from, payload } => {
                if self.phase[ui] == Phase::Listening {
                    self.buffers[ui].push((from, payload));
                } else {
                    // Not inside a listen window: immediate reject.
                    self.metrics.rejected_proposals += 1;
                    let s = self.next_msg(node);
                    let d = self.link_delay(node, from, s);
                    self.schedule(self.now + d, from, Ev::Response { accepted: None });
                }
                false
            }
            Ev::ListenEnd => {
                let lr = self.local_round[ui];
                let mut delivered = false;
                let mut buf = std::mem::take(&mut self.buffers[ui]);
                if !buf.is_empty() {
                    let pick = self.execs[ui].accept_index(buf.len());
                    for (i, (from, pu)) in buf.drain(..).enumerate() {
                        let s = self.next_msg(node);
                        let d = self.link_delay(node, from, s);
                        if i == pick {
                            // Payload snapshots before delivery, exactly as
                            // the lockstep connect() orders them.
                            let pv = self.execs[ui].payload();
                            self.check_payload_budget(&pv);
                            self.check_payload_budget(&pu);
                            self.execs[ui].deliver(&pu);
                            self.metrics.connections += 1;
                            delivered = true;
                            self.schedule(self.now + d, from, Ev::Response { accepted: Some(pv) });
                        } else {
                            self.metrics.rejected_proposals += 1;
                            self.schedule(self.now + d, from, Ev::Response { accepted: None });
                        }
                    }
                }
                self.buffers[ui] = buf;
                // Leave the listening phase *now*: a proposal arriving at
                // this same tick (before the next Act) must be rejected,
                // not buffered into a window that no longer exists — a
                // buffered-then-cleared proposal would strand its proposer.
                self.phase[ui] = Phase::Scanning;
                self.execs[ui].end_round(lr);
                self.schedule(self.now, node, Ev::RoundStart);
                delivered
            }
            Ev::Response { accepted } => {
                debug_assert_eq!(self.phase[ui], Phase::Waiting, "unsolicited response at {ui}");
                let delivered = if let Some(pv) = accepted {
                    self.execs[ui].deliver(&pv);
                    true
                } else {
                    false
                };
                self.execs[ui].end_round(self.local_round[ui]);
                self.schedule(self.now, node, Ev::RoundStart);
                delivered
            }
        }
    }

    /// Drive events until `pred` holds or simulation time exceeds
    /// `max_time`. The predicate is evaluated before the first event and
    /// after every payload delivery (the only points protocol state can
    /// change). Returns the completion time.
    pub fn run_until(&mut self, max_time: u64, mut pred: impl FnMut(&Self) -> bool) -> Option<u64> {
        if pred(self) {
            return Some(self.now);
        }
        while let Some(qe) = self.heap.pop() {
            if qe.time > max_time {
                // Budget exhausted; the event is intentionally consumed —
                // run helpers are one-shot.
                return None;
            }
            debug_assert!(qe.time >= self.now, "event time went backwards");
            self.now = qe.time;
            self.events += 1;
            if let Some(trace) = &mut self.trace {
                trace.push(EventRecord { time: qe.time, node: qe.node, kind: qe.ev.kind() });
            }
            let delivered = self.process(qe.node, qe.ev);
            if delivered && pred(self) {
                return Some(self.now);
            }
        }
        None
    }

    fn outcome(&self, completed_at: Option<u64>, winner: Option<u64>) -> EventOutcome {
        EventOutcome {
            completed_at,
            winner,
            metrics: self.metrics,
            mean_local_rounds: self.mean_local_rounds(),
            events: self.events,
        }
    }
}

impl<P: Protocol + LeaderView> EventEngine<P> {
    /// True iff every node reports the same leader.
    pub fn leaders_agree(&self) -> Option<u64> {
        let first = self.execs.first()?.protocol().leader();
        if self.protocols().all(|p| p.leader() == first) {
            Some(first)
        } else {
            None
        }
    }

    /// Run until every node agrees on one leader (at most `max_time`
    /// ticks).
    pub fn run_to_stabilization(&mut self, max_time: u64) -> EventOutcome {
        let done = self.run_until(max_time, |e| e.leaders_agree().is_some());
        let winner = done.and_then(|_| self.leaders_agree());
        self.outcome(done, winner)
    }
}

impl<P: Protocol + RumorView> EventEngine<P> {
    /// Number of informed nodes.
    pub fn informed_count(&self) -> usize {
        self.protocols().filter(|p| p.informed()).count()
    }

    /// Run until every node knows the rumor (at most `max_time` ticks).
    pub fn run_to_full_information(&mut self, max_time: u64) -> EventOutcome {
        let done = self.run_until(max_time, |e| e.informed_count() == e.node_count());
        self.outcome(done, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_graph::gen;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Coin-flip min-UID spreader (blind-gossip-shaped), as in the engine
    /// unit tests.
    struct MinSpread {
        uid: u64,
        best: u64,
    }

    #[derive(Clone)]
    struct U64Payload(u64);
    impl PayloadCost for U64Payload {
        fn uid_count(&self) -> u32 {
            1
        }
        fn extra_bits(&self) -> u32 {
            0
        }
    }

    impl Protocol for MinSpread {
        type Payload = U64Payload;
        fn advertise(&mut self, _lr: u64, _rng: &mut SmallRng) -> Tag {
            Tag::EMPTY
        }
        fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
            if scan.is_empty() || !rng.gen_bool(0.5) {
                return Action::Listen;
            }
            Action::Propose(scan.neighbors[rng.gen_range(0..scan.len())])
        }
        fn payload(&self) -> U64Payload {
            U64Payload(self.best)
        }
        fn on_connect(&mut self, peer: &U64Payload, _rng: &mut SmallRng) {
            self.best = self.best.min(peer.0);
        }
    }

    impl LeaderView for MinSpread {
        fn leader(&self) -> u64 {
            self.best
        }
        fn uid(&self) -> u64 {
            self.uid
        }
    }

    fn nodes(n: usize) -> Vec<MinSpread> {
        (0..n).map(|u| MinSpread { uid: u as u64 + 100, best: u as u64 + 100 }).collect()
    }

    fn engine_on(g: Graph, seed: u64, latency: LatencyModel) -> EventEngine<MinSpread> {
        let n = g.node_count();
        EventEngine::new(g, ModelParams::mobile(0), nodes(n), seed, latency)
    }

    #[test]
    fn elects_min_uid_on_clique() {
        let mut e = engine_on(gen::clique(12), 1, LatencyModel::multipeer(8));
        let out = e.run_to_stabilization(1_000_000);
        assert_eq!(out.winner, Some(100));
        assert!(out.completed_at.is_some());
        assert!(out.metrics.connections >= 11, "needs at least n-1 payload exchanges");
    }

    #[test]
    fn same_seed_same_event_trace() {
        let mut a = engine_on(gen::cycle(10), 7, LatencyModel::multipeer(16));
        let mut b = engine_on(gen::cycle(10), 7, LatencyModel::multipeer(16));
        a.enable_event_trace();
        b.enable_event_trace();
        let ra = a.run_to_stabilization(2_000_000);
        let rb = b.run_to_stabilization(2_000_000);
        assert_eq!(ra.completed_at, rb.completed_at);
        assert_eq!(ra.metrics, rb.metrics);
        assert_eq!(a.event_trace(), b.event_trace());
        assert!(!a.event_trace().is_empty());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = engine_on(gen::cycle(16), 1, LatencyModel::multipeer(8));
        let mut b = engine_on(gen::cycle(16), 2, LatencyModel::multipeer(8));
        a.enable_event_trace();
        b.enable_event_trace();
        a.run_to_stabilization(2_000_000);
        b.run_to_stabilization(2_000_000);
        assert_ne!(a.event_trace(), b.event_trace());
    }

    #[test]
    fn zero_spread_is_deterministic_and_completes() {
        let mut e = engine_on(gen::clique(8), 3, LatencyModel::multipeer(0));
        let out = e.run_to_stabilization(1_000_000);
        assert_eq!(out.winner, Some(100));
    }

    #[test]
    fn proposal_loss_never_deadlocks() {
        // Loss reshuffles the whole timing schedule, so completion time is
        // not monotone in the loss rate on a small instance — the invariant
        // worth pinning is that drops happen and the run still completes.
        let mut lossy = engine_on(gen::clique(10), 5, LatencyModel::multipeer(4));
        lossy.set_proposal_loss(0.5);
        let out = lossy.run_to_stabilization(4_000_000);
        assert_eq!(out.winner, Some(100), "loss must not prevent completion");
        assert!(out.metrics.dropped_proposals > 0, "at half loss some proposals must drop");
    }

    #[test]
    fn single_node_completes_immediately() {
        let mut e = engine_on(gen::clique(1), 9, LatencyModel::multipeer(8));
        let out = e.run_to_stabilization(1_000);
        assert_eq!(out.completed_at, Some(0));
        assert_eq!(out.winner, Some(100));
    }

    #[test]
    fn time_budget_returns_none() {
        // A cycle of 64 cannot finish within 3 ticks.
        let mut e = engine_on(gen::cycle(64), 4, LatencyModel::multipeer(8));
        let out = e.run_to_stabilization(3);
        assert_eq!(out.completed_at, None);
    }
}
