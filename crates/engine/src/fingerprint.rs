//! Order-sensitive 64-bit state digests.
//!
//! The stuck-run detector (see [`crate::Engine::enable_stuck_detection`])
//! needs a cheap, deterministic digest of the whole network's protocol
//! state each round. Protocols digest their own durable state with
//! [`of_words`]; the engine folds the per-node digests together with
//! [`mix`] in node order. The construction is SplitMix64-based, so it is a
//! pure function of its inputs on every platform — no `Hasher` with
//! process-random keys is involved.
//!
//! This is a progress signal, not a cryptographic hash: collisions are
//! possible but irrelevant in practice (a collision can only delay
//! detection by making one changed round look unchanged, and the detector
//! demands a full window of consecutive unchanged rounds).

use mtm_graph::rng::splitmix64;

/// Initial accumulator for a digest chain.
pub const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fold one word into an accumulator. Order-sensitive: `mix(mix(s, a), b)`
/// and `mix(mix(s, b), a)` differ.
#[inline]
pub fn mix(acc: u64, word: u64) -> u64 {
    splitmix64(acc.rotate_left(23) ^ word)
}

/// Digest a slice of state words (convenience for protocol
/// implementations).
pub fn of_words(words: &[u64]) -> u64 {
    words.iter().fold(SEED, |acc, &w| mix(acc, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(of_words(&[1, 2, 3]), of_words(&[1, 2, 3]));
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(of_words(&[1, 2]), of_words(&[2, 1]));
    }

    #[test]
    fn word_sensitive() {
        assert_ne!(of_words(&[0]), of_words(&[1]));
        assert_ne!(of_words(&[]), of_words(&[0]));
    }
}
