//! Execution metrics and optional per-round tracing.

/// Aggregate counters over an execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Connection proposals sent.
    pub proposals: u64,
    /// Connections successfully formed (each counts one node pair).
    pub connections: u64,
    /// Proposals that were lost (sent to a node that itself proposed, or
    /// not selected by the receiver under the single-accept policy).
    pub rejected_proposals: u64,
    /// Proposals dropped by fault injection before reaching the receiver
    /// (see [`crate::Engine::set_proposal_loss`]). Conservation invariant:
    /// `proposals = connections + rejected_proposals + dropped_proposals`.
    pub dropped_proposals: u64,
}

impl Metrics {
    /// Fraction of proposals that resulted in a connection.
    pub fn proposal_success_rate(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            self.connections as f64 / self.proposals as f64
        }
    }
}

/// Per-round trace entry (enabled with [`crate::Engine::enable_tracing`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundTrace {
    /// Round number (1-based).
    pub round: u64,
    /// Active nodes this round.
    pub active: u64,
    /// Proposals sent this round.
    pub proposals: u64,
    /// Connections formed this round.
    pub connections: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_handles_zero() {
        let m = Metrics::default();
        assert_eq!(m.proposal_success_rate(), 0.0);
    }

    #[test]
    fn success_rate_ratio() {
        let m = Metrics {
            rounds: 1,
            proposals: 10,
            connections: 4,
            rejected_proposals: 5,
            dropped_proposals: 1,
        };
        assert!((m.proposal_success_rate() - 0.4).abs() < 1e-12);
    }
}
