//! Execution metrics and optional per-round tracing.

/// Aggregate counters over an execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Connection proposals sent.
    pub proposals: u64,
    /// Connections successfully formed (each counts one node pair).
    pub connections: u64,
    /// Proposals that were lost (sent to a node that itself proposed, or
    /// not selected by the receiver under the single-accept policy).
    pub rejected_proposals: u64,
    /// Proposals dropped by fault injection before reaching the receiver
    /// (see [`crate::Engine::set_proposal_loss`]). Conservation invariant:
    /// `proposals = connections + rejected_proposals + dropped_proposals`.
    pub dropped_proposals: u64,
}

impl Metrics {
    /// Fraction of proposals that resulted in a connection.
    pub fn proposal_success_rate(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            self.connections as f64 / self.proposals as f64
        }
    }
}

/// Safety/liveness counters for a service-mode run (continuous leadership
/// maintenance — see [`crate::service`]). All round counts are over the
/// rounds executed by the `run_service` call that produced them.
///
/// A node is a *claimant* in a round when its `leader` variable holds its
/// own UID; only claimants that are activated **and** up (radio on, per
/// [`DynamicTopology::is_node_up`](mtm_graph::DynamicTopology::is_node_up))
/// are counted — a crashed ex-leader that still believes it leads cannot
/// serve anyone, so it contributes to *exposure* only once it recovers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Rounds with zero up claimants: nobody was serving (the gap between
    /// a leader's death and the re-election that replaces it, plus any
    /// interval where every claimant was crashed).
    pub leaderless_rounds: u64,
    /// Rounds with ≥ 2 up claimants: the dual-leader exposure window in
    /// which split-brain writes would be possible.
    pub dual_leader_rounds: u64,
    /// Rounds in which every up participant agreed on one `(epoch, leader)`
    /// and exactly one up claimant existed — the service was healthy.
    pub stable_rounds: u64,
    /// Leadership terms started beyond the first: each observed increase of
    /// the network's maximum epoch counts one re-election (concurrent
    /// detections that merge into a single new epoch count once).
    pub re_elections: u64,
    /// Largest number of simultaneous up claimants ever observed.
    pub max_concurrent_claimants: u64,
}

/// Per-round trace entry (enabled with [`crate::Engine::enable_tracing`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundTrace {
    /// Round number (1-based).
    pub round: u64,
    /// Active nodes this round.
    pub active: u64,
    /// Proposals sent this round.
    pub proposals: u64,
    /// Connections formed this round.
    pub connections: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_handles_zero() {
        let m = Metrics::default();
        assert_eq!(m.proposal_success_rate(), 0.0);
    }

    #[test]
    fn success_rate_ratio() {
        let m = Metrics {
            rounds: 1,
            proposals: 10,
            connections: 4,
            rejected_proposals: 5,
            dropped_proposals: 1,
        };
        assert!((m.proposal_success_rate() - 0.4).abs() < 1e-12);
    }
}
