//! The sharded round executor: `Engine::step` on a worker pool, bit-for-bit
//! identical to the straight-line path.
//!
//! # Why sharding is free of coordination
//!
//! Every random choice in a round is drawn from the stream of the node that
//! makes it (`rngs[u]`), and loss coins are pure counter draws — the RNG
//! contract (see the [`engine`](super) module docs) leaves *nothing* that
//! depends on cross-node execution order. So each phase shards by node id
//! into `threads` contiguous ranges, workers run their range with zero
//! shared mutable state, and the only sequential work is the glue between
//! phases on the calling thread.
//!
//! # Shard/merge rules
//!
//! - **Partition**: shard `s` owns nodes `[s·chunk, (s+1)·chunk)` with
//!   `chunk = ⌈n / threads⌉` — contiguous, so concatenating per-shard
//!   output in shard order *is* ascending node order.
//! - **Advertise / scan·act / end_round**: embarrassingly parallel over
//!   `chunks_mut` of the struct-of-arrays node state; read-only state
//!   (tags, active bitmap, the round graph) is shared by reference.
//! - **Loss coins at scan time**: a shard evaluates
//!   `counter_coin(loss_seed, round, u)` for its own proposers as proposals
//!   are made. The draw is a pure function, so where it happens (scan
//!   worker here, collection loop in the sequential path) cannot change it.
//! - **Proposal merge**: per-shard proposal lists are concatenated in shard
//!   order on the main thread — ascending proposer order, exactly the
//!   sequential collection order — then the arena scatter is unchanged.
//! - **Acceptance**: each shard resolves the receivers *it owns* from the
//!   shared arena, drawing only from those receivers' own streams.
//!   Concatenating per-shard accepted lists in shard order reproduces the
//!   canonical ascending-receiver delivery order.
//! - **Delivery** (payload exchange) runs on the main thread: under
//!   [`ConnectionPolicy::SingleUniform`](crate::model::ConnectionPolicy)
//!   the accepted set is a matching, and `on_connect` may touch both
//!   endpoints' states and streams, which spans shards.
//!
//! The trace-equivalence suite pins this path against the sequential
//! reference at thread counts {1, 2, 4, 8} over randomized configurations;
//! `tests/parallel_determinism.rs` additionally pins a full service run.

use mtm_graph::{DynamicTopology, NodeId};
use rand::seq::SliceRandom;

use super::{Engine, Slot};
use crate::metrics::RoundTrace;
use crate::model::{Acceptance, Tag};
use crate::protocol::{Action, Protocol, Scan};

/// Per-shard scratch buffers, reused round to round. Each worker gets
/// exclusive `&mut` access to its shard's entry; the main thread drains
/// `proposed`/`accepted` and the counters between phases.
#[derive(Debug, Default)]
pub(super) struct ShardScratch {
    visible: Vec<NodeId>,
    visible_tags: Vec<Tag>,
    accept_scratch: Vec<NodeId>,
    proposed: Vec<(NodeId, NodeId)>,
    accepted: Vec<(NodeId, NodeId)>,
    proposals: u64,
    dropped: u64,
    rejected: u64,
}

impl<P: Protocol, T: DynamicTopology> Engine<P, T> {
    /// One round on the worker pool. Caller guarantees
    /// `policy == SingleUniform` and `threads > 1`.
    pub(super) fn step_parallel(&mut self) {
        let n = self.nodes.len();
        let threads = self.threads.min(n).max(1);
        if threads <= 1 {
            return self.step_sequential();
        }
        let chunk = n.div_ceil(threads);
        if self.shard_scratch.len() < threads {
            self.shard_scratch.resize_with(threads, Default::default);
        }

        self.round += 1;
        let round = self.round;
        let topo_may_change = self.stuck.is_some() && self.topology.may_change_at(round);
        let graph = self.topology.graph_at(round);
        assert_eq!(graph.node_count(), n, "topology changed node count");

        let round_proposals_before = self.metrics.proposals;
        let round_connections_before = self.metrics.connections;

        // Active-set precompute, identical to the sequential path.
        if self.all_active {
            for lr in &mut self.local_rounds {
                *lr += 1;
            }
        } else {
            self.active_count = 0;
            for u in 0..n {
                if self.schedule.is_active(u, round) {
                    self.active[u] = true;
                    self.active_count += 1;
                    self.local_rounds[u] = self.schedule.local_round(u, round);
                } else {
                    self.active[u] = false;
                }
            }
            self.all_active = self.active_count == n as u64;
        }

        let tag_bits = self.params.tag_bits;

        // Phase 1: advertise, sharded. Tags land in disjoint chunks of the
        // shared tag array.
        {
            let active = &self.active;
            let local_rounds = &self.local_rounds;
            #[cfg(feature = "audit")]
            let auditor = &self.auditor;
            std::thread::scope(|s| {
                for (si, (((slots, nodes), rngs), tags)) in self
                    .slots
                    .chunks_mut(chunk)
                    .zip(self.nodes.chunks_mut(chunk))
                    .zip(self.rngs.chunks_mut(chunk))
                    .zip(self.tags.chunks_mut(chunk))
                    .enumerate()
                {
                    let base = si * chunk;
                    s.spawn(move || {
                        for (i, (((slot, node), rng), tag_slot)) in
                            slots.iter_mut().zip(nodes).zip(rngs).zip(tags).enumerate()
                        {
                            let u = base + i;
                            if !active[u] {
                                *slot = Slot::Inactive;
                                continue;
                            }
                            let tag = node.advertise(local_rounds[u], rng);
                            #[cfg(feature = "audit")]
                            auditor.check_tag(round, u, tag, tag_bits);
                            #[cfg(not(feature = "audit"))]
                            assert!(
                                tag.fits(tag_bits),
                                "node {u} advertised tag {tag:?} exceeding b = {tag_bits} bits"
                            );
                            *tag_slot = tag;
                        }
                    });
                }
            });
        }

        // Phases 2-3: scan and act, sharded. Proposals accumulate per
        // shard; loss coins are evaluated here (pure counter draws, so the
        // earlier evaluation point cannot change any outcome — dropped
        // proposals simply never reach the merge).
        {
            let active = &self.active;
            let local_rounds = &self.local_rounds;
            let tags = &self.tags;
            let all_active = self.all_active;
            let loss = self.loss_prob;
            let loss_seed = self.loss_seed;
            #[cfg(feature = "audit")]
            let auditor = &self.auditor;
            std::thread::scope(|s| {
                for (si, (((slots, nodes), rngs), scratch)) in self
                    .slots
                    .chunks_mut(chunk)
                    .zip(self.nodes.chunks_mut(chunk))
                    .zip(self.rngs.chunks_mut(chunk))
                    .zip(self.shard_scratch.iter_mut())
                    .enumerate()
                {
                    let base = si * chunk;
                    let graph = &graph;
                    s.spawn(move || {
                        scratch.proposals = 0;
                        scratch.dropped = 0;
                        debug_assert!(scratch.proposed.is_empty());
                        for (i, ((slot, node), rng)) in
                            slots.iter_mut().zip(nodes).zip(rngs).enumerate()
                        {
                            let u = base + i;
                            if !active[u] {
                                continue;
                            }
                            // shard-local id: u < n <= u32::MAX. mtm-lint: allow(truncating-cast)
                            let nbrs = graph.neighbors(u as NodeId);
                            let neighbors: &[NodeId] = if all_active {
                                if tag_bits > 0 {
                                    scratch.visible_tags.clear();
                                    for &v in nbrs {
                                        scratch.visible_tags.push(tags[v as usize]);
                                    }
                                }
                                nbrs
                            } else {
                                scratch.visible.clear();
                                scratch.visible_tags.clear();
                                for &v in nbrs {
                                    if active[v as usize] {
                                        scratch.visible.push(v);
                                        if tag_bits > 0 {
                                            scratch.visible_tags.push(tags[v as usize]);
                                        }
                                    }
                                }
                                &scratch.visible
                            };
                            let scan = Scan {
                                neighbors,
                                tags: &scratch.visible_tags,
                                round,
                                local_round: local_rounds[u],
                            };
                            *slot = match node.act(&scan, rng) {
                                Action::Listen => Slot::Listen,
                                Action::Propose(v) => {
                                    #[cfg(feature = "audit")]
                                    auditor.check_proposal(round, u, v, scan.neighbors);
                                    #[cfg(not(feature = "audit"))]
                                    assert!(
                                        scan.neighbors.binary_search(&v).is_ok(),
                                        "node {u} proposed to {v}, not a visible neighbor"
                                    );
                                    scratch.proposals += 1;
                                    if loss > 0.0
                                        && mtm_graph::rng::counter_coin(loss_seed, round, u as u64)
                                            < loss
                                    {
                                        scratch.dropped += 1;
                                    } else {
                                        // hot path: u < n <= u32::MAX. mtm-lint: allow(truncating-cast)
                                        scratch.proposed.push((u as NodeId, v));
                                    }
                                    Slot::Propose(v)
                                }
                            };
                        }
                    });
                }
            });
        }

        // Glue: merge per-shard proposals in shard order (= ascending
        // proposer order, the sequential collection order), then build the
        // arena exactly as the sequential path does.
        debug_assert!(self.proposal_pairs.is_empty());
        for scratch in &mut self.shard_scratch {
            self.metrics.proposals += scratch.proposals;
            self.metrics.dropped_proposals += scratch.dropped;
            scratch.proposals = 0;
            scratch.dropped = 0;
            for &(u, v) in &scratch.proposed {
                let vi = v as usize;
                if self.slots[vi] == Slot::Listen {
                    self.incoming_len[vi] += 1;
                    self.proposal_pairs.push((v, u));
                } else {
                    // Receiver proposed itself (or a race with inactivity):
                    // the proposal is lost.
                    self.metrics.rejected_proposals += 1;
                }
            }
            scratch.proposed.clear();
        }
        if self.arena.len() < self.proposal_pairs.len() {
            self.arena.resize(self.proposal_pairs.len(), 0);
        }
        let mut cursor = 0u32;
        for (start, &len) in self.incoming_start.iter_mut().zip(&self.incoming_len) {
            *start = cursor;
            cursor += len;
        }
        for &(v, u) in &self.proposal_pairs {
            let c = self.incoming_start[v as usize];
            self.arena[c as usize] = u;
            self.incoming_start[v as usize] = c + 1;
        }

        // Phase 4a: acceptance, sharded by receiver. Each worker resolves
        // the receivers it owns from the shared arena, drawing only from
        // those receivers' own streams — cross-shard order cannot matter.
        {
            let active = &self.active;
            let arena = &self.arena;
            let incoming_start = &self.incoming_start;
            let all_active = self.all_active;
            let acceptance = self.params.acceptance;
            std::thread::scope(|s| {
                for (si, ((lens, rngs), scratch)) in self
                    .incoming_len
                    .chunks_mut(chunk)
                    .zip(self.rngs.chunks_mut(chunk))
                    .zip(self.shard_scratch.iter_mut())
                    .enumerate()
                {
                    let base = si * chunk;
                    let graph = &graph;
                    s.spawn(move || {
                        debug_assert!(scratch.accepted.is_empty());
                        for (i, len) in lens.iter_mut().enumerate() {
                            let k = *len as usize;
                            if k == 0 {
                                continue;
                            }
                            *len = 0;
                            let vi = base + i;
                            // receivers are node ids: vi < n <= u32::MAX. mtm-lint: allow(truncating-cast)
                            let v = vi as NodeId;
                            let end = incoming_start[vi] as usize;
                            let incoming = &arena[end - k..end];
                            let rng = &mut rngs[i];
                            let u = match acceptance {
                                Acceptance::UniformIndex => {
                                    incoming[crate::executor::uniform_accept_index(rng, k)]
                                }
                                Acceptance::SelectionPermutation => {
                                    // Same device as the sequential path:
                                    // shuffle the active neighbors, accept
                                    // the proposer ranked first.
                                    scratch.accept_scratch.clear();
                                    if all_active {
                                        scratch
                                            .accept_scratch
                                            .extend_from_slice(graph.neighbors(v));
                                    } else {
                                        scratch.accept_scratch.extend(
                                            graph
                                                .neighbors(v)
                                                .iter()
                                                .copied()
                                                .filter(|&w| active[w as usize]),
                                        );
                                    }
                                    scratch.accept_scratch.shuffle(rng);
                                    *scratch
                                        .accept_scratch
                                        .iter()
                                        .find(|cand| incoming.contains(cand))
                                        .expect("every proposer is a neighbor")
                                }
                            };
                            scratch.rejected += (k - 1) as u64;
                            scratch.accepted.push((u, v));
                        }
                    });
                }
            });
        }

        // Glue: merge per-shard accepted matchings in shard order (=
        // ascending receiver order, the canonical delivery order), then
        // deliver payloads on the main thread.
        debug_assert!(self.accepted.is_empty());
        for scratch in &mut self.shard_scratch {
            self.metrics.rejected_proposals += scratch.rejected;
            scratch.rejected = 0;
            self.accepted.extend_from_slice(&scratch.accepted);
            scratch.accepted.clear();
        }
        self.proposal_pairs.clear();
        #[cfg(feature = "audit")]
        self.auditor.check_matching(round, &self.accepted);
        if self.connection_log.is_some() {
            self.deliver_accepted::<true>(round);
        } else {
            self.deliver_accepted::<false>(round);
        }
        self.accepted.clear();

        // Phase 5: end of round, sharded.
        {
            let active = &self.active;
            let local_rounds = &self.local_rounds;
            std::thread::scope(|s| {
                for (si, (nodes, rngs)) in
                    self.nodes.chunks_mut(chunk).zip(self.rngs.chunks_mut(chunk)).enumerate()
                {
                    let base = si * chunk;
                    s.spawn(move || {
                        for (i, (node, rng)) in nodes.iter_mut().zip(rngs).enumerate() {
                            let u = base + i;
                            if active[u] {
                                node.end_round(local_rounds[u], rng);
                            }
                        }
                    });
                }
            });
        }

        self.metrics.rounds = round;
        if let Some(traces) = &mut self.traces {
            traces.push(RoundTrace {
                round,
                active: self.active_count,
                proposals: self.metrics.proposals - round_proposals_before,
                connections: self.metrics.connections - round_connections_before,
            });
        }
        if self.stuck.is_some() {
            self.update_stuck_detector(topo_may_change);
        }
    }
}
