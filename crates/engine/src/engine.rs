//! The round executor.
//!
//! [`Engine`] drives a vector of [`Protocol`] nodes through the mobile (or
//! classical) telephone model's round phases over a dynamic topology. The
//! model is a synchronous round-based system; within a trial the executor
//! runs either the straight-line sequential path or the sharded parallel
//! path (see [`Engine::set_threads`] and the `parallel` module) — the two
//! are bit-for-bit identical. Trial-level fan-out lives one level up, in
//! [`crate::runner`].
//!
//! # Hot-path design
//!
//! All per-round state lives in workhorse buffers reused across rounds —
//! steady-state execution performs no heap allocation. Node state is kept
//! struct-of-arrays (parallel `Vec`s for tags, slots, activation, local
//! rounds, RNGs, protocol states), so a `10^8`-node engine costs ~110
//! bytes/node and phase loops stream linearly. Three further mechanisms
//! keep the per-node-round cost flat at large `n`:
//!
//! - **Active set**: activation is checked once per node per round into a
//!   bitmap (with `local_round` cached alongside), not per phase and per
//!   neighbor. Activation is monotone, so once every node is awake the
//!   bitmap is complete forever and the per-round recomputation stops.
//! - **Zero-copy scan**: once all nodes are active, every neighbor is
//!   visible and the CSR neighbor slice is passed straight into [`Scan`]
//!   instead of being filtered into a scratch buffer; tag gathering is
//!   skipped entirely when `tag_bits == 0`.
//! - **Proposal arena**: incoming proposals are laid out as CSR-style
//!   spans over one flat buffer, so proposal resolution is cache-linear
//!   with no per-receiver vectors.
//!
//! # The per-node RNG streams are part of the public contract
//!
//! An execution is a pure function of `(seed, config)`, and every recorded
//! `results/*.csv` depends on the *exact order and count* of RNG draws the
//! engine makes. The contract (engine semantics
//! [`ENGINE_SEMANTICS_VERSION`]) is:
//!
//! - node `u` draws only from its own stream (`stream_rng(seed, u)`), in
//!   phase order within each round — advertise, act, acceptance (receivers
//!   draw from their *own* streams), `on_connect`, `end_round`;
//! - loss coins are *counter-based*: proposal survival is the pure
//!   function `counter_coin(loss_seed, round, proposer) < loss_prob`,
//!   independent of draw order (the v1 semantics drew from one global
//!   sequential loss stream in proposer order);
//! - receivers resolve acceptance and take delivery in **ascending node
//!   id** order (v1 used first-proposal order). Per-node streams are
//!   unaffected by this ordering — it exists so a shard-partitioned
//!   executor can merge per-shard results by concatenation.
//!
//! Because no draw depends on cross-node ordering, the sharded parallel
//! path replays the sequential execution exactly. Any optimization must
//! preserve the streams bit-for-bit — see the trace-equivalence suite
//! (`tests/trace_equivalence.rs`), which pins both executor paths against
//! a straight-line reference implementation at several thread counts, and
//! [`crate::audit::determinism_self_check`].

use mtm_graph::{DynamicTopology, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use crate::activation::ActivationSchedule;
use crate::executor::{uniform_accept_index, ExecutorSet, RoundExecuter};
use crate::metrics::{Metrics, RoundTrace};
use crate::model::{Acceptance, ConnectionPolicy, ModelParams, Tag};
use crate::protocol::{Action, LeaderView, PayloadCost, Protocol, RumorView, Scan};

#[path = "parallel.rs"]
mod parallel;

/// Version tag for the engine's execution semantics — the part of the RNG
/// contract that recorded results depend on (see the module docs). Bumped
/// whenever a change alters any recorded table's bytes; `results/MANIFEST.json`
/// records the version each regeneration ran under, and `regen --check`
/// refuses to validate digests across a version mismatch.
///
/// - `v1`: global sequential loss stream, first-proposal receiver order.
/// - `v2`: counter-based loss coins keyed on `(loss_seed, round, proposer)`;
///   receivers resolve acceptance and take delivery in ascending node id.
///   Non-lossy per-node draws are unchanged from v1.
pub const ENGINE_SEMANTICS_VERSION: &str = "v2";

/// Per-node resolved action for the current round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Inactive,
    Listen,
    Propose(NodeId),
}

/// Outcome of a run-to-stabilization helper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// First round at the end of which the target predicate held (e.g. all
    /// nodes agree on a leader), if reached within the budget.
    pub stabilized_round: Option<u64>,
    /// Rounds after the last activation until stabilization, the §VIII
    /// metric — see [`rounds_after_activation`] for the exact definition.
    pub rounds_after_activation: Option<u64>,
    /// The agreed leader UID (leader election runs only).
    pub winner: Option<u64>,
    /// Why the run helper returned: stabilized, ran out of budget, or was
    /// cut short by the stuck-run detector.
    pub status: RunStatus,
    /// Aggregate counters for the whole execution.
    pub metrics: Metrics,
}

/// Why a run-to-* helper returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The target predicate held within the round budget.
    Stabilized,
    /// The round budget ran out with no evidence that further progress is
    /// impossible — the run may just be slow.
    TimedOut,
    /// The stuck-run detector fired: no node's state fingerprint changed
    /// for a full window of rounds (see [`StuckReport`]). Requires
    /// [`Engine::enable_stuck_detection`].
    Stuck(StuckReport),
}

/// Evidence captured when the stuck-run detector fires.
///
/// The detector watches the network fingerprint — the fold of every node's
/// [`Protocol::state_fingerprint`] — and fires after `window` consecutive
/// rounds without change, with the topology static over the window and all
/// activations complete. When `idle_connections == 0` this is a *provable*
/// fixed point for the paper's algorithms: their durable state changes only
/// through connections, their decisions depend only on that state, and with
/// no connections and no state change the round is reproduced verbatim
/// forever (the A1 β=1 two-leader deadlock is exactly this shape). With
/// `idle_connections > 0` the verdict is heuristic — connections formed but
/// none carried news for a full window, which for the paper's *monotone*
/// protocols still means a fixed point whenever the window exceeds the
/// information diameter of the frozen state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StuckReport {
    /// Last round at the end of which the network fingerprint changed (or
    /// an activation / topology-change barrier reset the window); the state
    /// has been bit-identical since.
    pub fixed_since: u64,
    /// Round at which the detector fired (`fixed_since + window`).
    pub detected_round: u64,
    /// The configured window length W, in rounds.
    pub window: u64,
    /// Connections formed during the idle window. Zero makes the fixed
    /// point provable (no payload was exchanged at all).
    pub idle_connections: u64,
}

/// The §VIII "rounds after activation" metric: the length of the inclusive
/// round window `[last_activation, stabilized_round]`. The activation round
/// itself is charged (stabilizing in the round the last node wakes scores
/// 1), and a run that was already stable before its last activation scores
/// 0 — the empty window.
pub fn rounds_after_activation(stabilized_round: u64, last_activation: u64) -> u64 {
    if stabilized_round < last_activation {
        0
    } else {
        stabilized_round - last_activation + 1
    }
}

/// One round of a fully scripted execution: the adversary's resolved
/// choices for every phase, as enumerated and selected by the `mtm-check`
/// model checker. Replayed with [`Engine::step_scripted`] to cross-validate
/// checker counterexamples against the real executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundScript {
    /// Per-node advertise choice (an element of
    /// [`Protocol::enumerate_choices`] for that node and round).
    pub advertise: Vec<u32>,
    /// Per-node action (an element of [`Protocol::enumerate_actions`]).
    pub actions: Vec<Action>,
    /// Accepted connections as `(proposer, receiver)` pairs: a matching in
    /// which every proposer entry proposed to exactly that receiver this
    /// round and every receiver listened.
    pub accept: Vec<(NodeId, NodeId)>,
}

/// Progress-tracking state for the stuck-run detector.
struct StuckDetector {
    window: u64,
    last_fp: Option<u64>,
    stable_rounds: u64,
    last_change_round: u64,
    connections_at_change: u64,
    report: Option<StuckReport>,
}

/// The model executor. See the crate docs for the per-round phase order.
pub struct Engine<P: Protocol, T: DynamicTopology> {
    topology: T,
    params: ModelParams,
    schedule: ActivationSchedule,
    nodes: Vec<P>,
    rngs: Vec<SmallRng>,
    round: u64,
    metrics: Metrics,
    traces: Option<Vec<RoundTrace>>,
    connection_log: Option<Vec<(u64, NodeId, NodeId)>>,
    stuck: Option<StuckDetector>,
    loss_prob: f64,
    // Counter-coin key for proposal loss: survival of `(round, proposer)`
    // is `counter_coin(loss_seed, round, proposer) < loss_prob`, a pure
    // function with no sequential state (see the module docs).
    loss_seed: u64,
    // Worker count for the sharded executor (1 = straight-line path).
    threads: usize,
    shard_scratch: Vec<parallel::ShardScratch>,
    // Workhorse buffers (reused every round).
    tags: Vec<Tag>,
    slots: Vec<Slot>,
    accepted: Vec<(NodeId, NodeId)>,
    visible: Vec<NodeId>,
    visible_tags: Vec<Tag>,
    // Per-round active set: `active[u]` and `local_rounds[u]` are valid for
    // the round being executed; once `all_active` latches true they stop
    // being recomputed (activation is monotone).
    active: Vec<bool>,
    local_rounds: Vec<u64>,
    all_active: bool,
    active_count: u64,
    // Flat proposal arena: the scan phase appends every (proposer,
    // receiver) pair to `proposed`; survivors are collected as (receiver,
    // proposer) pairs in proposer order, then scattered into `arena` as one
    // CSR span per touched receiver (`incoming_start`/`incoming_len`).
    proposed: Vec<(NodeId, NodeId)>,
    proposal_pairs: Vec<(NodeId, NodeId)>,
    arena: Vec<NodeId>,
    incoming_start: Vec<u32>,
    incoming_len: Vec<u32>,
    // Scratch for selection-permutation acceptance (never aliases the
    // scan-phase `visible` buffer).
    accept_scratch: Vec<NodeId>,
    // Per-node fingerprint cache for the stuck detector (empty until the
    // first detector update; thereafter only active nodes are re-hashed).
    fp_cache: Vec<u64>,
    #[cfg(feature = "audit")]
    auditor: crate::audit::Auditor,
}

impl<P: Protocol, T: DynamicTopology> Engine<P, T> {
    /// Build an engine for `nodes` over `topology`.
    ///
    /// `seed` determines every random choice in the execution: node `u`
    /// gets RNG stream `u`, and the engine's own acceptance choices use the
    /// same per-node streams, so an execution is a pure function of its
    /// inputs.
    pub fn new(
        topology: T,
        params: ModelParams,
        schedule: ActivationSchedule,
        nodes: Vec<P>,
        seed: u64,
    ) -> Self {
        Self::from_executors(topology, params, schedule, ExecutorSet::spawn(nodes, seed))
    }

    /// Build the lockstep backend over an already-spawned
    /// [`ExecutorSet`] — the typed round-executor surface shared with the
    /// event backend (see [`crate::executor`]). The set is unzipped into
    /// the engine's struct-of-arrays state: the hot path batches whole
    /// phases over parallel arrays, but the node↔stream binding and the
    /// per-phase draw rules are the executor contract's.
    pub fn from_executors(
        topology: T,
        params: ModelParams,
        schedule: ActivationSchedule,
        set: ExecutorSet<P>,
    ) -> Self {
        let n = topology.node_count();
        assert_eq!(set.len(), n, "one protocol instance per topology node");
        assert_eq!(schedule.len(), n, "activation schedule must cover all nodes");
        let seed = set.seed();
        let (nodes, rngs): (Vec<P>, Vec<SmallRng>) =
            set.into_executors().into_iter().map(RoundExecuter::into_parts).unzip();
        Engine {
            topology,
            params,
            schedule,
            nodes,
            rngs,
            round: 0,
            metrics: Metrics::default(),
            traces: None,
            connection_log: None,
            stuck: None,
            loss_prob: 0.0,
            // Dedicated stream index far above the per-node range so
            // enabling proposal loss never perturbs node randomness.
            loss_seed: mtm_graph::rng::derive_seed(seed, u64::MAX),
            threads: 1,
            shard_scratch: Vec::new(),
            tags: vec![Tag::EMPTY; n],
            slots: vec![Slot::Inactive; n],
            accepted: Vec::new(),
            visible: Vec::new(),
            visible_tags: Vec::new(),
            active: vec![false; n],
            local_rounds: vec![0; n],
            all_active: false,
            active_count: 0,
            proposed: Vec::new(),
            proposal_pairs: Vec::new(),
            arena: Vec::new(),
            incoming_start: vec![0; n],
            incoming_len: vec![0; n],
            accept_scratch: Vec::new(),
            fp_cache: Vec::new(),
            #[cfg(feature = "audit")]
            auditor: crate::audit::Auditor::default(),
        }
    }

    /// Record a [`RoundTrace`] for every subsequent round.
    pub fn enable_tracing(&mut self) {
        self.traces = Some(Vec::new());
    }

    /// Collected traces (empty unless tracing was enabled).
    pub fn traces(&self) -> &[RoundTrace] {
        self.traces.as_deref().unwrap_or(&[])
    }

    /// Record every formed connection as `(round, proposer, receiver)` for
    /// post-hoc analysis (who talked to whom, when).
    pub fn enable_connection_log(&mut self) {
        self.connection_log = Some(Vec::new());
    }

    /// The connection log (empty unless enabled).
    pub fn connection_log(&self) -> &[(u64, NodeId, NodeId)] {
        self.connection_log.as_deref().unwrap_or(&[])
    }

    /// Enable the stuck-run detector with a no-progress window of `window`
    /// rounds (≥ 1).
    ///
    /// After every round the engine digests all node states (see
    /// [`Protocol::state_fingerprint`]); once the digest has stayed
    /// unchanged for `window` consecutive rounds — counted only while the
    /// topology holds still and all activations are complete — the run is
    /// declared stuck: `run_until` and the run-to-* helpers return early
    /// with [`RunStatus::Stuck`]. This turns the A1 β=1 permanent deadlock
    /// from a `max_rounds` timeout into an O(window) detection.
    ///
    /// Sizing `window`: it must exceed the longest *legitimate* gap between
    /// durable-state changes. For the phase-staged algorithms a small
    /// multiple of `phase_len` is safe; for coin-flip gossip use a
    /// generous constant (a frozen window there is probabilistic evidence
    /// unless [`StuckReport::idle_connections`] is 0).
    ///
    /// Panics if the protocol does not implement `state_fingerprint`.
    pub fn enable_stuck_detection(&mut self, window: u64) {
        assert!(window >= 1, "stuck-detection window must be ≥ 1");
        assert!(
            self.network_fingerprint().is_some() || self.nodes.is_empty(),
            "stuck detection requires the protocol to implement state_fingerprint"
        );
        self.stuck = Some(StuckDetector {
            window,
            last_fp: None,
            stable_rounds: 0,
            last_change_round: self.round,
            connections_at_change: self.metrics.connections,
            report: None,
        });
    }

    /// The stuck-run detector's verdict, if it has fired.
    pub fn stuck_report(&self) -> Option<StuckReport> {
        self.stuck.as_ref().and_then(|d| d.report)
    }

    /// Last round at the end of which the network fingerprint changed (or
    /// a barrier reset the detector). `None` unless detection is enabled.
    /// Useful for timeout diagnostics: "no progress since round r".
    pub fn last_progress_round(&self) -> Option<u64> {
        self.stuck.as_ref().map(|d| d.last_change_round)
    }

    /// Fold of every node's [`Protocol::state_fingerprint`] in node order,
    /// or `None` if the protocol does not support fingerprinting.
    pub fn network_fingerprint(&self) -> Option<u64> {
        let mut acc = crate::fingerprint::SEED;
        for node in &self.nodes {
            acc = crate::fingerprint::mix(acc, node.state_fingerprint()?);
        }
        Some(acc)
    }

    /// Inject message loss: each proposal is independently dropped with
    /// probability `prob` before reaching its receiver (the proposer still
    /// forfeits its round — its radio was committed to sending). Dropped
    /// proposals count in [`Metrics::dropped_proposals`], never as
    /// rejections or connections. Loss coins are counter-based draws keyed
    /// on a dedicated seed (see [`mtm_graph::rng::counter_coin`]), so the
    /// run stays a pure function of `(seed, config)` and node randomness
    /// is untouched.
    pub fn set_proposal_loss(&mut self, prob: f64) {
        assert!((0.0..=1.0).contains(&prob), "loss probability must be in [0, 1], got {prob}");
        self.loss_prob = prob;
    }

    /// Set the worker count for the sharded round executor (`0` means "use
    /// [`std::thread::available_parallelism`]"). The executor is bit-for-bit
    /// deterministic: any thread count produces the identical execution, so
    /// this is purely a throughput knob. With `threads ≤ 1` (the default)
    /// rounds run on the calling thread.
    ///
    /// The sharded path covers [`ConnectionPolicy::SingleUniform`] (the
    /// mobile telephone model); [`ConnectionPolicy::AcceptAll`] rounds and
    /// [`Engine::step_scripted`] always run sequentially.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            threads
        };
    }

    /// The configured worker count (see [`Engine::set_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Aggregate execution counters.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Model parameters.
    pub fn params(&self) -> ModelParams {
        self.params
    }

    /// The activation schedule.
    pub fn schedule(&self) -> &ActivationSchedule {
        &self.schedule
    }

    /// Immutable view of the topology (e.g. to query
    /// [`DynamicTopology::is_node_up`] after a step).
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Immutable view of node `u`'s protocol state.
    pub fn node(&self, u: usize) -> &P {
        &self.nodes[u]
    }

    /// Immutable view of all protocol states.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// True iff node `u` has activated by the current round.
    pub fn is_active(&self, u: usize) -> bool {
        self.round >= 1 && self.schedule.is_active(u, self.round)
    }

    /// Rounds that passed the full conformance audit so far. Always 0 when
    /// the `audit` feature is disabled.
    pub fn rounds_audited(&self) -> u64 {
        #[cfg(feature = "audit")]
        {
            self.auditor.rounds_audited()
        }
        #[cfg(not(feature = "audit"))]
        {
            0
        }
    }

    /// Run this engine's configuration twice and demand identical
    /// [`Metrics`] and [`RoundTrace`](crate::metrics::RoundTrace) streams.
    /// Convenience wrapper over [`crate::audit::determinism_self_check`];
    /// `build` must construct a fresh engine from the same inputs each call.
    pub fn determinism_self_check(
        build: impl FnMut() -> Self,
        rounds: u64,
    ) -> Result<Metrics, String> {
        crate::audit::determinism_self_check(build, rounds)
    }

    /// Execute one full round (all five phases).
    pub fn step(&mut self) {
        // The sharded path covers the mobile model's matching-shaped
        // acceptance; AcceptAll (classical model, sequential intra-round
        // interactions) keeps the straight-line path. Both paths are
        // bit-for-bit identical where they overlap.
        if self.threads > 1 && self.params.policy == ConnectionPolicy::SingleUniform {
            self.step_parallel();
        } else {
            self.step_sequential();
        }
    }

    /// The straight-line round executor: the reference the sharded path is
    /// pinned against (`tests/trace_equivalence.rs`).
    fn step_sequential(&mut self) {
        self.round += 1;
        let round = self.round;
        let n = self.nodes.len();
        let topo_may_change = self.stuck.is_some() && self.topology.may_change_at(round);
        let graph = self.topology.graph_at(round);
        assert_eq!(graph.node_count(), n, "topology changed node count");

        let round_proposals_before = self.metrics.proposals;
        let round_connections_before = self.metrics.connections;

        // Active-set precompute: one schedule check per node per round,
        // with `local_round` cached alongside. Activation is monotone, so
        // once everyone is awake the bitmap is complete forever and the
        // steady state only bumps the cached local rounds.
        if self.all_active {
            for lr in &mut self.local_rounds {
                *lr += 1;
            }
        } else {
            self.active_count = 0;
            for u in 0..n {
                if self.schedule.is_active(u, round) {
                    self.active[u] = true;
                    self.active_count += 1;
                    self.local_rounds[u] = self.schedule.local_round(u, round);
                } else {
                    self.active[u] = false;
                }
            }
            self.all_active = self.active_count == n as u64;
        }

        // Phase 1: advertise. The lockstep zip lets the per-node loop run
        // without bounds checks on any of the parallel arrays.
        let tag_bits = self.params.tag_bits;
        for (_u, (((((slot, &active), &lr), node), rng), tag_slot)) in self
            .slots
            .iter_mut()
            .zip(&self.active)
            .zip(&self.local_rounds)
            .zip(&mut self.nodes)
            .zip(&mut self.rngs)
            .zip(&mut self.tags)
            .enumerate()
        {
            if !active {
                *slot = Slot::Inactive;
                continue;
            }
            let tag = node.advertise(lr, rng);
            #[cfg(feature = "audit")]
            self.auditor.check_tag(round, _u, tag, tag_bits);
            #[cfg(not(feature = "audit"))]
            assert!(
                tag.fits(tag_bits),
                "node {_u} advertised tag {tag:?} exceeding b = {tag_bits} bits"
            );
            *tag_slot = tag;
        }

        // Phases 2-3: scan and act. With everyone active the CSR neighbor
        // slice *is* the scan (zero-copy); during activation ramp-up the
        // visible subset is filtered into scratch. Both slices are sorted,
        // which the proposal audit below relies on.
        let all_active = self.all_active;
        for (u, (((((slot, &active), &lr), node), rng), nbrs)) in self
            .slots
            .iter_mut()
            .zip(&self.active)
            .zip(&self.local_rounds)
            .zip(&mut self.nodes)
            .zip(&mut self.rngs)
            .zip(graph.neighbor_rows())
            .enumerate()
        {
            if !active {
                continue;
            }
            let neighbors: &[NodeId] = if all_active {
                if tag_bits > 0 {
                    self.visible_tags.clear();
                    for &v in nbrs {
                        self.visible_tags.push(self.tags[v as usize]);
                    }
                }
                nbrs
            } else {
                self.visible.clear();
                self.visible_tags.clear();
                for &v in nbrs {
                    if self.active[v as usize] {
                        self.visible.push(v);
                        if tag_bits > 0 {
                            self.visible_tags.push(self.tags[v as usize]);
                        }
                    }
                }
                &self.visible
            };
            let scan = Scan { neighbors, tags: &self.visible_tags, round, local_round: lr };
            *slot = match node.act(&scan, rng) {
                Action::Listen => Slot::Listen,
                Action::Propose(v) => {
                    #[cfg(feature = "audit")]
                    self.auditor.check_proposal(round, u, v, scan.neighbors);
                    #[cfg(not(feature = "audit"))]
                    assert!(
                        scan.neighbors.binary_search(&v).is_ok(),
                        "node {u} proposed to {v}, not a visible neighbor"
                    );
                    // hot path: u < n <= u32::MAX by construction. mtm-lint: allow(truncating-cast)
                    self.proposed.push((u as NodeId, v));
                    Slot::Propose(v)
                }
            };
        }

        // Phase 4: collect surviving proposals (loss coins are pure
        // counter draws, evaluated only when loss is enabled), then lay
        // them out as one CSR span per receiver in the flat arena.
        debug_assert!(self.proposal_pairs.is_empty());
        self.metrics.proposals += self.proposed.len() as u64;
        if self.loss_prob > 0.0 {
            Self::collect_proposals::<true>(
                &self.slots,
                &self.proposed,
                self.loss_prob,
                self.loss_seed,
                round,
                &mut self.metrics,
                &mut self.incoming_len,
                &mut self.proposal_pairs,
            );
        } else {
            Self::collect_proposals::<false>(
                &self.slots,
                &self.proposed,
                self.loss_prob,
                self.loss_seed,
                round,
                &mut self.metrics,
                &mut self.incoming_len,
                &mut self.proposal_pairs,
            );
        }
        self.proposed.clear();
        // Every arena position below the pair count is overwritten by the
        // scatter, so the buffer only ever grows — no per-round zeroing.
        if self.arena.len() < self.proposal_pairs.len() {
            self.arena.resize(self.proposal_pairs.len(), 0);
        }
        // Dense prefix-sum: one cache-linear pass over two u32 arrays
        // (lengths are nonzero only for receivers with proposals).
        let mut cursor = 0u32;
        for (start, &len) in self.incoming_start.iter_mut().zip(&self.incoming_len) {
            *start = cursor;
            cursor += len;
        }
        // Scatter; pairs are in ascending proposer order, so each span
        // stays proposer-sorted. Afterwards `incoming_start[v]` points one
        // past the span's end.
        for &(v, u) in &self.proposal_pairs {
            let c = self.incoming_start[v as usize];
            self.arena[c as usize] = u;
            self.incoming_start[v as usize] = c + 1;
        }

        // Phase 4a: decide which proposals are accepted (may need the
        // round graph for the selection-permutation device), receivers in
        // ascending node id — the canonical order the sharded executor's
        // shard-concatenation merge reproduces. Then Phase 4b: perform the
        // payload exchanges.
        debug_assert!(self.accepted.is_empty());
        for vi in 0..n {
            let k = self.incoming_len[vi] as usize;
            if k == 0 {
                continue;
            }
            self.incoming_len[vi] = 0;
            // receivers are node ids: vi < n <= u32::MAX. mtm-lint: allow(truncating-cast)
            let v = vi as NodeId;
            let end = self.incoming_start[vi] as usize;
            let incoming = &self.arena[end - k..end];
            match self.params.policy {
                ConnectionPolicy::SingleUniform => {
                    let u = match self.params.acceptance {
                        Acceptance::UniformIndex => {
                            incoming[uniform_accept_index(&mut self.rngs[vi], k)]
                        }
                        Acceptance::SelectionPermutation => {
                            // Definition VI.2's device: shuffle the
                            // neighbor list, accept the proposer ranked
                            // first. Distributionally identical to the
                            // uniform-index choice. Inactive neighbors can
                            // never propose, so only active ones enter the
                            // shuffle (a subset's relative order within a
                            // uniform permutation is itself uniform).
                            self.accept_scratch.clear();
                            if self.all_active {
                                self.accept_scratch.extend_from_slice(graph.neighbors(v));
                            } else {
                                self.accept_scratch.extend(
                                    graph
                                        .neighbors(v)
                                        .iter()
                                        .copied()
                                        .filter(|&w| self.active[w as usize]),
                                );
                            }
                            self.accept_scratch.shuffle(&mut self.rngs[vi]);
                            *self
                                .accept_scratch
                                .iter()
                                .find(|cand| incoming.contains(cand))
                                .expect("every proposer is a neighbor")
                        }
                    };
                    self.metrics.rejected_proposals += (k - 1) as u64;
                    self.accepted.push((u, v));
                }
                ConnectionPolicy::AcceptAll => {
                    // Deliver in ascending proposer order; each proposer
                    // sees the receiver's state as of *its* connection
                    // (connections in the classical model are sequential
                    // interactions within the round).
                    for &u in incoming {
                        self.accepted.push((u, v));
                    }
                }
            }
        }
        self.proposal_pairs.clear();
        #[cfg(feature = "audit")]
        if self.params.policy == ConnectionPolicy::SingleUniform {
            // Section III: each node participates in at most one
            // connection per round — the accepted set is a matching.
            self.auditor.check_matching(round, &self.accepted);
        }
        if self.connection_log.is_some() {
            self.deliver_accepted::<true>(round);
        } else {
            self.deliver_accepted::<false>(round);
        }
        self.accepted.clear();

        // Phase 5: end of round.
        for (((&active, &lr), node), rng) in
            self.active.iter().zip(&self.local_rounds).zip(&mut self.nodes).zip(&mut self.rngs)
        {
            if active {
                node.end_round(lr, rng);
            }
        }

        self.metrics.rounds = round;
        if let Some(traces) = &mut self.traces {
            traces.push(RoundTrace {
                round,
                active: self.active_count,
                proposals: self.metrics.proposals - round_proposals_before,
                connections: self.metrics.connections - round_connections_before,
            });
        }
        if self.stuck.is_some() {
            self.update_stuck_detector(topo_may_change);
        }
    }

    /// Execute one round following `script` instead of drawing randomness —
    /// the scripted-adversary hook `mtm-check` uses to replay counterexample
    /// schedules through the real executor (same phase order, payload
    /// audits and delivery path as [`Engine::step`]).
    ///
    /// Requirements (asserted): the acceptance policy is
    /// [`ConnectionPolicy::SingleUniform`], every node is active this round
    /// (the checker explores synchronized executions only), the script's
    /// vectors cover all nodes, every scripted proposal targets a current
    /// neighbor, and `accept` is a matching of scripted proposals onto
    /// listening receivers. Scripted rounds draw nothing from the per-node
    /// RNG streams — checkable protocols keep `on_connect`/`end_round`
    /// RNG-free — so the streams stay aligned for any unscripted rounds
    /// around them.
    pub fn step_scripted(&mut self, script: &RoundScript) {
        let n = self.nodes.len();
        assert_eq!(script.advertise.len(), n, "script advertise choices must cover all nodes");
        assert_eq!(script.actions.len(), n, "script actions must cover all nodes");
        assert_eq!(
            self.params.policy,
            ConnectionPolicy::SingleUniform,
            "scripted rounds model the mobile model's matching-shaped acceptance"
        );
        self.round += 1;
        let round = self.round;
        let topo_may_change = self.stuck.is_some() && self.topology.may_change_at(round);
        let graph = self.topology.graph_at(round);
        assert_eq!(graph.node_count(), n, "topology changed node count");

        let round_proposals_before = self.metrics.proposals;
        let round_connections_before = self.metrics.connections;

        // Same active-set precompute as `step`, then demand full coverage.
        if self.all_active {
            for lr in &mut self.local_rounds {
                *lr += 1;
            }
        } else {
            self.active_count = 0;
            for u in 0..n {
                if self.schedule.is_active(u, round) {
                    self.active[u] = true;
                    self.active_count += 1;
                    self.local_rounds[u] = self.schedule.local_round(u, round);
                } else {
                    self.active[u] = false;
                }
            }
            self.all_active = self.active_count == n as u64;
        }
        assert!(self.all_active, "scripted rounds require every node active in round {round}");

        // Phase 1: advertise, resolving each node's randomness with the
        // scripted choice.
        let tag_bits = self.params.tag_bits;
        for u in 0..n {
            let tag = self.nodes[u].apply_choice(self.local_rounds[u], script.advertise[u]);
            #[cfg(feature = "audit")]
            self.auditor.check_tag(round, u, tag, tag_bits);
            #[cfg(not(feature = "audit"))]
            assert!(
                tag.fits(tag_bits),
                "node {u} advertised tag {tag:?} exceeding b = {tag_bits} bits"
            );
            self.tags[u] = tag;
        }

        // Phases 2-3: scan, then apply the scripted action.
        for (u, nbrs) in graph.neighbor_rows().enumerate() {
            if tag_bits > 0 {
                self.visible_tags.clear();
                for &v in nbrs {
                    self.visible_tags.push(self.tags[v as usize]);
                }
            }
            let scan = Scan {
                neighbors: nbrs,
                tags: &self.visible_tags,
                round,
                local_round: self.local_rounds[u],
            };
            let action = script.actions[u];
            self.nodes[u].apply_action(&scan, action);
            self.slots[u] = match action {
                Action::Listen => Slot::Listen,
                Action::Propose(v) => {
                    #[cfg(feature = "audit")]
                    self.auditor.check_proposal(round, u, v, scan.neighbors);
                    #[cfg(not(feature = "audit"))]
                    assert!(
                        scan.neighbors.binary_search(&v).is_ok(),
                        "node {u} proposed to {v}, not a visible neighbor"
                    );
                    self.metrics.proposals += 1;
                    Slot::Propose(v)
                }
            };
        }

        // Phase 4: the scripted matching. Validate it against the scripted
        // proposals, then account for the ones it left on the floor:
        // rejected when the receiver was busy or chose another proposer,
        // dropped when a listening receiver accepted nothing (the scripted
        // adversary subsumes proposal loss).
        debug_assert!(self.accepted.is_empty());
        let mut receiver_took = vec![false; n];
        let mut proposer_matched = vec![false; n];
        for &(u, v) in &script.accept {
            let (ui, vi) = (u as usize, v as usize);
            assert!(ui < n && vi < n, "accepted pair ({u}, {v}) out of range");
            assert_eq!(
                self.slots[ui],
                Slot::Propose(v),
                "accepted pair ({u}, {v}) does not match a scripted proposal"
            );
            assert_eq!(self.slots[vi], Slot::Listen, "receiver {v} did not listen this round");
            assert!(!receiver_took[vi], "receiver {v} accepts more than one proposal");
            receiver_took[vi] = true;
            proposer_matched[ui] = true;
            self.accepted.push((u, v));
        }
        for (u, slot) in self.slots.iter().enumerate().take(n) {
            if let Slot::Propose(v) = *slot {
                if proposer_matched[u] {
                    continue;
                }
                if self.slots[v as usize] == Slot::Listen && !receiver_took[v as usize] {
                    self.metrics.dropped_proposals += 1;
                } else {
                    self.metrics.rejected_proposals += 1;
                }
            }
        }
        self.accepted.sort_unstable();
        #[cfg(feature = "audit")]
        self.auditor.check_matching(round, &self.accepted);
        if self.connection_log.is_some() {
            self.deliver_accepted::<true>(round);
        } else {
            self.deliver_accepted::<false>(round);
        }
        self.accepted.clear();

        // Phase 5: end of round.
        for ((&lr, node), rng) in self.local_rounds.iter().zip(&mut self.nodes).zip(&mut self.rngs)
        {
            node.end_round(lr, rng);
        }

        self.metrics.rounds = round;
        if let Some(traces) = &mut self.traces {
            traces.push(RoundTrace {
                round,
                active: self.active_count,
                proposals: self.metrics.proposals - round_proposals_before,
                connections: self.metrics.connections - round_connections_before,
            });
        }
        if self.stuck.is_some() {
            self.update_stuck_detector(topo_may_change);
        }
    }

    /// Phase-4 proposal collection over the scan phase's `proposed` list
    /// (already in ascending proposer order), monomorphized over loss
    /// injection so the loss-free common case carries no per-proposal
    /// branch or coin evaluation. `LOSSY` must equal `loss_prob > 0.0`.
    /// Survival of a proposal is the pure counter draw
    /// `counter_coin(loss_seed, round, proposer) < loss_prob` — no
    /// sequential state, so evaluation order is irrelevant (part of the
    /// RNG contract; the sharded executor draws the same coins at scan
    /// time). Takes fields rather than `&mut self` because the caller
    /// still holds the round graph borrow. The caller accounts
    /// `metrics.proposals`.
    #[allow(clippy::too_many_arguments)]
    fn collect_proposals<const LOSSY: bool>(
        slots: &[Slot],
        proposed: &[(NodeId, NodeId)],
        loss_prob: f64,
        loss_seed: u64,
        round: u64,
        metrics: &mut Metrics,
        incoming_len: &mut [u32],
        proposal_pairs: &mut Vec<(NodeId, NodeId)>,
    ) {
        for &(u, v) in proposed {
            if LOSSY && mtm_graph::rng::counter_coin(loss_seed, round, u as u64) < loss_prob {
                metrics.dropped_proposals += 1;
                continue;
            }
            let vi = v as usize;
            if slots[vi] == Slot::Listen {
                incoming_len[vi] += 1;
                proposal_pairs.push((v, u));
            } else {
                // Receiver proposed itself (or a race with inactivity):
                // the proposal is lost.
                metrics.rejected_proposals += 1;
            }
        }
    }

    /// Phase-4b delivery, monomorphized over connection logging so the
    /// common no-log case carries no per-connection `Option` check.
    fn deliver_accepted<const LOG: bool>(&mut self, round: u64) {
        let accepted = std::mem::take(&mut self.accepted);
        for &(u, v) in &accepted {
            if LOG {
                self.connection_log
                    .as_mut()
                    .expect("LOG is true only when the log is enabled")
                    .push((round, u, v));
            }
            self.connect(u as usize, v as usize);
        }
        self.accepted = accepted;
    }

    /// Advance the stuck-run detector after a completed round.
    ///
    /// Node fingerprints are cached per node: only active nodes run any
    /// phase, so inactive entries cannot have changed and are not
    /// re-hashed. The fold over the cache stays in node order, matching
    /// [`Engine::network_fingerprint`] exactly.
    fn update_stuck_detector(&mut self, topo_may_change: bool) {
        let n = self.nodes.len();
        if self.fp_cache.len() != n {
            self.fp_cache.clear();
            for node in &self.nodes {
                self.fp_cache.push(
                    node.state_fingerprint()
                        .expect("fingerprint support is constant and was checked at enable time"),
                );
            }
        } else {
            for u in 0..n {
                if self.active[u] {
                    self.fp_cache[u] = self.nodes[u]
                        .state_fingerprint()
                        .expect("fingerprint support is constant and was checked at enable time");
                }
            }
        }
        let mut fp = crate::fingerprint::SEED;
        for &f in &self.fp_cache {
            fp = crate::fingerprint::mix(fp, f);
        }
        let round = self.round;
        // Frozen state is only evidence of a fixed point while the world
        // holds still: pending activations or a topology change window can
        // legitimately unfreeze it, so those rounds reset the count.
        let barrier = topo_may_change || round <= self.schedule.last_activation();
        let connections = self.metrics.connections;
        let det = self.stuck.as_mut().expect("caller checked stuck.is_some()");
        if det.report.is_some() {
            return;
        }
        if barrier || det.last_fp != Some(fp) {
            det.last_fp = Some(fp);
            det.stable_rounds = 0;
            det.last_change_round = round;
            det.connections_at_change = connections;
        } else {
            det.stable_rounds += 1;
            if det.stable_rounds >= det.window {
                det.report = Some(StuckReport {
                    fixed_since: det.last_change_round,
                    detected_round: round,
                    window: det.window,
                    idle_connections: connections - det.connections_at_change,
                });
            }
        }
    }

    /// Form a connection between proposer `u` and receiver `v`.
    fn connect(&mut self, u: usize, v: usize) {
        let pu = self.nodes[u].payload();
        let pv = self.nodes[v].payload();
        #[cfg(feature = "audit")]
        for (node, uids, bits) in
            [(u, pu.uid_count(), pu.extra_bits()), (v, pv.uid_count(), pv.extra_bits())]
        {
            self.auditor.check_payload(
                self.round,
                node,
                uids,
                self.params.max_payload_uids,
                bits,
                self.params.max_payload_bits,
            );
        }
        #[cfg(not(feature = "audit"))]
        debug_assert!(
            pu.uid_count() <= self.params.max_payload_uids
                && pu.extra_bits() <= self.params.max_payload_bits,
            "node {u} payload exceeds model budget"
        );
        #[cfg(not(feature = "audit"))]
        debug_assert!(
            pv.uid_count() <= self.params.max_payload_uids
                && pv.extra_bits() <= self.params.max_payload_bits,
            "node {v} payload exceeds model budget"
        );
        self.nodes[u].on_connect(&pv, &mut self.rngs[u]);
        self.nodes[v].on_connect(&pu, &mut self.rngs[v]);
        self.metrics.connections += 1;
    }

    /// Run `k` rounds unconditionally.
    pub fn run_rounds(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Step until `pred(self)` holds, or `max_rounds` total rounds have
    /// executed. Returns the round at which the predicate first held.
    ///
    /// The predicate is evaluated *before* the first step: a network that
    /// already satisfies it (pre-converged imported state, n ≤ 1) reports
    /// the current round — possibly 0 — and executes no rounds. When stuck
    /// detection is enabled the loop also returns `None` as soon as the
    /// detector fires (see [`Engine::stuck_report`]), well before the
    /// budget runs out.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut pred: impl FnMut(&Self) -> bool,
    ) -> Option<u64> {
        if pred(self) {
            return Some(self.round);
        }
        while self.round < max_rounds {
            self.step();
            if pred(self) {
                return Some(self.round);
            }
            if self.stuck_report().is_some() {
                return None;
            }
        }
        None
    }

    /// Assemble a [`RunOutcome`] for a finished run-to-* helper call.
    fn outcome(&self, stabilized: Option<u64>, winner: Option<u64>) -> RunOutcome {
        let last_act = self.schedule.last_activation();
        let status = match (stabilized, self.stuck_report()) {
            (Some(_), _) => RunStatus::Stabilized,
            (None, Some(report)) => RunStatus::Stuck(report),
            (None, None) => RunStatus::TimedOut,
        };
        RunOutcome {
            stabilized_round: stabilized,
            rounds_after_activation: stabilized.map(|r| rounds_after_activation(r, last_act)),
            winner,
            status,
            metrics: self.metrics,
        }
    }
}

impl<P: Protocol + LeaderView, T: DynamicTopology> Engine<P, T> {
    /// True iff every node (active or not — inactive nodes hold their own
    /// UID, so agreement requires full activation) reports the same leader.
    pub fn leaders_agree(&self) -> Option<u64> {
        // An empty node set has no leader to agree on, not a vacuous
        // agreement — report disagreement rather than panicking.
        let first = self.nodes.first()?.leader();
        if self.nodes.iter().all(|p| p.leader() == first) {
            Some(first)
        } else {
            None
        }
    }

    /// Run until every node agrees on one leader (at most `max_rounds`).
    ///
    /// All three paper algorithms are *monotone* — a node's leader candidate
    /// only ever improves toward the eventual fixed point — so the first
    /// all-agree round equals the stabilization round of Section IV.
    /// (Integration tests re-verify the "never changes afterwards" property
    /// explicitly by running extra rounds.)
    pub fn run_to_stabilization(&mut self, max_rounds: u64) -> RunOutcome {
        let stabilized = self.run_until(max_rounds, |e| e.leaders_agree().is_some());
        let winner = stabilized.and_then(|_| self.leaders_agree());
        self.outcome(stabilized, winner)
    }
}

impl<P: Protocol + RumorView, T: DynamicTopology> Engine<P, T> {
    /// Number of informed nodes.
    pub fn informed_count(&self) -> usize {
        self.nodes.iter().filter(|p| p.informed()).count()
    }

    /// Run until every node knows the rumor (at most `max_rounds`).
    pub fn run_to_full_information(&mut self, max_rounds: u64) -> RunOutcome {
        let done = self.run_until(max_rounds, |e| e.informed_count() == e.node_count());
        self.outcome(done, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_graph::{gen, StaticTopology};
    use rand::Rng;

    /// Test protocol: blind-gossip-like min-UID spreader with tunable
    /// behaviour, used to exercise engine mechanics.
    struct MinSpread {
        uid: u64,
        best: u64,
        always_propose_first: bool,
    }

    #[derive(Clone)]
    struct U64Payload(u64);

    impl PayloadCost for U64Payload {
        fn uid_count(&self) -> u32 {
            1
        }
        fn extra_bits(&self) -> u32 {
            0
        }
    }

    impl Protocol for MinSpread {
        type Payload = U64Payload;
        fn advertise(&mut self, _local: u64, _rng: &mut SmallRng) -> Tag {
            Tag::EMPTY
        }
        fn act(&mut self, scan: &Scan<'_>, rng: &mut SmallRng) -> Action {
            if scan.is_empty() {
                return Action::Listen;
            }
            if self.always_propose_first {
                return Action::Propose(scan.neighbors[0]);
            }
            if rng.gen_bool(0.5) {
                let i = rng.gen_range(0..scan.len());
                Action::Propose(scan.neighbors[i])
            } else {
                Action::Listen
            }
        }
        fn payload(&self) -> U64Payload {
            U64Payload(self.best)
        }
        fn on_connect(&mut self, peer: &U64Payload, _rng: &mut SmallRng) {
            self.best = self.best.min(peer.0);
        }
        fn state_fingerprint(&self) -> Option<u64> {
            Some(crate::fingerprint::of_words(&[self.best]))
        }
    }

    impl LeaderView for MinSpread {
        fn leader(&self) -> u64 {
            self.best
        }
        fn uid(&self) -> u64 {
            self.uid
        }
    }

    fn nodes(n: usize) -> Vec<MinSpread> {
        (0..n)
            .map(|u| MinSpread {
                uid: u as u64 + 100,
                best: u as u64 + 100,
                always_propose_first: false,
            })
            .collect()
    }

    fn engine_on(g: mtm_graph::Graph, n: usize, seed: u64) -> Engine<MinSpread, StaticTopology> {
        Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            nodes(n),
            seed,
        )
    }

    #[test]
    fn min_spreads_on_clique() {
        let mut e = engine_on(gen::clique(16), 16, 1);
        let out = e.run_to_stabilization(10_000);
        assert_eq!(out.winner, Some(100));
        assert!(out.stabilized_round.is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = engine_on(gen::cycle(12), 12, 7);
        let mut b = engine_on(gen::cycle(12), 12, 7);
        let ra = a.run_to_stabilization(100_000);
        let rb = b.run_to_stabilization(100_000);
        assert_eq!(ra, rb);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mut a = engine_on(gen::cycle(32), 32, 1);
        let mut b = engine_on(gen::cycle(32), 32, 2);
        let ra = a.run_to_stabilization(100_000);
        let rb = b.run_to_stabilization(100_000);
        assert_ne!(ra.stabilized_round, rb.stabilized_round);
    }

    #[test]
    fn at_most_one_connection_per_node_per_round() {
        // With AcceptAll this would double-count; under SingleUniform the
        // number of connections per round is at most n/2.
        let n = 10;
        let mut e = engine_on(gen::clique(n), n, 3);
        e.enable_tracing();
        e.run_rounds(50);
        for t in e.traces() {
            assert!(
                t.connections as usize <= n / 2,
                "round {}: {} connections",
                t.round,
                t.connections
            );
            assert!(t.proposals >= t.connections);
        }
    }

    #[test]
    fn proposals_conserved() {
        let mut e = engine_on(gen::clique(9), 9, 5);
        e.run_rounds(100);
        let m = e.metrics();
        assert_eq!(m.proposals, m.connections + m.rejected_proposals);
    }

    #[test]
    fn star_all_propose_hub_accepts_one() {
        // Leaves always propose to their only neighbor (the hub); the hub
        // listens (no neighbors propose to leaves). Exactly one connection
        // forms per round.
        let n = 6;
        let mut leaf_nodes: Vec<MinSpread> = (0..n)
            .map(|u| MinSpread { uid: u as u64, best: u as u64, always_propose_first: u != 0 })
            .collect();
        leaf_nodes[0].always_propose_first = false;
        // Hub (node 0) with always_propose_first = false may still propose;
        // force listen by making it see an empty scan? Instead give hub a
        // deterministic listen via fresh type — simpler: run and check the
        // invariant that connections ≤ 1 for rounds where hub listened.
        let mut e = Engine::new(
            StaticTopology::new(gen::star(n)),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            leaf_nodes,
            11,
        );
        e.enable_tracing();
        e.run_rounds(30);
        for t in e.traces() {
            assert!(t.connections <= 1, "star can host at most 1 connection involving the hub");
        }
    }

    #[test]
    fn inactive_nodes_invisible_and_idle() {
        let n = 4;
        let sched = ActivationSchedule::two_wave(n, 2, 50);
        let mut e = Engine::new(
            StaticTopology::new(gen::clique(n)),
            ModelParams::mobile(0),
            sched,
            nodes(n),
            2,
        );
        // Before round 50 nodes 2,3 never participate: best stays their own.
        e.run_rounds(49);
        assert_eq!(e.node(2).best, 102);
        assert_eq!(e.node(3).best, 103);
        // Nodes 0,1 have converged between themselves.
        assert_eq!(e.node(0).best, 100);
        assert_eq!(e.node(1).best, 100);
        let out = e.run_to_stabilization(10_000);
        assert_eq!(out.winner, Some(100));
        let r = out.stabilized_round.expect("a stabilized run records its round");
        assert!(r >= 50);
        assert_eq!(out.rounds_after_activation, Some(r - 50 + 1));
    }

    #[test]
    fn classical_policy_accepts_all() {
        let n = 8;
        // All leaves propose to hub each round; hub listens. Under
        // AcceptAll the hub learns the min of all leaves in one round.
        let mut protos: Vec<MinSpread> = (0..n)
            .map(|u| MinSpread { uid: u as u64, best: u as u64, always_propose_first: true })
            .collect();
        protos[0].always_propose_first = false; // hub: random behaviour
        let mut e = Engine::new(
            StaticTopology::new(gen::star(n)),
            ModelParams::classical(),
            ActivationSchedule::synchronized(n),
            protos,
            4,
        );
        e.enable_tracing();
        e.run_rounds(8);
        // In some round the hub listened and connected to all 7 leaves.
        let max_conn = e
            .traces()
            .iter()
            .map(|t| t.connections)
            .max()
            .expect("a traced run records at least one round");
        assert!(
            max_conn >= (n - 1) as u64,
            "classical hub should accept all proposals, max was {max_conn}"
        );
    }

    #[test]
    #[should_panic(expected = "exceeding b")]
    fn tag_budget_enforced() {
        struct BadTag;
        #[derive(Clone)]
        struct Nothing;
        impl PayloadCost for Nothing {
            fn uid_count(&self) -> u32 {
                0
            }
            fn extra_bits(&self) -> u32 {
                0
            }
        }
        impl Protocol for BadTag {
            type Payload = Nothing;
            fn advertise(&mut self, _l: u64, _r: &mut SmallRng) -> Tag {
                Tag(1) // needs b ≥ 1
            }
            fn act(&mut self, _s: &Scan<'_>, _r: &mut SmallRng) -> Action {
                Action::Listen
            }
            fn payload(&self) -> Nothing {
                Nothing
            }
            fn on_connect(&mut self, _p: &Nothing, _r: &mut SmallRng) {}
        }
        let mut e = Engine::new(
            StaticTopology::new(gen::clique(2)),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(2),
            vec![BadTag, BadTag],
            0,
        );
        e.step();
    }

    #[test]
    #[should_panic(expected = "payload exceeds model budget")]
    fn payload_budget_enforced() {
        /// Node whose payload claims more UIDs than the model allows — the
        /// first formed connection must trip the audit.
        struct FatPayload {
            propose: bool,
        }
        #[derive(Clone)]
        struct TooManyUids;
        impl PayloadCost for TooManyUids {
            fn uid_count(&self) -> u32 {
                99
            }
            fn extra_bits(&self) -> u32 {
                0
            }
        }
        impl Protocol for FatPayload {
            type Payload = TooManyUids;
            fn advertise(&mut self, _l: u64, _r: &mut SmallRng) -> Tag {
                Tag::EMPTY
            }
            fn act(&mut self, scan: &Scan<'_>, _r: &mut SmallRng) -> Action {
                match scan.neighbors.first() {
                    Some(&v) if self.propose => Action::Propose(v),
                    _ => Action::Listen,
                }
            }
            fn payload(&self) -> TooManyUids {
                TooManyUids
            }
            fn on_connect(&mut self, _p: &TooManyUids, _r: &mut SmallRng) {}
        }
        let mut e = Engine::new(
            StaticTopology::new(gen::star(3)),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(3),
            // Leaves propose to the listening hub: a connection forms in
            // round 1 and the over-budget payload crosses it.
            vec![
                FatPayload { propose: false },
                FatPayload { propose: true },
                FatPayload { propose: true },
            ],
            0,
        );
        e.run_rounds(1);
    }

    #[test]
    fn audit_counts_rounds() {
        let mut e = engine_on(gen::clique(6), 6, 8);
        e.run_rounds(25);
        if cfg!(feature = "audit") {
            assert_eq!(e.rounds_audited(), 25);
        } else {
            assert_eq!(e.rounds_audited(), 0);
        }
    }

    #[test]
    fn determinism_self_check_passes_for_fixed_seed() {
        let metrics = Engine::determinism_self_check(|| engine_on(gen::cycle(10), 10, 42), 150)
            .expect("same (seed, config) must replay identically");
        assert_eq!(metrics.rounds, 150);
        assert!(metrics.connections > 0);
    }

    #[test]
    fn determinism_self_check_flags_divergence() {
        // A builder that varies the seed across calls is exactly the bug
        // the self-check exists to catch.
        let mut seed = 0u64;
        let err = Engine::determinism_self_check(
            || {
                seed += 1;
                engine_on(gen::cycle(16), 16, seed)
            },
            100,
        )
        .expect_err("different seeds must diverge");
        assert!(err.contains("diverged"), "unhelpful divergence report: {err}");
    }

    #[test]
    fn connection_log_matches_metrics() {
        let mut e = engine_on(gen::clique(8), 8, 6);
        e.enable_connection_log();
        e.run_rounds(40);
        let log = e.connection_log();
        assert_eq!(log.len() as u64, e.metrics().connections);
        for &(round, u, v) in log {
            assert!((1..=40).contains(&round));
            assert_ne!(u, v);
            assert!(u < 8 && v < 8);
        }
        // Each node appears at most once per round (one connection each).
        let mut seen = std::collections::BTreeSet::new();
        for &(round, u, v) in log {
            assert!(seen.insert((round, u)), "node {u} in two connections in round {round}");
            assert!(seen.insert((round, v)), "node {v} in two connections in round {round}");
        }
    }

    #[test]
    fn permutation_acceptance_behaves_like_uniform() {
        // Same protocol + topology under both acceptance realizations:
        // both stabilize to the min UID (distributional equivalence is
        // checked statistically in the integration suite).
        let n = 12;
        let uids: Vec<u64> = (0..n as u64).map(|u| u + 500).collect();
        let build = |params| {
            let nodes: Vec<MinSpread> = uids
                .iter()
                .map(|&u| MinSpread { uid: u, best: u, always_propose_first: false })
                .collect();
            Engine::new(
                StaticTopology::new(gen::cycle(n)),
                params,
                ActivationSchedule::synchronized(n),
                nodes,
                13,
            )
        };
        let mut a = build(ModelParams::mobile(0));
        let mut b = build(ModelParams::mobile_with_permutation(0));
        assert_eq!(a.run_to_stabilization(1_000_000).winner, Some(500));
        assert_eq!(b.run_to_stabilization(1_000_000).winner, Some(500));
    }

    #[test]
    fn run_until_respects_budget() {
        let mut e = engine_on(gen::path(64), 64, 9);
        // Far too few rounds to stabilize a 64-path.
        let out = e.run_to_stabilization(3);
        assert_eq!(out.stabilized_round, None);
        assert_eq!(out.winner, None);
        assert_eq!(out.status, RunStatus::TimedOut);
        assert_eq!(e.round(), 3);
    }

    /// All nodes share one `best` value: converged before the first round.
    fn converged_engine(n: usize, seed: u64) -> Engine<MinSpread, StaticTopology> {
        let nodes =
            (0..n).map(|_| MinSpread { uid: 7, best: 7, always_propose_first: false }).collect();
        Engine::new(
            StaticTopology::new(gen::clique(n)),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            nodes,
            seed,
        )
    }

    #[test]
    fn run_until_checks_predicate_before_first_step() {
        let mut e = converged_engine(4, 1);
        let out = e.run_to_stabilization(1_000);
        assert_eq!(out.stabilized_round, Some(0), "pre-converged network stabilizes at round 0");
        assert_eq!(out.status, RunStatus::Stabilized);
        assert_eq!(out.winner, Some(7));
        assert_eq!(e.round(), 0, "no round may execute for a pre-converged network");
    }

    #[test]
    fn leaders_agree_on_empty_node_set_is_none() {
        let mut e: Engine<MinSpread, StaticTopology> = Engine::new(
            StaticTopology::new(mtm_graph::static_graph::from_edges(0, &[])),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(0),
            Vec::new(),
            1,
        );
        assert_eq!(e.leaders_agree(), None);
        // And the run helpers survive stepping an empty network.
        let out = e.run_to_stabilization(5);
        assert_eq!(out.stabilized_round, None);
        assert_eq!(out.status, RunStatus::TimedOut);
    }

    #[test]
    fn rounds_after_activation_window_semantics() {
        // Inclusive window [last_activation, stabilized_round]: waking
        // round charged, pre-stabilized runs score the empty window.
        assert_eq!(rounds_after_activation(50, 50), 1);
        assert_eq!(rounds_after_activation(55, 50), 6);
        assert_eq!(rounds_after_activation(49, 50), 0);
        assert_eq!(rounds_after_activation(10, 1), 10);
    }

    #[test]
    fn rounds_after_activation_matches_hand_computed_schedule() {
        let sched = ActivationSchedule::explicit(vec![1, 20, 5]);
        let last = sched.last_activation();
        assert_eq!(last, 20);
        // Stabilizing in the round the last node wakes: window {20}, len 1.
        assert_eq!(rounds_after_activation(20, last), 1);
        // Rounds 20..=26 inclusive: 7 rounds.
        assert_eq!(rounds_after_activation(26, last), 7);
        // Converged before node 1 ever woke: nothing to charge.
        assert_eq!(rounds_after_activation(19, last), 0);
    }

    #[test]
    fn stuck_detector_fires_on_frozen_state() {
        let mut e = converged_engine(8, 3);
        e.enable_stuck_detection(10);
        // Predicate never holds, so only the detector can end this early.
        let out = e.run_until(100_000, |_| false);
        assert_eq!(out, None);
        let rep = e.stuck_report().expect("frozen network must be detected");
        assert_eq!(rep.window, 10);
        assert_eq!(rep.fixed_since, 1);
        assert_eq!(rep.detected_round, 11);
        assert_eq!(e.round(), 11, "detection must end the run in O(window) rounds");
    }

    #[test]
    fn stuck_detection_is_deterministic() {
        let run = || {
            let mut e = converged_engine(8, 3);
            e.enable_stuck_detection(10);
            e.run_until(100_000, |_| false);
            e.stuck_report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stuck_detector_stays_quiet_while_progressing() {
        let mut e = engine_on(gen::cycle(12), 12, 7);
        e.enable_stuck_detection(50_000);
        let out = e.run_to_stabilization(100_000);
        assert_eq!(out.status, RunStatus::Stabilized);
        assert_eq!(out.winner, Some(100));
    }

    #[test]
    fn topology_change_windows_reset_stuck_detector() {
        // Frozen protocol state, but the topology may change every 4
        // rounds: a 6-round still window never elapses, so the detector
        // must stay silent even though nothing is progressing.
        let n = 8;
        let nodes: Vec<MinSpread> =
            (0..n).map(|_| MinSpread { uid: 7, best: 7, always_propose_first: false }).collect();
        let mut e = Engine::new(
            mtm_graph::dynamic::RelabelingAdversary::new(gen::cycle(n), 4, 5),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            nodes,
            2,
        );
        e.enable_stuck_detection(6);
        e.run_until(200, |_| false);
        assert_eq!(e.stuck_report(), None);
        assert_eq!(e.round(), 200);
    }

    #[test]
    fn pending_activations_hold_stuck_detector_back() {
        // Wave 2 wakes at round 40; nodes 0,1 freeze long before that.
        // The detector may only start counting once everyone is awake.
        let n = 4;
        let mut e = Engine::new(
            StaticTopology::new(gen::clique(n)),
            ModelParams::mobile(0),
            ActivationSchedule::two_wave(n, 2, 40),
            nodes(n),
            2,
        );
        e.enable_stuck_detection(5);
        let out = e.run_to_stabilization(10_000);
        assert_eq!(out.status, RunStatus::Stabilized, "wave 2 must still get to join");
        assert_eq!(out.winner, Some(100));
        assert!(out.stabilized_round.expect("stabilized") >= 40);
    }

    #[test]
    fn proposal_loss_one_drops_everything() {
        let mut e = engine_on(gen::clique(8), 8, 3);
        e.set_proposal_loss(1.0);
        e.run_rounds(30);
        let m = e.metrics();
        assert!(m.proposals > 0);
        assert_eq!(m.dropped_proposals, m.proposals);
        assert_eq!(m.connections, 0);
        assert_eq!(m.rejected_proposals, 0);
    }

    #[test]
    fn proposal_loss_conserves_and_replays() {
        let build = || {
            let mut e = engine_on(gen::clique(10), 10, 7);
            e.set_proposal_loss(0.3);
            e
        };
        let mut e = build();
        e.run_rounds(200);
        let m = e.metrics();
        assert!(m.dropped_proposals > 0, "p=0.3 over 200 rounds must drop something");
        assert!(m.connections > 0, "p=0.3 must let most proposals through");
        assert_eq!(m.proposals, m.connections + m.rejected_proposals + m.dropped_proposals);
        let mut e2 = build();
        e2.run_rounds(200);
        assert_eq!(e2.metrics(), m, "lossy runs must replay identically for one seed");
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn proposal_loss_rejects_bad_probability() {
        engine_on(gen::clique(4), 4, 1).set_proposal_loss(1.5);
    }
}
