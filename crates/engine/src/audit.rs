//! Model-conformance audit mode.
//!
//! With the default-on `audit` cargo feature, every round the engine
//! executes is checked against the mobile telephone model's contract
//! (Section III of the paper), and any breach panics with a structured
//! [`Violation`] carrying the round and node where it happened:
//!
//! - every advertised [`Tag`] fits the model's `b` bits,
//! - every exchanged payload stays within the budget of
//!   `max_payload_uids` UIDs plus `max_payload_bits` extra bits,
//! - a node only proposes to neighbors it actually saw in its scan,
//! - under [`ConnectionPolicy::SingleUniform`] the accepted proposals
//!   form a matching: no node participates in two connections per round.
//!
//! Building with `--no-default-features` strips the audit for maximum
//! throughput; the engine then falls back to the original spot asserts
//! (tag width, proposal visibility) and debug-only payload checks.
//!
//! The module also hosts [`determinism_self_check`], the executable form
//! of the repo's determinism contract: run the same `(seed, config)`
//! twice and demand identical [`Metrics`] and [`RoundTrace`] streams.
//!
//! [`ConnectionPolicy::SingleUniform`]: crate::model::ConnectionPolicy::SingleUniform

use std::fmt;

use mtm_graph::{DynamicTopology, NodeId};

use crate::engine::Engine;
use crate::metrics::{Metrics, RoundTrace};
use crate::model::Tag;
use crate::protocol::Protocol;

/// A breach of the mobile telephone model contract, with enough context
/// (round, node, offending values) to replay the failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A node advertised a tag wider than the model's `b` bits.
    TagBudget { round: u64, node: usize, tag: Tag, tag_bits: u32 },
    /// A payload exceeded the per-connection budget.
    PayloadBudget {
        round: u64,
        node: usize,
        uid_count: u32,
        max_uids: u32,
        extra_bits: u32,
        max_bits: u32,
    },
    /// A node proposed to a neighbor that was not in its scan result
    /// (inactive, or not adjacent this round).
    ProposalNotVisible { round: u64, node: usize, target: NodeId },
    /// Under the single-accept policy a node ended up in two accepted
    /// connections in one round — the accepted set must be a matching.
    NotAMatching { round: u64, node: NodeId },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            // Wording kept compatible with the engine's historical assert
            // (tests match on "exceeding b").
            Violation::TagBudget { round, node, tag, tag_bits } => write!(
                f,
                "round {round}: node {node} advertised tag {tag:?} exceeding b = {tag_bits} bits"
            ),
            Violation::PayloadBudget { round, node, uid_count, max_uids, extra_bits, max_bits } => {
                write!(
                    f,
                    "round {round}: node {node} payload exceeds model budget: \
                     {uid_count} UIDs (max {max_uids}), {extra_bits} extra bits (max {max_bits})"
                )
            }
            Violation::ProposalNotVisible { round, node, target } => {
                write!(f, "round {round}: node {node} proposed to {target}, not a visible neighbor")
            }
            Violation::NotAMatching { round, node } => write!(
                f,
                "round {round}: node {node} participates in two accepted connections \
                 (SingleUniform must form a matching)"
            ),
        }
    }
}

/// Per-round conformance checker. Owned by the engine when the `audit`
/// feature is on; all scratch space is reused so steady-state auditing
/// allocates nothing.
#[derive(Debug, Default)]
pub struct Auditor {
    endpoints: Vec<NodeId>,
    rounds_audited: u64,
}

impl Auditor {
    /// Rounds fully audited so far.
    pub fn rounds_audited(&self) -> u64 {
        self.rounds_audited
    }

    /// Check an advertised tag against the model's `b` bits.
    #[inline]
    pub fn check_tag(&self, round: u64, node: usize, tag: Tag, tag_bits: u32) {
        if !tag.fits(tag_bits) {
            fail(Violation::TagBudget { round, node, tag, tag_bits });
        }
    }

    /// Check a payload against the per-connection budget.
    #[inline]
    pub fn check_payload(
        &self,
        round: u64,
        node: usize,
        uid_count: u32,
        max_uids: u32,
        extra_bits: u32,
        max_bits: u32,
    ) {
        if uid_count > max_uids || extra_bits > max_bits {
            fail(Violation::PayloadBudget {
                round,
                node,
                uid_count,
                max_uids,
                extra_bits,
                max_bits,
            });
        }
    }

    /// Check that a proposal targets a node present in the proposer's scan.
    /// `visible` is the scan's (sorted) neighbor list.
    #[inline]
    pub fn check_proposal(&self, round: u64, node: usize, target: NodeId, visible: &[NodeId]) {
        if visible.binary_search(&target).is_err() {
            fail(Violation::ProposalNotVisible { round, node, target });
        }
    }

    /// Check that the accepted set forms a matching (each node in at most
    /// one accepted connection), then count the round as audited.
    pub fn check_matching(&mut self, round: u64, accepted: &[(NodeId, NodeId)]) {
        self.endpoints.clear();
        for &(u, v) in accepted {
            self.endpoints.push(u);
            self.endpoints.push(v);
        }
        self.endpoints.sort_unstable();
        if let Some(w) = self.endpoints.windows(2).find(|w| w[0] == w[1]) {
            fail(Violation::NotAMatching { round, node: w[0] });
        }
        self.rounds_audited += 1;
    }
}

fn fail(v: Violation) -> ! {
    panic!("model conformance violation: {v}")
}

/// Run the same construction twice for `rounds` rounds and demand that
/// both executions produce identical [`Metrics`], identical per-round
/// [`RoundTrace`] streams, and (when the protocol supports fingerprinting)
/// identical final network state digests — the executable form of the
/// determinism contract (an execution is a pure function of
/// `(seed, config)`).
///
/// Returns the (common) metrics on success, and a description of the
/// first divergence on failure. `build` must construct a fresh engine
/// from the same inputs on every call.
pub fn determinism_self_check<P, T, F>(mut build: F, rounds: u64) -> Result<Metrics, String>
where
    P: Protocol,
    T: DynamicTopology,
    F: FnMut() -> Engine<P, T>,
{
    let mut run = || {
        let mut e = build();
        e.enable_tracing();
        e.run_rounds(rounds);
        (e.metrics(), e.traces().to_vec(), e.network_fingerprint())
    };
    let (m1, t1, f1): (Metrics, Vec<RoundTrace>, Option<u64>) = run();
    let (m2, t2, f2) = run();
    for (a, b) in t1.iter().zip(t2.iter()) {
        if a != b {
            return Err(format!("round {} trace diverged: {a:?} vs {b:?}", a.round));
        }
    }
    if t1.len() != t2.len() {
        return Err(format!("trace lengths diverged: {} vs {}", t1.len(), t2.len()));
    }
    if m1 != m2 {
        return Err(format!("metrics diverged: {m1:?} vs {m2:?}"));
    }
    if f1 != f2 {
        return Err(format!("final network state fingerprints diverged: {f1:?} vs {f2:?}"));
    }
    Ok(m1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_within_budget_passes() {
        let a = Auditor::default();
        a.check_tag(1, 0, Tag(3), 2);
        a.check_tag(1, 0, Tag::EMPTY, 0);
    }

    #[test]
    #[should_panic(expected = "exceeding b")]
    fn oversized_tag_caught() {
        Auditor::default().check_tag(7, 3, Tag(4), 2);
    }

    #[test]
    #[should_panic(expected = "payload exceeds model budget")]
    fn over_budget_payload_caught() {
        Auditor::default().check_payload(2, 5, 3, 2, 0, 256);
    }

    #[test]
    #[should_panic(expected = "payload exceeds model budget")]
    fn over_budget_extra_bits_caught() {
        Auditor::default().check_payload(2, 5, 1, 2, 300, 256);
    }

    #[test]
    #[should_panic(expected = "not a visible neighbor")]
    fn invisible_proposal_caught() {
        Auditor::default().check_proposal(4, 1, 9, &[2, 3, 5]);
    }

    #[test]
    fn matching_accepts_disjoint_pairs() {
        let mut a = Auditor::default();
        a.check_matching(1, &[(0, 1), (2, 3), (4, 5)]);
        a.check_matching(2, &[]);
        assert_eq!(a.rounds_audited(), 2);
    }

    #[test]
    #[should_panic(expected = "two accepted connections")]
    fn double_acceptance_caught() {
        Auditor::default().check_matching(3, &[(0, 1), (2, 1)]);
    }

    #[test]
    fn violation_display_carries_context() {
        let v = Violation::TagBudget { round: 12, node: 4, tag: Tag(8), tag_bits: 3 };
        let s = v.to_string();
        assert!(s.contains("round 12") && s.contains("node 4") && s.contains("b = 3"));
    }
}
