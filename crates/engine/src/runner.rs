//! Parallel trial fan-out.
//!
//! A single execution of the model is inherently sequential (synchronous
//! rounds), but experiments repeat each configuration across many seeds.
//! [`run_trials`] spreads those independent trials across a scoped thread
//! pool, with results returned in trial order regardless of scheduling —
//! determinism is preserved because each trial derives its own seed from
//! `(base_seed, trial_index)`.

use mtm_graph::rng::derive_seed;

/// Run `trials` independent executions of `f` in parallel and return the
/// results in trial order.
///
/// `f(trial_index, trial_seed)` must be a pure function of its arguments
/// (all simulation state derives from the seed). `threads = 0` selects the
/// available parallelism.
pub fn run_trials<R, F>(trials: usize, base_seed: u64, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, u64) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(trials.max(1));

    if threads <= 1 || trials <= 1 {
        return (0..trials).map(|t| f(t, derive_seed(base_seed, t as u64))).collect();
    }

    // Workers claim trial indices from a shared counter and send each
    // result tagged with its index; the parent thread owns the result
    // vector outright, so completed trials never contend on a lock. A
    // worker panic tears down the scope (scoped threads propagate panics
    // on join), which is the loud failure we want.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..trials).map(|_| None).collect();
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    let (next, f) = (&next, &f);

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= trials {
                        break;
                    }
                    let r = f(t, derive_seed(base_seed, t as u64));
                    if tx.send((t, r)).is_err() {
                        break; // receiver gone: another worker panicked
                    }
                })
            })
            .collect();
        drop(tx); // senders now live only in the workers
        for (t, r) in rx {
            debug_assert!(results[t].is_none(), "trial {t} claimed twice");
            results[t] = Some(r);
        }
        // Explicit joins so a worker panic resurfaces with its original
        // payload instead of the scope's generic message.
        for w in workers {
            if let Err(payload) = w.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    results.into_iter().map(|r| r.expect("every trial index is claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(16, 42, 4, |t, _seed| t * 10);
        assert_eq!(out, (0..16).map(|t| t * 10).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = run_trials(8, 7, 3, |_t, seed| seed);
        let b = run_trials(8, 7, 1, |_t, seed| seed);
        assert_eq!(a, b, "seed assignment must not depend on thread count");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
    }

    #[test]
    fn zero_trials() {
        let out: Vec<u64> = run_trials(0, 1, 4, |_t, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_trials(5, 9, 1, |t, _| t);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_trials(8, 1, 4, |t, _seed| {
                if t == 5 {
                    panic!("trial 5 exploded");
                }
                t
            })
        })
        .expect_err("a panicking trial must fail the whole fan-out");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| caught.downcast_ref::<String>().map(String::as_str))
            .expect("panic payload should be a string");
        // The scope join repanics with the worker's payload, not a poisoned
        // lock message.
        assert!(msg.contains("trial 5 exploded"), "unexpected panic payload: {msg}");
    }

    #[test]
    fn heavy_parallel_fanout_keeps_order() {
        // More trials than threads with uneven per-trial work: results must
        // still land in trial order.
        let out = run_trials(64, 3, 8, |t, seed| {
            let mut acc = seed;
            for _ in 0..(t % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(t as u64);
            }
            (t, acc)
        });
        for (i, &(t, _)) in out.iter().enumerate() {
            assert_eq!(i, t);
        }
    }
}
