//! Parallel trial fan-out.
//!
//! A single execution of the model is inherently sequential (synchronous
//! rounds), but experiments repeat each configuration across many seeds.
//! [`run_trials`] spreads those independent trials across a scoped thread
//! pool, with results returned in trial order regardless of scheduling —
//! determinism is preserved because each trial derives its own seed from
//! `(base_seed, trial_index)`.

use mtm_graph::rng::derive_seed;

/// Run `trials` independent executions of `f` in parallel and return the
/// results in trial order.
///
/// `f(trial_index, trial_seed)` must be a pure function of its arguments
/// (all simulation state derives from the seed). `threads = 0` selects the
/// available parallelism.
pub fn run_trials<R, F>(trials: usize, base_seed: u64, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, u64) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(trials.max(1));

    if threads <= 1 || trials <= 1 {
        return (0..trials).map(|t| f(t, derive_seed(base_seed, t as u64))).collect();
    }

    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..trials).map(|_| None).collect();
    let results_ptr = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if t >= trials {
                    break;
                }
                let r = f(t, derive_seed(base_seed, t as u64));
                let mut guard = results_ptr.lock().expect("a trial worker panicked");
                guard[t] = Some(r);
            });
        }
    });

    results.into_iter().map(|r| r.expect("every trial index is claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(16, 42, 4, |t, _seed| t * 10);
        assert_eq!(out, (0..16).map(|t| t * 10).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = run_trials(8, 7, 3, |_t, seed| seed);
        let b = run_trials(8, 7, 1, |_t, seed| seed);
        assert_eq!(a, b, "seed assignment must not depend on thread count");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
    }

    #[test]
    fn zero_trials() {
        let out: Vec<u64> = run_trials(0, 1, 4, |_t, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_trials(5, 9, 1, |t, _| t);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }
}
