//! Slice sampling: shuffle and choose.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        // Durstenfeld's variant: swap position i with a uniform j ≤ i,
        // walking down from the end.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_moves_things() {
        let mut rng = SmallRng::seed_from_u64(2);
        let original: Vec<u32> = (0..50).collect();
        let mut v = original.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "a 50-element shuffle staying sorted is ~impossible");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(3);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v = [10u32, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).expect("nonempty");
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_element_shuffle_is_identity() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v = [7u8];
        v.shuffle(&mut rng);
        assert_eq!(v, [7]);
    }
}
