//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate reimplements exactly the deterministic subset of the `rand`
//! 0.8 API that the workspace uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same algorithm `rand` 0.8 uses
//!   for `SmallRng` on 64-bit targets), seeded via SplitMix64 in
//!   [`SeedableRng::seed_from_u64`].
//! * [`Rng`] — `gen`, `gen_range` (integer and float ranges), `gen_bool`.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and uniform `choose`.
//!
//! Everything here is a pure function of the seed: there is deliberately no
//! `thread_rng`, no `from_entropy`, and no `rand::random` — the workspace's
//! determinism lint (`mtm-lint`) forbids them, and omitting them entirely
//! makes the nondeterministic paths unlinkable rather than merely flagged.

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::{SampleRange, SampleUniform, StandardSample};

/// The raw RNG interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it with SplitMix64 —
    /// byte-compatible with `rand_core` 0.6's default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 constants, as in Vigna's reference implementation.
        const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(GOLDEN);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (full-range integers, `[0, 1)` floats, fair-coin bools).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, matching `rand` 0.8.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        // Compare in fixed point to make p = 1.0 always true and p = 0.0
        // always false regardless of float rounding.
        if p >= 1.0 {
            return true;
        }
        let threshold = (p * (1u64 << 63) as f64 * 2.0) as u64;
        self.next_u64() < threshold
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn float_standard_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
