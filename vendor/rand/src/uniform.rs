//! Standard and range-uniform sampling for the primitive types the
//! workspace draws.

// The widening `$t as u64` casts below are macro-generated for every
// integer width; they are only "trivial" for the u64 instantiation.
#![allow(trivial_numeric_casts)]

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize);

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> i128 {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the `rand` 0.8
    /// `Standard` construction).
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform distribution over sub-ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high]` (both ends inclusive).
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform in `[0, span)` with rejection to remove modulo bias.
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject the low `threshold` values so the remaining mass is an exact
    // multiple of `span`.
    let threshold = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        if v >= threshold {
            return v % span;
        }
    }
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: $t, high: $t) -> $t {
                debug_assert!(low <= high);
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty => $ut:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: $t, high: $t) -> $t {
                debug_assert!(low <= high);
                // Shift into unsigned space so the span arithmetic is exact.
                let ulow = (low as $ut).wrapping_sub(<$t>::MIN as $ut);
                let uhigh = (high as $ut).wrapping_sub(<$t>::MIN as $ut);
                let picked = <$ut>::sample_inclusive(rng, ulow, uhigh);
                picked.wrapping_add(<$t>::MIN as $ut) as $t
            }
        }
    )*};
}
uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: f64, high: f64) -> f64 {
        low + (high - low) * f64::sample_standard(rng)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: f32, high: f32) -> f32 {
        low + (high - low) * f32::sample_standard(rng)
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on empty ranges.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy + SpanStep> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_inclusive(rng, self.start, T::step_down(self.end))
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range called with empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Decrement to the previous representable value — turns a half-open
/// integer bound into an inclusive one. For floats the half-open range is
/// sampled directly, so `step_down` is the identity.
pub trait SpanStep {
    /// The greatest value strictly below `x` (integers); identity for floats.
    fn step_down(x: Self) -> Self;
}

macro_rules! span_step_int {
    ($($t:ty),*) => {$(
        impl SpanStep for $t {
            #[inline]
            fn step_down(x: $t) -> $t {
                x - 1
            }
        }
    )*};
}
span_step_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SpanStep for f64 {
    #[inline]
    fn step_down(x: f64) -> f64 {
        x
    }
}

impl SpanStep for f32 {
    #[inline]
    fn step_down(x: f32) -> f32 {
        x
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5u64);
            assert_eq!(y, 5);
            let z = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "coverage: {seen:?}");
    }

    #[test]
    fn gen_range_float() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn unbiased_small_span() {
        // Chi-squared-ish sanity: each of 3 buckets gets ~1/3 of draws.
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts: {counts:?}");
        }
    }
}
