//! Seedable small-state generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the algorithm behind `rand` 0.8's `SmallRng` on 64-bit
/// platforms. Fast, 256-bit state, passes BigCrush; not cryptographic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline(always)]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is the one fixed point of xoshiro; escape it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 0xBB67_AE85_84CA_A73B, 1];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_xoshiro256pp_reference() {
        // Reference vector: state {1, 2, 3, 4} produces these first outputs
        // (from the xoshiro reference implementation).
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 4] = [41943041, 58720359, 3588806011781223, 3591011842654386];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }
}
