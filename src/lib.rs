//! # mobile-telephone
//!
//! A complete implementation and empirical reproduction of
//! **"Leader Election in a Smartphone Peer-to-Peer Network"**
//! (Calvin Newport, IPDPS 2017).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — topology substrate: CSR graphs, generators (including the
//!   §VI line-of-stars lower-bound construction), vertex expansion,
//!   maximum matchings over cuts, dynamic `τ`-stable topologies.
//! * [`engine`] — the mobile telephone model round executor (plus the
//!   classical-model baseline policy), activation schedules, deterministic
//!   parallel trial fan-out.
//! * [`core`] — the paper's algorithms: blind gossip (`b = 0`), bit
//!   convergence (`b = 1`), non-synchronized bit convergence
//!   (`b = log log n + O(1)`), and the PUSH-PULL / PPUSH rumor-spreading
//!   strategies.
//! * [`analysis`] — summary statistics, log–log fitting, table rendering.
//! * [`experiments`] — the harness that regenerates every quantitative
//!   claim of the paper (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! ## Quickstart
//!
//! ```
//! use mobile_telephone::prelude::*;
//!
//! // A 64-node random 8-regular expander.
//! let graph = GraphFamily::Expander8.build(64, 7);
//! let n = graph.node_count();
//!
//! // Blind gossip leader election (b = 0) on the static topology.
//! let uids = UidPool::random(n, 1);
//! let mut engine = Engine::new(
//!     StaticTopology::new(graph),
//!     ModelParams::mobile(0),
//!     ActivationSchedule::synchronized(n),
//!     BlindGossip::spawn(&uids),
//!     42, // trial seed: the run is fully deterministic
//! );
//! let outcome = engine.run_to_stabilization(1_000_000);
//! assert_eq!(outcome.winner, Some(uids.min_uid()));
//! ```

pub use mtm_analysis as analysis;
pub use mtm_apps as apps;
pub use mtm_core as core;
pub use mtm_engine as engine;
pub use mtm_experiments as experiments;
pub use mtm_graph as graph;

/// The types most programs need, in one import.
pub mod prelude {
    pub use mtm_apps::{EventOrdering, LeaderConsensus, MinGossip, SizeEstimator};
    pub use mtm_core::{
        BitConvergence, BlindGossip, Heartbeat, IdPair, MaintainedGossip, MaintenanceConfig,
        NonSyncBitConvergence, Ppush, PullOnly, PushOnly, PushPull, TagConfig, UidPool,
    };
    pub use mtm_engine::{
        rounds_after_activation, ActivationSchedule, ConnectionPolicy, Engine, EpochRecord,
        EpochView, EventEngine, EventOutcome, EventRecord, ExecutorSet, LatencyModel, LeaderView,
        ModelParams, Protocol, RoundExecuter, RumorView, RunOutcome, RunStatus, Scan,
        ServiceConfig, ServiceMetrics, ServiceOutcome, ServiceStatus, StuckReport, Tag,
    };
    pub use mtm_graph::adversary::{CyclingTopologies, IsolatingAdversary};
    pub use mtm_graph::dynamic::{
        EdgeSwapAdversary, JoinSchedule, LineOfStarsShuffle, RelabelingAdversary, StaticTopology,
        WaypointMobility,
    };
    pub use mtm_graph::faults::{FaultConfig, FaultyTopology, ScheduledCrashes};
    pub use mtm_graph::{gen, DynamicTopology, Graph, GraphBuilder, GraphFamily, NodeId};
}
