//! Cross-crate integration tests: every leader election algorithm elects
//! the correct winner on every topology family, and stabilization is
//! permanent (Section IV's definition demands the leader never change
//! again — we verify by running extra rounds past first agreement).

use mobile_telephone::prelude::*;

/// Families small instances of which are cheap enough for debug-mode CI.
const FAMILIES: [GraphFamily; 8] = [
    GraphFamily::Clique,
    GraphFamily::Path,
    GraphFamily::Cycle,
    GraphFamily::Star,
    GraphFamily::LineOfStars,
    GraphFamily::Expander3,
    GraphFamily::Hypercube,
    GraphFamily::BinaryTree,
];

const N: usize = 16;
const MAX_ROUNDS: u64 = 20_000_000;

#[test]
fn blind_gossip_elects_min_uid_everywhere() {
    for family in FAMILIES {
        let g = family.build(N, 5);
        let n = g.node_count();
        let uids = UidPool::random(n, 1);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(0),
            ActivationSchedule::synchronized(n),
            BlindGossip::spawn(&uids),
            7,
        );
        let out = e.run_to_stabilization(MAX_ROUNDS);
        assert_eq!(out.winner, Some(uids.min_uid()), "{family}: wrong winner");
        // Permanence: agreement must survive further execution.
        e.run_rounds(500);
        assert_eq!(e.leaders_agree(), Some(uids.min_uid()), "{family}: leader changed");
    }
}

#[test]
fn bit_convergence_elects_min_pair_everywhere() {
    for family in FAMILIES {
        let g = family.build(N, 6);
        let n = g.node_count();
        let delta = g.max_degree();
        let uids = UidPool::random(n, 2);
        let config = TagConfig::for_network(n, delta);
        let nodes = BitConvergence::spawn(&uids, config, 3);
        let expect = nodes.iter().map(|p| p.active_pair()).min().unwrap().uid;
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            nodes,
            8,
        );
        let out = e.run_to_stabilization(MAX_ROUNDS);
        assert_eq!(out.winner, Some(expect), "{family}: wrong winner");
        e.run_rounds(2 * config.phase_len() + 10);
        assert_eq!(e.leaders_agree(), Some(expect), "{family}: leader changed");
    }
}

#[test]
fn nonsync_elects_min_pair_with_staggered_starts() {
    for family in [GraphFamily::Clique, GraphFamily::Expander3, GraphFamily::Star] {
        let g = family.build(N, 7);
        let n = g.node_count();
        let delta = g.max_degree();
        let uids = UidPool::random(n, 3);
        let config = TagConfig::for_network(n, delta);
        let nodes = NonSyncBitConvergence::spawn(&uids, config, 4);
        let expect = nodes.iter().map(|p| p.best_pair()).min().unwrap().uid;
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(config.nonsync_tag_bits()),
            ActivationSchedule::staggered_uniform(n, 60, 5),
            nodes,
            9,
        );
        let out = e.run_to_stabilization(MAX_ROUNDS);
        assert_eq!(out.winner, Some(expect), "{family}: wrong winner");
        assert!(out.rounds_after_activation.unwrap() <= out.stabilized_round.unwrap());
        e.run_rounds(500);
        assert_eq!(e.leaders_agree(), Some(expect), "{family}: leader changed");
    }
}

#[test]
fn all_three_algorithms_work_under_maximum_churn() {
    // τ = 1 relabeling: the topology is scrambled every round.
    let base = gen::line_of_stars(3, 3);
    let n = base.node_count();
    let uids = UidPool::random(n, 11);

    let mut blind = Engine::new(
        RelabelingAdversary::new(base.clone(), 1, 21),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        BlindGossip::spawn(&uids),
        31,
    );
    assert_eq!(
        blind.run_to_stabilization(MAX_ROUNDS).winner,
        Some(uids.min_uid()),
        "blind gossip under churn"
    );

    let config = TagConfig::for_network(n, base.max_degree());
    let nodes = BitConvergence::spawn(&uids, config, 41);
    let expect = nodes.iter().map(|p| p.active_pair()).min().unwrap().uid;
    let mut bc = Engine::new(
        RelabelingAdversary::new(base.clone(), 1, 22),
        ModelParams::mobile(1),
        ActivationSchedule::synchronized(n),
        nodes,
        32,
    );
    assert_eq!(bc.run_to_stabilization(MAX_ROUNDS).winner, Some(expect), "bitconv under churn");

    let nodes = NonSyncBitConvergence::spawn(&uids, config, 42);
    let expect = nodes.iter().map(|p| p.best_pair()).min().unwrap().uid;
    let mut ns = Engine::new(
        RelabelingAdversary::new(base, 1, 23),
        ModelParams::mobile(config.nonsync_tag_bits()),
        ActivationSchedule::synchronized(n),
        nodes,
        33,
    );
    assert_eq!(ns.run_to_stabilization(MAX_ROUNDS).winner, Some(expect), "nonsync under churn");
}

#[test]
fn self_stabilization_after_component_join() {
    let left = gen::random_regular(10, 3, 1);
    let right = gen::random_regular(10, 3, 2);
    let join_round = 5_000;
    let topo = JoinSchedule::new(&left, &right, &[(0, 10)], join_round);
    let n = 20;
    let uids = UidPool::random(n, 12);
    let config = TagConfig::for_network(n, 4);
    let nodes = NonSyncBitConvergence::spawn(&uids, config, 13);
    let expect = nodes.iter().map(|p| p.best_pair()).min().unwrap().uid;
    let mut e = Engine::new(
        topo,
        ModelParams::mobile(config.nonsync_tag_bits()),
        ActivationSchedule::synchronized(n),
        nodes,
        14,
    );
    // Pre-join: components converge to (generically different) leaders.
    e.run_rounds(join_round - 1);
    let l = e.node(0).leader();
    let r = e.node(10).leader();
    assert!(e.nodes()[..10].iter().all(|p| p.leader() == l), "left not converged");
    assert!(e.nodes()[10..].iter().all(|p| p.leader() == r), "right not converged");
    // Post-join: one leader, the global minimum pair.
    let out = e.run_to_stabilization(MAX_ROUNDS);
    assert_eq!(out.winner, Some(expect));
    assert!(out.stabilized_round.unwrap() >= join_round);
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let g = GraphFamily::Expander3.build(16, 3);
        let n = g.node_count();
        let uids = UidPool::random(n, 4);
        let config = TagConfig::for_network(n, g.max_degree());
        let nodes = BitConvergence::spawn(&uids, config, 5);
        let mut e = Engine::new(
            StaticTopology::new(g),
            ModelParams::mobile(1),
            ActivationSchedule::synchronized(n),
            nodes,
            6,
        );
        let out = e.run_to_stabilization(MAX_ROUNDS);
        (out.stabilized_round, out.winner, out.metrics)
    };
    assert_eq!(run(), run(), "identical seeds must give identical executions");
}

#[test]
fn waypoint_mobility_supports_leader_election() {
    let n = 30;
    let topo = WaypointMobility::new(n, 0.3, 0.03, 5, 17);
    let uids = UidPool::random(n, 18);
    let mut e = Engine::new(
        topo,
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        BlindGossip::spawn(&uids),
        19,
    );
    let out = e.run_to_stabilization(MAX_ROUNDS);
    assert_eq!(out.winner, Some(uids.min_uid()));
}
