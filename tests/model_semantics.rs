//! Integration tests for model fidelity: the engine must enforce exactly
//! the mobile telephone model of Section III when driving real protocols.

use mobile_telephone::prelude::*;

#[test]
fn at_most_one_connection_per_node_per_round_mobile() {
    // n/2 is the hard cap on connections per round under single-accept.
    let g = gen::clique(12);
    let n = g.node_count();
    let uids = UidPool::random(n, 1);
    let mut e = Engine::new(
        StaticTopology::new(g),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        BlindGossip::spawn(&uids),
        2,
    );
    e.enable_tracing();
    e.run_rounds(200);
    for t in e.traces() {
        assert!(
            t.connections as usize <= n / 2,
            "round {}: {} connections on {n} nodes",
            t.round,
            t.connections
        );
    }
}

#[test]
fn classical_policy_can_exceed_mobile_cap() {
    // On a star, all leaves proposing to the hub connect simultaneously in
    // the classical model — impossible in the mobile model.
    let g = gen::star(32);
    let n = g.node_count();
    let run_max_conn = |params: ModelParams| {
        let mut e = Engine::new(
            StaticTopology::new(g.clone()),
            params,
            ActivationSchedule::synchronized(n),
            PushPull::spawn(n, 1),
            3,
        );
        e.enable_tracing();
        e.run_rounds(60);
        e.traces().iter().map(|t| t.connections).max().unwrap()
    };
    let classical = run_max_conn(ModelParams::classical());
    let mobile = run_max_conn(ModelParams::mobile(0));
    assert!(mobile <= 1, "every star connection involves the hub: mobile max {mobile}");
    assert!(classical > 3, "classical hub should batch-accept: max {classical}");
}

#[test]
fn proposal_accounting_balances() {
    let g = gen::random_regular(24, 4, 5);
    let n = g.node_count();
    let uids = UidPool::random(n, 6);
    let mut e = Engine::new(
        StaticTopology::new(g),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        BlindGossip::spawn(&uids),
        7,
    );
    e.run_rounds(500);
    let m = e.metrics();
    assert_eq!(m.proposals, m.connections + m.rejected_proposals);
    assert!(m.proposals > 0);
    assert!(m.proposal_success_rate() > 0.0 && m.proposal_success_rate() <= 1.0);
}

#[test]
fn inactive_nodes_never_participate() {
    // Node 3 activates very late; until then its state must be untouched
    // and no one may connect to it.
    let g = gen::clique(4);
    let uids = UidPool::sequential(4);
    let sched = ActivationSchedule::explicit(vec![1, 1, 1, 1_000]);
    let mut e = Engine::new(
        StaticTopology::new(g),
        ModelParams::mobile(0),
        sched,
        BlindGossip::spawn(&uids),
        8,
    );
    e.run_rounds(999);
    assert_eq!(e.node(3).leader(), 3, "inactive node state changed");
    // The other three converged among themselves long ago.
    assert_eq!(e.node(0).leader(), 0);
    assert_eq!(e.node(1).leader(), 0);
    assert_eq!(e.node(2).leader(), 0);
    let out = e.run_to_stabilization(1_000_000);
    assert_eq!(out.winner, Some(0));
}

#[test]
fn tau_stability_is_respected_end_to_end() {
    // Drive an engine over a τ = 7 adversary and check (via the adversary
    // itself) that graphs only change on epoch boundaries.
    struct Probe {
        inner: RelabelingAdversary,
        last: Option<(u64, usize)>, // (round, edge-hash)
    }
    impl DynamicTopology for Probe {
        fn node_count(&self) -> usize {
            self.inner.node_count()
        }
        fn tau(&self) -> Option<u64> {
            self.inner.tau()
        }
        fn graph_at(&mut self, round: u64) -> &Graph {
            let g = self.inner.graph_at(round);
            let hash: usize = g.edges().map(|(u, v)| (u as usize) * 31 + v as usize).sum();
            if let Some((last_round, last_hash)) = self.last {
                if hash != last_hash {
                    // A change: the previous epoch must have lasted ≥ τ.
                    assert_eq!(
                        (round - 1) % 7,
                        0,
                        "topology changed at round {round}, not an epoch boundary (prev {last_round})"
                    );
                }
            }
            self.last = Some((round, hash));
            g
        }
    }
    let base = gen::cycle(16);
    let probe = Probe { inner: RelabelingAdversary::new(base, 7, 9), last: None };
    let uids = UidPool::random(16, 10);
    let mut e = Engine::new(
        probe,
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(16),
        BlindGossip::spawn(&uids),
        11,
    );
    e.run_rounds(100);
}

#[test]
fn payload_budget_is_modeled() {
    use mobile_telephone::engine::PayloadCost;
    // The bit-convergence payload is one UID + the k-bit tag.
    let pair = IdPair { tag: 0x3FF, uid: 42 };
    assert_eq!(pair.uid_count(), 1);
    assert!(pair.extra_bits() <= 256, "ID pair must fit the default payload budget");
}

#[test]
fn rumor_spreading_monotone_informed_count() {
    let g = gen::line_of_stars(4, 4);
    let n = g.node_count();
    let mut e = Engine::new(
        StaticTopology::new(g),
        ModelParams::mobile(1),
        ActivationSchedule::synchronized(n),
        Ppush::spawn(n, 1),
        12,
    );
    let mut last = e.informed_count();
    assert_eq!(last, 1);
    for _ in 0..2_000 {
        e.step();
        let now = e.informed_count();
        assert!(now >= last, "informed count decreased: {last} -> {now}");
        last = now;
        if now == n {
            break;
        }
    }
    assert_eq!(last, n, "rumor failed to spread in 2000 rounds");
}

#[test]
fn selection_permutation_equivalent_to_uniform_choice() {
    // §VI specifies acceptance via a random neighbor permutation; the
    // engine's default picks a uniform incoming index. Both must induce
    // the uniform distribution over proposers. On a star, all leaves
    // propose to the hub every round; count how often each leaf wins.
    use mobile_telephone::engine::protocol::PayloadCost;

    struct AlwaysProposeHub {
        is_hub: bool,
        accepted_from: Vec<u64>,
        uid: u64,
    }
    #[derive(Clone)]
    struct From(u64);
    impl PayloadCost for From {
        fn uid_count(&self) -> u32 {
            1
        }
        fn extra_bits(&self) -> u32 {
            0
        }
    }
    impl Protocol for AlwaysProposeHub {
        type Payload = From;
        fn advertise(&mut self, _l: u64, _r: &mut rand::rngs::SmallRng) -> Tag {
            Tag::EMPTY
        }
        fn act(
            &mut self,
            scan: &Scan<'_>,
            _r: &mut rand::rngs::SmallRng,
        ) -> mobile_telephone::engine::Action {
            if self.is_hub || scan.is_empty() {
                mobile_telephone::engine::Action::Listen
            } else {
                mobile_telephone::engine::Action::Propose(scan.neighbors[0])
            }
        }
        fn payload(&self) -> From {
            From(self.uid)
        }
        fn on_connect(&mut self, peer: &From, _r: &mut rand::rngs::SmallRng) {
            if self.is_hub {
                self.accepted_from.push(peer.0);
            }
        }
    }

    let n = 9; // hub + 8 leaves
    let rounds = 8_000u64;
    let run = |params: ModelParams| -> Vec<u64> {
        let nodes: Vec<AlwaysProposeHub> = (0..n)
            .map(|u| AlwaysProposeHub { is_hub: u == 0, accepted_from: Vec::new(), uid: u as u64 })
            .collect();
        let mut e = Engine::new(
            StaticTopology::new(gen::star(n)),
            params,
            ActivationSchedule::synchronized(n),
            nodes,
            77,
        );
        e.run_rounds(rounds);
        let mut counts = vec![0u64; n];
        for &from in &e.node(0).accepted_from {
            counts[from as usize] += 1;
        }
        counts
    };

    let uniform = run(ModelParams::mobile(0));
    let permuted = run(ModelParams::mobile_with_permutation(0));
    let expected = rounds as f64 / 8.0;
    for leaf in 1..n {
        for (name, counts) in [("uniform", &uniform), ("permutation", &permuted)] {
            let c = counts[leaf] as f64;
            assert!(
                (c - expected).abs() < expected * 0.15,
                "{name}: leaf {leaf} accepted {c} times, expected ≈{expected}"
            );
        }
    }
}
