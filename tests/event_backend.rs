//! Event-backend determinism and correctness with the *real* protocol
//! stack (the unit tests in `crates/engine/src/event.rs` use a local toy
//! protocol; these pin the paper's algorithms).
//!
//! The determinism contract (DESIGN.md): every latency draw is a pure
//! counter-based function of the seed, ties resolve by `(time, node id,
//! sequence number)`, so the full event trace — not just the outcome — is
//! a function of `(graph, params, protocols, seed, latency model)`.

use mobile_telephone::graph::rng::derive_seed;
use mobile_telephone::prelude::*;

fn election_engine(n: usize, seed: u64, spread: u64) -> EventEngine<BlindGossip> {
    let g = GraphFamily::Expander8.build(n, derive_seed(seed, 0));
    let uids = UidPool::random(g.node_count(), derive_seed(seed, 1));
    EventEngine::new(
        g,
        ModelParams::mobile(0),
        BlindGossip::spawn(&uids),
        derive_seed(seed, 11),
        LatencyModel::multipeer(spread),
    )
}

#[test]
fn blind_gossip_elects_min_uid_without_a_round_clock() {
    let g = GraphFamily::Expander8.build(64, derive_seed(3, 0));
    let uids = UidPool::random(g.node_count(), derive_seed(3, 1));
    let mut e = EventEngine::new(
        g,
        ModelParams::mobile(0),
        BlindGossip::spawn(&uids),
        derive_seed(3, 11),
        LatencyModel::multipeer(8),
    );
    let out = e.run_to_stabilization(10_000_000);
    assert_eq!(out.winner, Some(uids.min_uid()), "asynchrony must not change the winner");
    assert!(out.completed_at.is_some());
}

#[test]
fn same_seed_same_trace_across_protocols() {
    // Elections.
    let (mut a, mut b) = (election_engine(64, 5, 16), election_engine(64, 5, 16));
    a.enable_event_trace();
    b.enable_event_trace();
    let (ra, rb) = (a.run_to_stabilization(10_000_000), b.run_to_stabilization(10_000_000));
    assert_eq!(ra.completed_at, rb.completed_at);
    assert_eq!(ra.winner, rb.winner);
    assert_eq!(a.event_trace(), b.event_trace(), "election event traces must replay");
    assert!(!a.event_trace().is_empty());

    // Rumor spreading.
    let mk = || {
        let g = GraphFamily::Expander8.build(64, derive_seed(5, 0));
        let n = g.node_count();
        EventEngine::new(
            g,
            ModelParams::mobile(0),
            PushPull::spawn(n, 1),
            derive_seed(5, 11),
            LatencyModel::multipeer(16),
        )
    };
    let (mut c, mut d) = (mk(), mk());
    c.enable_event_trace();
    d.enable_event_trace();
    let (rc, rd) = (c.run_to_full_information(10_000_000), d.run_to_full_information(10_000_000));
    assert_eq!(rc.completed_at, rd.completed_at);
    assert_eq!(c.event_trace(), d.event_trace(), "rumor event traces must replay");
}

#[test]
fn latency_spread_changes_timing_but_not_the_winner() {
    let tight = election_engine(64, 9, 0).run_to_stabilization(10_000_000);
    let loose = election_engine(64, 9, 64).run_to_stabilization(10_000_000);
    assert!(tight.completed_at.is_some() && loose.completed_at.is_some());
    assert_eq!(tight.winner, loose.winner, "latency is a schedule, not an adversary on safety");
    assert_ne!(
        tight.completed_at, loose.completed_at,
        "spread 0 vs 64 should not land on the same tick"
    );
}

#[test]
fn bit_convergence_stabilizes_under_the_event_backend() {
    // b = 1 exercises tag advertisement through the async scan path. Note
    // what is *not* asserted: the synchronized variant's min-UID guarantee
    // rests on the global round clock aligning everyone's bit groups — the
    // very assumption the event backend removes (and the motivation for
    // the paper's non-synchronized variant). Under drifting local rounds
    // the network still converges to *a* single leader; which one depends
    // on how the groups happened to interleave.
    let g = GraphFamily::Expander8.build(32, derive_seed(2, 0));
    let n = g.node_count();
    let uids = UidPool::random(n, derive_seed(2, 1));
    let config = TagConfig::for_network(n, g.max_degree());
    let mut e = EventEngine::new(
        g,
        ModelParams::mobile(1),
        BitConvergence::spawn(&uids, config, derive_seed(2, 7)),
        derive_seed(2, 11),
        LatencyModel::multipeer(8),
    );
    let out = e.run_to_stabilization(50_000_000);
    assert!(out.completed_at.is_some(), "bit convergence must still reach agreement");
    assert!(out.winner.is_some(), "stabilization means a single agreed leader");
    assert!(uids.as_slice().contains(&out.winner.expect("checked above")));
}
