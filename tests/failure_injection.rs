//! Failure-injection tests: the engine must reject protocol and topology
//! misbehaviour loudly rather than silently corrupting an execution.

use mobile_telephone::engine::protocol::PayloadCost;
use mobile_telephone::engine::Action;
use mobile_telephone::prelude::*;
use rand::rngs::SmallRng;

#[derive(Clone)]
struct Nothing;
impl PayloadCost for Nothing {
    fn uid_count(&self) -> u32 {
        0
    }
    fn extra_bits(&self) -> u32 {
        0
    }
}

/// A protocol whose behaviour is scripted per test.
struct Scripted {
    tag: Tag,
    action: fn(&Scan<'_>) -> Action,
}

impl Protocol for Scripted {
    type Payload = Nothing;
    fn advertise(&mut self, _l: u64, _r: &mut SmallRng) -> Tag {
        self.tag
    }
    fn act(&mut self, scan: &Scan<'_>, _r: &mut SmallRng) -> Action {
        (self.action)(scan)
    }
    fn payload(&self) -> Nothing {
        Nothing
    }
    fn on_connect(&mut self, _p: &Nothing, _r: &mut SmallRng) {}
}

fn scripted_engine(
    n: usize,
    tag_bits: u32,
    tag: Tag,
    action: fn(&Scan<'_>) -> Action,
) -> Engine<Scripted, StaticTopology> {
    let nodes = (0..n).map(|_| Scripted { tag, action }).collect();
    Engine::new(
        StaticTopology::new(gen::clique(n)),
        ModelParams::mobile(tag_bits),
        ActivationSchedule::synchronized(n),
        nodes,
        1,
    )
}

#[test]
#[should_panic(expected = "exceeding b")]
fn oversized_tag_rejected() {
    let mut e = scripted_engine(2, 1, Tag(2), |_| Action::Listen);
    e.step();
}

#[test]
#[should_panic(expected = "not a visible neighbor")]
fn proposal_to_non_neighbor_rejected() {
    // Node proposes to itself-adjacent id 99 which is not in the scan.
    let mut e = scripted_engine(3, 0, Tag::EMPTY, |_| Action::Propose(99));
    e.step();
}

#[test]
#[should_panic(expected = "not a visible neighbor")]
fn proposal_to_inactive_node_rejected() {
    // Node 1 is not yet active; proposing to it must panic even though it
    // is a topological neighbor.
    struct ProposeTo1;
    impl Protocol for ProposeTo1 {
        type Payload = Nothing;
        fn advertise(&mut self, _l: u64, _r: &mut SmallRng) -> Tag {
            Tag::EMPTY
        }
        fn act(&mut self, _s: &Scan<'_>, _r: &mut SmallRng) -> Action {
            Action::Propose(1)
        }
        fn payload(&self) -> Nothing {
            Nothing
        }
        fn on_connect(&mut self, _p: &Nothing, _r: &mut SmallRng) {}
    }
    let mut e = Engine::new(
        StaticTopology::new(gen::clique(3)),
        ModelParams::mobile(0),
        ActivationSchedule::explicit(vec![1, 100, 1]),
        vec![ProposeTo1, ProposeTo1, ProposeTo1],
        1,
    );
    e.step();
}

#[test]
#[should_panic(expected = "one protocol instance per topology node")]
fn node_count_mismatch_rejected() {
    let nodes: Vec<Scripted> =
        (0..2).map(|_| Scripted { tag: Tag::EMPTY, action: |_| Action::Listen }).collect();
    let _ = Engine::new(
        StaticTopology::new(gen::clique(3)),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(3),
        nodes,
        1,
    );
}

#[test]
#[should_panic(expected = "activation schedule must cover all nodes")]
fn schedule_length_mismatch_rejected() {
    let nodes: Vec<Scripted> =
        (0..3).map(|_| Scripted { tag: Tag::EMPTY, action: |_| Action::Listen }).collect();
    let _ = Engine::new(
        StaticTopology::new(gen::clique(3)),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(2),
        nodes,
        1,
    );
}

#[test]
#[should_panic(expected = "topology changed node count")]
fn topology_node_count_change_rejected() {
    struct Shrinking {
        big: Graph,
        small: Graph,
    }
    impl DynamicTopology for Shrinking {
        fn node_count(&self) -> usize {
            self.big.node_count()
        }
        fn tau(&self) -> Option<u64> {
            Some(1)
        }
        fn graph_at(&mut self, round: u64) -> &Graph {
            if round == 1 {
                &self.big
            } else {
                &self.small
            }
        }
    }
    let topo = Shrinking { big: gen::clique(4), small: gen::clique(3) };
    let nodes: Vec<Scripted> =
        (0..4).map(|_| Scripted { tag: Tag::EMPTY, action: |_| Action::Listen }).collect();
    let mut e =
        Engine::new(topo, ModelParams::mobile(0), ActivationSchedule::synchronized(4), nodes, 1);
    e.step();
    e.step();
}

#[test]
fn corrupt_graph_json_rejected() {
    // Hand-crafted CSR with an asymmetric edge must fail validation.
    let bad = r#"{"offsets":[0,1,1],"adjacency":[1]}"#;
    let err = mobile_telephone::graph::io::from_json(bad).unwrap_err();
    assert!(err.contains("asymmetric"), "unexpected error: {err}");
    // Self loop.
    let bad = r#"{"offsets":[0,1],"adjacency":[0]}"#;
    let err = mobile_telephone::graph::io::from_json(bad).unwrap_err();
    assert!(err.contains("self loop"), "unexpected error: {err}");
    // Offset overflow.
    let bad = r#"{"offsets":[0,9],"adjacency":[0]}"#;
    assert!(mobile_telephone::graph::io::from_json(bad).is_err());
}

#[test]
fn listen_only_network_makes_no_progress_but_does_not_hang() {
    // All nodes listen forever: zero proposals, zero connections, and the
    // run-until budget is respected.
    let mut e = scripted_engine(4, 0, Tag::EMPTY, |_| Action::Listen);
    let done = e.run_until(500, |_| false);
    assert_eq!(done, None);
    assert_eq!(e.metrics().proposals, 0);
    assert_eq!(e.metrics().connections, 0);
    assert_eq!(e.round(), 500);
}

#[test]
fn everyone_proposes_means_no_connections() {
    // If every node proposes (nobody listens) all proposals are lost — the
    // model's "a node that sends cannot receive" rule.
    let mut e = scripted_engine(6, 0, Tag::EMPTY, |scan| Action::Propose(scan.neighbors[0]));
    e.run_rounds(50);
    let m = e.metrics();
    assert_eq!(m.proposals, 300);
    assert_eq!(m.connections, 0);
    assert_eq!(m.rejected_proposals, 300);
}
