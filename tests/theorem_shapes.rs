//! Statistical shape checks: coarse, fixed-seed versions of the paper's
//! quantitative claims, with generous margins so they are deterministic and
//! debug-mode friendly. The full-resolution versions live in the
//! `mtm-experiments` harness binaries.

use mtm_experiments::{exp_f3, exp_f5, exp_f6, exp_t5, ExpOpts};

fn opts(trials: usize, seed: u64) -> ExpOpts {
    let mut o = ExpOpts::quick();
    o.trials = trials;
    o.seed = seed;
    o
}

#[test]
fn lemma_v1_never_violated() {
    // γ ≥ α/4 on 30 random graphs (T5).
    let min_ratio = exp_t5::min_lemma_ratio(&opts(30, 1), 10, 30);
    assert!(min_ratio >= 1.0 - 1e-9, "Lemma V.1 violated: min γ/(α/4) = {min_ratio}");
}

#[test]
fn f1_blind_gossip_grows_superlinearly_on_line_of_stars() {
    // The Ω(Δ²√n) ≈ n^1.5 lower bound forces a log-log slope well above 1.
    let slope = mtm_experiments::exp_f1::fitted_slope(&opts(3, 2));
    assert!(
        slope > 1.05,
        "blind gossip on line-of-stars should grow superlinearly (slope = {slope})"
    );
}

#[test]
fn f3_blind_to_bitconv_ratio_grows_with_n() {
    // At small n bit convergence pays a fixed phase overhead
    // (k·2·log Δ rounds per phase) and loses; the separation is
    // asymptotic. Measured crossover on the line of stars is near
    // n ≈ 200 (see EXPERIMENTS.md F3); here we assert the *shape*:
    // the blind/bitconv ratio grows markedly with n.
    let ratios = exp_f3::ratios(&opts(3, 3), &[4, 10]);
    assert!(ratios[1] > ratios[0] * 1.5, "the b=1 advantage should widen with n: {ratios:?}");
}

#[test]
fn f5_ppush_meets_matching_guarantee() {
    // 10th percentile of newly informed must clear m/f(r) for every r.
    let margins = exp_f5::guarantee_margin(&opts(15, 4), 32, 8);
    for (r_idx, (p10, target)) in margins.iter().enumerate() {
        assert!(
            p10 >= target,
            "Theorem V.2 guarantee missed at r = {}: p10 = {p10} < target = {target}",
            r_idx + 1
        );
    }
}

#[test]
fn f6_mobile_model_much_slower_than_classical_on_star() {
    let (classical, mobile) = exp_f6::model_gap(&opts(3, 5), 64);
    assert!(
        mobile > 4.0 * classical,
        "single-accept must throttle the star hub: classical = {classical}, mobile = {mobile}"
    );
}

#[test]
fn t4_nonsync_converges_within_polylog_factor_margin() {
    let (sync, nonsync) = mtm_experiments::exp_t4::sync_vs_nonsync(&opts(4, 6), 16);
    // Nonsync legitimately *beats* sync at these sizes (EXPERIMENTS.md T4:
    // measured slowdown 0.61 → 0.27 for n = 32…128) — staggered starts plus
    // immediate adoption outpace sync's fixed 145-round phase structure. Only
    // guard against degenerate instant stabilization below.
    assert!(nonsync >= sync * 0.1, "nonsync implausibly fast: sync = {sync}, nonsync = {nonsync}");
    // The analysis allows log³n; at n=16 that is 4³ = 64. Allow a wide
    // band — the claim tested is "polylog-sized slowdown, not polynomial".
    assert!(
        nonsync <= sync * 500.0,
        "nonsync slowdown looks super-polylog: sync = {sync}, nonsync = {nonsync}"
    );
}

#[test]
fn f4_rejoin_costs_same_order_as_fresh_start() {
    let (rejoin, fresh, conv) = mtm_experiments::exp_f4::rejoin_vs_fresh(&opts(2, 7), 10, 20_000);
    assert!(conv > 0.0, "halves should converge before the join");
    assert!(
        rejoin <= fresh * 20.0 + 2_000.0,
        "re-stabilization after a join should cost the same order as fresh: \
         rejoin = {rejoin}, fresh = {fresh}"
    );
}
