//! Integration tests for the application layer (`mtm-apps`): the
//! coordination primitives the paper's introduction motivates, composed
//! with actual leader election.

use mobile_telephone::apps::ordering::EventOrdering;
use mobile_telephone::prelude::*;

/// Full pipeline: elect a leader with bit convergence, then use that
/// leader as the sequencer for total-order event assignment.
#[test]
fn elect_then_order_pipeline() {
    let seed = 5;
    let g = gen::random_regular(16, 4, seed);
    let n = g.node_count();
    let uids = UidPool::random(n, seed);

    // Stage 1: leader election (b = 1).
    let config = TagConfig::for_network(n, g.max_degree());
    let nodes = BitConvergence::spawn(&uids, config, seed);
    let mut election = Engine::new(
        StaticTopology::new(g.clone()),
        ModelParams::mobile(1),
        ActivationSchedule::synchronized(n),
        nodes,
        seed,
    );
    let outcome = election.run_to_stabilization(10_000_000);
    let leader_uid = outcome.winner.expect("election must stabilize");
    let leader_index = uids.as_slice().iter().position(|&u| u == leader_uid).unwrap();

    // Stage 2: the elected leader becomes the sequencer.
    let mut params = ModelParams::mobile(0);
    params.max_payload_bits = 64;
    let mut ordering = Engine::new(
        StaticTopology::new(g),
        params,
        ActivationSchedule::synchronized(n),
        EventOrdering::spawn(uids.as_slice(), leader_index),
        seed ^ 1,
    );
    let done = ordering.run_until(10_000_000, |e| e.nodes().iter().all(|p| p.known_count() == n));
    assert!(done.is_some(), "ordering must complete");

    // Every node holds the identical total order, and the leader's own
    // event is sequence 0.
    let reference = ordering.node(0).known_assignments();
    assert_eq!(reference[0].event, leader_uid);
    for u in 1..n {
        assert_eq!(ordering.node(u).known_assignments(), reference, "node {u} diverged");
    }
}

#[test]
fn consensus_composes_with_dynamic_topology() {
    // Binary consensus over a churning network: agreement on the min-UID
    // holder's input even at τ = 1.
    let base = gen::line_of_stars(3, 3);
    let n = base.node_count();
    let inputs: Vec<(u64, bool)> = (0..n).map(|i| ((i as u64) * 31 + 5, i % 2 == 0)).collect();
    let expect = inputs.iter().min_by_key(|(u, _)| u).unwrap().1;
    let mut e = Engine::new(
        RelabelingAdversary::new(base, 1, 7),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        LeaderConsensus::spawn(&inputs),
        8,
    );
    let out = e.run_to_stabilization(20_000_000);
    assert!(out.stabilized_round.is_some());
    for (u, node) in e.nodes().iter().enumerate() {
        assert_eq!(node.decision(), expect, "node {u} decided wrong value");
    }
}

#[test]
fn aggregation_min_matches_blind_gossip_bound_behaviour() {
    // MinGossip is structurally blind gossip; on the same topology and
    // seeds it should converge (and to the true minimum).
    let g = gen::line_of_stars(4, 4);
    let n = g.node_count();
    let values: Vec<u64> = (0..n as u64).map(|i| i * 17 % 97 + 1).collect();
    let true_min = *values.iter().min().unwrap();
    let mut e = Engine::new(
        StaticTopology::new(g),
        ModelParams::mobile(0),
        ActivationSchedule::synchronized(n),
        MinGossip::spawn(&values),
        6,
    );
    let done = e.run_until(10_000_000, |e| e.nodes().iter().all(|p| p.current_min() == true_min));
    assert!(done.is_some());
}

#[test]
fn size_estimation_under_isolating_adversary() {
    // Even a hostile topology sequence only delays extrema propagation.
    let n = 4 + 4 * 4; // isolating adversary's line-of-stars size
    let topo = IsolatingAdversary::new(4, 4, 0, 1, 3);
    let mut params = ModelParams::mobile(0);
    params.max_payload_bits = (mobile_telephone::apps::aggregation::ESTIMATOR_WIDTH * 64) as u32;
    let mut e = Engine::new(
        topo,
        params,
        ActivationSchedule::synchronized(n),
        SizeEstimator::spawn(n, 4),
        5,
    );
    let done = e.run_until(10_000_000, |e| {
        let first = e.node(0).minima();
        e.nodes().iter().all(|p| p.minima() == first)
    });
    assert!(done.is_some(), "extrema must converge despite the adversary");
    let est = e.node(0).estimate();
    assert!(est > n as f64 * 0.3 && est < n as f64 * 3.0, "estimate {est} vs n = {n}");
}
